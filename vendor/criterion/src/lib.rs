//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The workspace builds without network access, so this vendored shim
//! keeps the benches compiling (and running under `cargo bench`) with the
//! API subset they use: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, and `Throughput`.
//!
//! Measurement is a deliberately small adaptive wall-clock loop — one
//! line of output per benchmark, no HTML reports. Each benchmark runs
//! five (`PASSES`) independent timing passes and reports the **median**
//! per-iteration time, so numbers are stable enough to compare across
//! commits (a single sample is at the mercy of scheduler noise). It is
//! still a smoke-timer, not a statistics engine; swap the real criterion
//! back in for publishable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Target wall-clock budget per benchmark, split across [`PASSES`].
const BUDGET: Duration = Duration::from_millis(20);

/// Independent timing passes per benchmark; the median is reported.
const PASSES: usize = 5;

/// Entry point object handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

/// Identifies one benchmark (a name, optionally parameterised).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A parameterised id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare function name.
    pub fn from_function_name(name: impl Into<String>) -> Self {
        BenchmarkId { label: name.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId::from_function_name(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId::from_function_name(name)
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Timing state for one benchmark; drive it with [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    /// Elapsed wall-clock time of each timing pass.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` in an adaptive timing loop: one warm-up call sizes
    /// the per-pass iteration count, then `PASSES` independent passes
    /// run so the median can be reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call also yields the per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let per_pass = BUDGET / PASSES as u32;
        let iters = (per_pass.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters = iters;
        self.samples.clear();
        for _ in 0..PASSES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median per-iteration time in nanoseconds over the timing passes,
    /// or `None` before [`iter`](Self::iter) ran. Exposed so harnesses
    /// (e.g. the workspace's `bench_report` binary) can persist the
    /// measurement instead of only printing it.
    #[must_use]
    pub fn median_ns_per_iter(&self) -> Option<f64> {
        if self.iters == 0 || self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 0 {
            (sorted[mid - 1] + sorted[mid]) / 2
        } else {
            sorted[mid]
        };
        Some(median.as_nanos() as f64 / self.iters as f64)
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let Some(per_iter) = self.median_ns_per_iter() else {
            println!("{label:<40} (no measurement)");
            return;
        };
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(bytes) => {
                format!(
                    "  {:>10.1} MiB/s",
                    bytes as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            Throughput::Elements(n) => {
                format!("  {:>10.1} Melem/s", n as f64 / per_iter * 1e9 / 1e6)
            }
        });
        println!(
            "{label:<40} {per_iter:>12.1} ns/iter (median of {PASSES}){}",
            rate.unwrap_or_default()
        );
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&id.label, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report a rate for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the adaptive loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn median_is_none_before_iter_and_positive_after() {
        let mut b = Bencher::default();
        assert_eq!(b.median_ns_per_iter(), None);
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        let median = b.median_ns_per_iter().expect("measured");
        assert!(median > 0.0);
        // A median of PASSES samples must lie within the sample range.
        let per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / b.iters as f64)
            .collect();
        let lo = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = per_iter.iter().copied().fold(0.0f64, f64::max);
        assert!(lo <= median && median <= hi, "{lo} <= {median} <= {hi}");
        assert_eq!(b.samples.len(), PASSES);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let data = vec![0u8; 64];
        group.throughput(Throughput::Bytes(64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 64), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
