//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The workspace builds without network access, so instead of the real
//! crate this vendored shim provides the exact [`Buf`]/[`BufMut`] subset
//! the codebase uses: little-endian integer accessors and slice copies
//! over `&[u8]` cursors and `Vec<u8>` sinks. Semantics (including panics
//! on under-full buffers) match the upstream crate so it can be swapped
//! back in without code changes.

#![forbid(unsafe_code)]

/// Read access to a byte cursor; consuming reads advance the cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Consumes and returns a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes and returns a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns a single byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;

    /// Fills `dst` from the cursor, consuming `dst.len()` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4-byte split"))
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64_u32_u8() {
        let mut buf = Vec::new();
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u32_le(0xAABB_CCDD);
        buf.put_u8(0x7F);
        let mut cursor = buf.as_slice();
        assert_eq!(cursor.remaining(), 13);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_u32_le(), 0xAABB_CCDD);
        assert_eq!(cursor.get_u8(), 0x7F);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn copy_to_slice_advances() {
        let mut buf = Vec::new();
        buf.put_slice(b"hello world");
        let mut cursor = buf.as_slice();
        let mut head = [0u8; 5];
        cursor.copy_to_slice(&mut head);
        assert_eq!(&head, b"hello");
        assert_eq!(cursor, b" world");
    }
}
