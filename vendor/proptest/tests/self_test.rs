//! The shim must actually generate diverse cases and catch violations —
//! a property harness that silently runs zero cases would green-light
//! every suite in the workspace.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runs_the_configured_number_of_cases(_x in any::<u64>()) {
        CASES_RUN.fetch_add(1, Ordering::Relaxed);
    }
}

/// `proptest!` with a violated property must fail the test.
mod failure_detection {
    use super::*;

    proptest! {
        #[test]
        #[should_panic]
        fn catches_violations(x in 0u64..1000) {
            // Holds for < 1% of the domain; 256 deterministic cases make
            // a miss astronomically unlikely.
            prop_assert!(x < 5);
        }

        #[test]
        #[should_panic]
        fn catches_eq_violations(a in 1u32..40, b in 1u32..40) {
            prop_assert_eq!(a, b);
        }
    }
}

proptest! {
    #[test]
    fn ranges_stay_in_bounds(x in 3u64..17, y in 5usize..=9, f in 0.25f64..0.75,
                             g in 0.0f64..=1.0) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((5..=9).contains(&y));
        prop_assert!((0.25..0.75).contains(&f));
        prop_assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn vec_respects_size_and_element_ranges(v in proptest::collection::vec(1u8..5, 2..6)) {
        prop_assert!((2..6).contains(&v.len()));
        prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
    }

    #[test]
    fn flat_map_dependency_holds(
        (n, picks) in (1usize..8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0..n, n..=n))
        })
    ) {
        prop_assert_eq!(picks.len(), n);
        prop_assert!(picks.iter().all(|&p| p < n));
    }

    #[test]
    fn map_transforms(doubled in (0u64..100).prop_map(|x| x * 2)) {
        prop_assert_eq!(doubled % 2, 0);
        prop_assert!(doubled < 200);
    }

    #[test]
    fn oneof_only_yields_listed_alternatives(
        v in prop_oneof![Just(1u8), Just(4u8), (7u8..9).prop_map(|x| x)]
    ) {
        prop_assert!(matches!(v, 1 | 4 | 7 | 8));
    }

    #[test]
    fn sample_index_projects_into_bounds(idx in any::<proptest::sample::Index>(),
                                         len in 1usize..50) {
        prop_assert!(idx.index(len) < len);
    }

    #[test]
    fn arrays_and_tuples_generate(pair in (any::<[u8; 8]>(), any::<bool>())) {
        let (bytes, _flag) = pair;
        prop_assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn assume_skips_without_failing(x in 0u32..10) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }
}

#[test]
fn counted_all_cases() {
    // Test order within a binary is name-sorted by the default harness,
    // so force the counting property to have run first.
    runs_the_configured_number_of_cases();
    assert!(CASES_RUN.load(Ordering::Relaxed) >= 64);
}

#[test]
fn deterministic_across_runs() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let strat = proptest::collection::vec(0u64..1_000_000, 5..10);
    let mut a = TestRng::for_test("det");
    let mut b = TestRng::for_test("det");
    for _ in 0..100 {
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}

#[test]
fn distinct_tests_get_distinct_streams() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let mut a = TestRng::for_test("alpha");
    let mut b = TestRng::for_test("beta");
    let strat = 0u64..u64::MAX;
    let draws_a: Vec<_> = (0..8).map(|_| strat.generate(&mut a)).collect();
    let draws_b: Vec<_> = (0..8).map(|_| strat.generate(&mut b)).collect();
    assert_ne!(draws_a, draws_b);
}
