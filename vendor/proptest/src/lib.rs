//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The workspace builds without network access, so this vendored shim
//! implements the subset its test suites use: the [`proptest!`] macro,
//! [`prelude`], [`strategy::Strategy`] with `prop_map`/`prop_flat_map`,
//! [`arbitrary::any`], range and tuple strategies, [`collection::vec`],
//! [`sample::Index`], [`prop_oneof!`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case fails the test with the generated
//!   values via the panic message, but is not minimised.
//! * **Deterministic seeding.** Each test's RNG is seeded from its module
//!   path and name, so runs are reproducible; set `PROPTEST_RNG_SEED` to
//!   perturb all streams at once.
//! * `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) instead of
//!   returning `Err`, which is equivalent under a harness that treats
//!   panics as failures.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs the body over `cases` generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`ProptestConfig`](test_runner::ProptestConfig) for every test in the
/// block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($($strategy,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its precondition does not hold.
///
/// Must appear directly inside the `proptest!` test body (it expands to
/// `continue` targeting the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::one_of_option($strategy)),+
        ])
    };
}
