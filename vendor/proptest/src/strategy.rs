//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// it selects — the dependent-generation combinator.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let intermediate = self.source.generate(rng);
        (self.make)(intermediate).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<T> {
    options: Vec<BoxedGen<T>>,
}

type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

impl<T> OneOf<T> {
    /// Builds a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedGen<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let which = rng.rng().random_range(0..self.options.len());
        (self.options[which])(rng)
    }
}

/// Erases a strategy into the closure form [`OneOf`] stores.
pub fn one_of_option<S: Strategy + 'static>(strategy: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| strategy.generate(rng))
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform,
    Range<T>: Clone + SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform,
    RangeInclusive<T>: Clone + SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident . $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
