//! The [`any`] entry point and the types it can generate.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn generate_any(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::generate_any(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain
/// (`[0, 1)` for floats).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn generate_any(rng: &mut TestRng) -> Self {
                rng.rng().random::<$t>()
            }
        }
    )+};
}

impl_arbitrary_via_random!(u8, u16, u32, u64, usize, bool, f64, f32);

macro_rules! impl_arbitrary_signed {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn generate_any(rng: &mut TestRng) -> Self {
                rng.rng().random::<$u>() as $t
            }
        }
    )+};
}

impl_arbitrary_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn generate_any(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::generate_any(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn generate_any(rng: &mut TestRng) -> Self {
        (A::generate_any(rng), B::generate_any(rng))
    }
}
