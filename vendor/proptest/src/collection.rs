//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A bounded collection-length specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    low: usize,
    high_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            low: exact,
            high_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.end > range.start, "empty collection size range");
        SizeRange {
            low: range.start,
            high_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.end() >= range.start(), "empty collection size range");
        SizeRange {
            low: *range.start(),
            high_inclusive: *range.end(),
        }
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec`s whose length lies in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng
            .rng()
            .random_range(self.size.low..=self.size.high_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
