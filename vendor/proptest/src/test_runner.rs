//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment
    /// variable (as in upstream proptest).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies while generating a case.
///
/// Seeded from the test's module path and name (FNV-1a), so each test has
/// its own reproducible stream; `PROPTEST_RNG_SEED` perturbs all streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|raw| raw.parse::<u64>().ok())
        {
            hash ^= extra.rotate_left(17);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator, for strategy implementations.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
