//! Sampling helpers.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::Rng;

/// An index into a collection whose size is unknown at generation time.
///
/// Generate one with `any::<Index>()`, then project it onto a concrete
/// collection with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Maps this abstract index onto a collection of `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        self.0 % size
    }
}

impl Arbitrary for Index {
    fn generate_any(rng: &mut TestRng) -> Self {
        Index(rng.rng().random::<usize>())
    }
}
