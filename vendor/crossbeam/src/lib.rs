//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam) crate.
//!
//! The workspace builds without network access, so this vendored shim maps
//! the subset the codebase uses onto the standard library:
//!
//! * [`channel`] — `unbounded()` MPMC channels with `Sync` endpoints
//!   (mutex + condvar; same send/recv/try-recv error semantics).
//! * [`thread`] — `scope()`/`spawn()` scoped threads, backed by
//!   [`std::thread::scope`]; `spawn` closures receive a `&Scope` argument
//!   exactly as crossbeam's do.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPMC channels with crossbeam's API.
    //!
    //! Implemented over `Mutex<VecDeque>` + `Condvar` rather than
    //! [`std::sync::mpsc`] because crossbeam's `Sender`/`Receiver` are
    //! `Sync` (endpoints here are shared across scoped threads by
    //! reference), which `mpsc::Receiver` is not.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with nothing queued.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    #[derive(Debug)]
    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    #[derive(Debug)]
    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending side; cloneable, `Send + Sync`.
    #[derive(Debug)]
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving side; cloneable, `Send + Sync`.
    #[derive(Debug)]
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying `value` if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the queue is drained and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Dequeues the next message, blocking at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if the wait expired with nothing
        /// queued, [`RecvTimeoutError::Disconnected`] if the queue is
        /// drained and every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                // A single bounded wait per probe: a spurious or racing
                // wakeup re-checks the queue, and an expired wait reports
                // Timeout even if the condvar woke early-but-empty — the
                // contract is "at most timeout", not a deadline clock.
                let (guard, wait) = self
                    .shared
                    .ready
                    .wait_timeout(state, timeout)
                    .expect("channel poisoned");
                state = guard;
                if wait.timed_out() {
                    return match state.queue.pop_front() {
                        Some(value) => Ok(value),
                        None if state.senders == 0 => Err(RecvTimeoutError::Disconnected),
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }

        /// Dequeues the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if nothing is queued,
        /// [`TryRecvError::Disconnected`] if drained with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API over [`std::thread::scope`].

    use std::any::Any;

    /// A scope within which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// The boxed panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// reference to the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads into
    /// the `Err` variant) this shim propagates such panics; the `Result`
    /// wrapper is kept for call-site compatibility and is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_and_errors() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41u32).join().expect("inner") + 1)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
