//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.9 API).
//!
//! The workspace builds without network access, so this vendored shim
//! implements the subset the codebase uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `random::<T>()` and `random_range(range)`. The generator is
//! xoshiro256++ (seeded through SplitMix64), which is deterministic per
//! seed and statistically strong enough for the Monte-Carlo experiments
//! here; it does **not** reproduce upstream `StdRng` (ChaCha12) streams.
//!
//! Integer ranges are sampled without modulo bias (Lemire's widening
//! multiply with rejection); floats use the standard 53-bit mantissa
//! construction.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// A source of random `u64`s; everything else derives from this.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly by `Rng::random::<T>()`.
pub trait Random: Sized {
    /// Samples a value from `rng`'s canonical distribution for `Self`
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u16 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Random for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform below `bound` (exclusive) without modulo bias — Lemire's
/// widening-multiply method with rejection of the short zone.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types samplable uniformly from a range by `Rng::random_range`.
pub trait SampleUniform: Sized {
    /// Uniform over `[low, high)` (`inclusive == false`) or `[low, high]`
    /// (`inclusive == true`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "random_range called with an empty range");
                assert!(span <= 1 << 64, "range wider than 64 bits");
                if span == 1 << 64 {
                    return rng.next_u64() as $t;
                }
                (lo + i128::from(uniform_below(rng, span as u64))) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            if inclusive { low <= high } else { low < high },
            "random_range called with an empty range"
        );
        let unit = if inclusive {
            // [0, 1]: 53 bits over an inclusive lattice.
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            f64::random(rng)
        };
        low + (high - low) * unit
    }
}

/// Range types accepted by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(rng, low, high, true)
    }
}

/// Convenience extension over any [`RngCore`], mirroring rand 0.9.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its canonical distribution.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
