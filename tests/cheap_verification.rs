//! The paper's asymmetric-verification point (Section 3.1): "There are
//! many computations whose verification is much less expensive than the
//! computations themselves." With the factoring workload, the supervisor
//! verifies samples without a single `f` evaluation.

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::{FactoringSearch, PasswordSearch};
use uncheatable_grid::task::{ComputeTask, Domain, MatchScreener, ZeroGuesser};

fn factoring() -> FactoringSearch {
    // Odd candidates near 10^9: plenty of hard-ish semiprimes.
    FactoringSearch::new(999_999_001, 2)
}

#[test]
fn supervisor_never_evaluates_f_for_cheap_verification_tasks() {
    let task = factoring();
    // Screen for "smallest factor is 3" — arbitrary but deterministic.
    let mut target = 3u64.to_le_bytes().to_vec();
    target.extend_from_slice(&(999_999_001u64.div_ceil(3)).to_le_bytes());
    let screener = MatchScreener::new(target);
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, 128),
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 1,
            samples: 16,
            seed: 4,
            report_audit: 0,
        },
    )
    .unwrap();
    assert!(outcome.accepted);
    // 16 verifications, zero recomputations of the expensive f.
    assert_eq!(outcome.supervisor_costs.verify_ops, 16);
    assert_eq!(outcome.supervisor_costs.f_evals, 0);
    // Contrast: the password task (no cheap verifier) pays m × C_f.
    let pw = PasswordSearch::with_hidden_password(1, 2);
    let pw_screener = pw.match_screener();
    let pw_outcome = run_cbs::<Sha256, _, _, _>(
        &pw,
        &pw_screener,
        Domain::new(0, 128),
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 1,
            samples: 16,
            seed: 4,
            report_audit: 0,
        },
    )
    .unwrap();
    assert_eq!(pw_outcome.supervisor_costs.f_evals, 16 * pw.unit_cost());
}

#[test]
fn factoring_cheater_is_still_caught() {
    let task = factoring();
    let screener = MatchScreener::new(vec![0u8; 16]); // matches nothing
    let cheater = SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(9), 2);
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, 128),
        &cheater,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 1,
            samples: 20,
            seed: 8,
            report_audit: 0,
        },
    )
    .unwrap();
    assert!(!outcome.accepted);
    // Guessed (p, m) pairs essentially never form a valid factorisation,
    // so the cheap verifier rejects them outright.
}

#[test]
fn forged_but_valid_factorisation_still_fails_the_commitment() {
    // Subtle case: for 1001-style multi-factor candidates a cheater could
    // send a *valid but non-canonical* factorisation after the challenge.
    // verify() accepts it — but the Merkle reconstruction still fails,
    // because the committed leaf differs. Theorem 2 carries the day.
    use uncheatable_grid::merkle::MerkleTree;
    let task = FactoringSearch::new(1001, 0x10001); // mixed candidates
    let honest_leaves: Vec<Vec<u8>> = (0..16u64).map(|x| task.compute(x)).collect();
    let tree: MerkleTree<Sha256> = MerkleTree::build(&honest_leaves).unwrap();
    // x = 0: N = 1001 = 7 × 11 × 13; alternative valid answer (11, 91).
    let mut alternative = 11u64.to_le_bytes().to_vec();
    alternative.extend_from_slice(&91u64.to_le_bytes());
    assert!(task.verify(0, &alternative), "alternative must be valid");
    let proof = tree.prove(0).unwrap();
    // The supervisor checks the *claimed* value against the commitment:
    assert!(!proof.verify(&tree.root(), &alternative));
    assert!(proof.verify(&tree.root(), &honest_leaves[0]));
}
