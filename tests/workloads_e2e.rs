//! Every synthetic workload through the full CBS pipeline: the schemes are
//! workload-generic (the paper's "generic computations" claim vs the
//! ringer scheme's one-way-only restriction).

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::{
    DrugScreening, PasswordSearch, PrimalitySearch, SetiSignal,
};
use uncheatable_grid::task::{ComputeTask, Domain, Screener, ZeroGuesser};

fn cbs_config(m: usize) -> CbsConfig {
    CbsConfig {
        task_id: 1,
        samples: m,
        seed: 11,
        report_audit: 3,
    }
}

fn assert_honest_accepted<T: ComputeTask, S: Screener>(task: &T, screener: &S, n: u64) {
    let outcome = run_cbs::<Sha256, _, _, _>(
        task,
        screener,
        Domain::new(0, n),
        &HonestWorker,
        ParticipantStorage::Full,
        &cbs_config(15),
    )
    .unwrap();
    assert!(outcome.accepted, "honest {} rejected", task.name());
}

fn assert_cheater_caught<T: ComputeTask, S: Screener>(task: &T, screener: &S, n: u64) {
    let cheater = SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(2), 7);
    let outcome = run_cbs::<Sha256, _, _, _>(
        task,
        screener,
        Domain::new(0, n),
        &cheater,
        ParticipantStorage::Full,
        &cbs_config(25),
    )
    .unwrap();
    assert!(!outcome.accepted, "cheater on {} not caught", task.name());
}

#[test]
fn password_search_cbs() {
    let task = PasswordSearch::with_hidden_password(1, 100);
    let screener = task.match_screener();
    assert_honest_accepted(&task, &screener, 512);
    assert_cheater_caught(&task, &screener, 512);
}

#[test]
fn primality_search_cbs() {
    let task = PrimalitySearch::new(1_000_001, 2);
    // Screen for primes: verdict byte 1.
    struct Primes;
    impl Screener for Primes {
        fn screen(&self, x: u64, fx: &[u8]) -> Option<uncheatable_grid::task::ScreenReport> {
            (fx.first() == Some(&1)).then(|| uncheatable_grid::task::ScreenReport {
                input: x,
                payload: fx.to_vec(),
            })
        }
    }
    assert_honest_accepted(&task, &Primes, 400);
    assert_cheater_caught(&task, &Primes, 400);
}

#[test]
fn seti_signal_cbs() {
    let task = SetiSignal::new(5);
    let screener = task.screener();
    assert_honest_accepted(&task, &screener, 256);
    assert_cheater_caught(&task, &screener, 256);
}

#[test]
fn drug_screening_cbs() {
    let task = DrugScreening::new(9);
    let screener = task.screener();
    assert_honest_accepted(&task, &screener, 256);
    assert_cheater_caught(&task, &screener, 256);
}

#[test]
fn seti_reports_match_local_screening() {
    // The screened reports delivered through the protocol equal what a
    // local evaluation would flag.
    let task = SetiSignal::new(31);
    let screener = task.screener();
    let n = 600;
    let outcome = run_ni_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, n),
        &HonestWorker,
        ParticipantStorage::Full,
        &NiCbsConfig {
            task_id: 2,
            samples: 10,
            g_iterations: 1,
            report_audit: 5,
            audit_seed: 0,
        },
    )
    .unwrap();
    assert!(outcome.accepted);
    let local: Vec<u64> = (0..n)
        .filter(|&x| screener.screen(x, &task.compute(x)).is_some())
        .collect();
    let via_protocol: Vec<u64> = outcome.reports.iter().map(|r| r.input).collect();
    assert_eq!(via_protocol, local);
}

#[test]
fn primality_witness_output_foils_simple_flag_guessing() {
    // The 16-byte output (verdict + witness) makes blind guessing fail even
    // if the cheater guesses the verdict bit right: a composite's witness
    // is a specific Miller–Rabin base.
    let task = PrimalitySearch::new(1_000_001, 2);
    let composite_with_flag_guess = |x: u64| {
        let mut fake = vec![0u8; 16];
        // Suppose the cheater knows composites dominate and guesses "0".
        fake[0] = 0;
        fake == task.compute(x)
    };
    let correct_blind_guesses = (0..200u64)
        .filter(|&x| composite_with_flag_guess(x))
        .count();
    // The verdict alone would be right ~85% of the time; with the witness
    // the full output is essentially never right.
    assert_eq!(correct_blind_guesses, 0);
}
