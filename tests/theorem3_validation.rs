//! Quantitative validation of **Theorem 3 / Eq. (2)** and the Fig. 2
//! sample-size law, through the Monte-Carlo harness.

use uncheatable_grid::core::analysis::{cheat_success_probability, required_sample_size};
use uncheatable_grid::sim::{
    estimate_cheat_success_fast, estimate_cheat_success_protocol, DetectionExperiment,
};

#[test]
fn fast_simulator_tracks_eq2_over_a_grid() {
    for &(r, q, m) in &[
        (0.3, 0.0, 4usize),
        (0.5, 0.0, 8),
        (0.5, 0.5, 10),
        (0.7, 0.2, 12),
        (0.9, 0.0, 25),
    ] {
        let est = estimate_cheat_success_fast(&DetectionExperiment {
            domain_size: 0,
            samples: m,
            honesty_ratio: r,
            guess_quality: q,
            trials: 30_000,
            seed: 1234,
        });
        let theory = cheat_success_probability(r, q, m as u64);
        assert!(
            est.contains(theory),
            "r={r} q={q} m={m}: [{:.4},{:.4}] excludes {theory:.4}",
            est.ci_low,
            est.ci_high
        );
    }
}

#[test]
fn full_protocol_tracks_eq2() {
    // 250 complete CBS rounds (tree, commitment, proofs, verification).
    let est = estimate_cheat_success_protocol(&DetectionExperiment {
        domain_size: 64,
        samples: 2,
        honesty_ratio: 0.5,
        guess_quality: 0.0,
        trials: 250,
        seed: 777,
    });
    let theory = cheat_success_probability(0.5, 0.0, 2);
    assert!(
        est.contains(theory),
        "protocol [{:.3},{:.3}] excludes {theory:.3}",
        est.ci_low,
        est.ci_high
    );
}

#[test]
fn fig2_sample_sizes_suppress_cheating_to_epsilon() {
    // At the Fig. 2 operating points, the simulated survival rate must be
    // ≤ ε (up to Monte-Carlo noise: with 200k trials and ε = 1e-4 we
    // expect ~20 survivors; accept ≤ 60).
    for &(r, q) in &[(0.5, 0.0), (0.5, 0.5), (0.8, 0.0)] {
        let m = required_sample_size(1e-4, r, q).unwrap();
        let est = estimate_cheat_success_fast(&DetectionExperiment {
            domain_size: 0,
            samples: m as usize,
            honesty_ratio: r,
            guess_quality: q,
            trials: 200_000,
            seed: 9,
        });
        assert!(
            est.successes <= 60,
            "r={r} q={q} m={m}: {} survivors in 200k trials",
            est.successes
        );
    }
}

#[test]
fn detection_improves_monotonically_with_samples() {
    let rate_at = |m: usize| {
        estimate_cheat_success_fast(&DetectionExperiment {
            domain_size: 0,
            samples: m,
            honesty_ratio: 0.8,
            guess_quality: 0.0,
            trials: 50_000,
            seed: 5,
        })
        .rate
    };
    let r1 = rate_at(1);
    let r5 = rate_at(5);
    let r20 = rate_at(20);
    assert!(r1 > r5 && r5 > r20, "{r1} {r5} {r20}");
}
