//! **Theorems 2 and 3 (Uncheatability)** end to end: commitment binding,
//! post-challenge recomputation, and the quantitative detection law.

use proptest::prelude::*;
use uncheatable_grid::core::analysis::cheat_success_probability;
use uncheatable_grid::core::scheme::cbs::{participant_cbs, run_cbs, supervisor_cbs, CbsConfig};
use uncheatable_grid::core::{ParticipantStorage, Verdict};
use uncheatable_grid::grid::{
    duplex, CheatSelection, CostLedger, HonestWorker, Message, SemiHonestCheater,
};
use uncheatable_grid::hash::{HashFunction, Sha256};
use uncheatable_grid::merkle::MerkleTree;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{ComputeTask, Domain, LuckyGuesser, ZeroGuesser};

/// A cheater with r = 0 and q = 0 must be caught by any sample.
#[test]
fn fully_lazy_cheater_always_caught() {
    let task = PasswordSearch::with_hidden_password(1, 2);
    let screener = task.match_screener();
    for seed in 0..10u64 {
        let cheater =
            SemiHonestCheater::new(0.0, CheatSelection::Prefix, ZeroGuesser::new(seed), seed);
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &cheater,
            ParticipantStorage::Full,
            &CbsConfig {
                task_id: 1,
                samples: 1,
                seed,
                report_audit: 0,
            },
        )
        .unwrap();
        assert!(!outcome.accepted, "seed {seed}");
    }
}

/// Theorem 2's exact scenario: the participant recomputes the *correct*
/// `f(x)` after learning the sample, but its commitment holds garbage —
/// the reconstruction must expose it.
#[test]
fn post_challenge_recomputation_detected() {
    let task = PasswordSearch::with_hidden_password(7, 3);
    let domain = Domain::new(0, 32);
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // The adaptive cheater: commit garbage, answer with true f(x).
            let Message::Assign(a) = part_ep.recv().unwrap() else {
                panic!("expected Assign");
            };
            let garbage: Vec<Vec<u8>> = (0..32u64).map(|x| vec![x as u8; 16]).collect();
            let tree: MerkleTree<Sha256> = MerkleTree::build(&garbage).unwrap();
            part_ep
                .send(&Message::Commit {
                    task_id: a.task_id,
                    root: tree.root().to_vec(),
                })
                .unwrap();
            let Message::Challenge { samples, .. } = part_ep.recv().unwrap() else {
                panic!("expected Challenge");
            };
            // Answer every sample with the *true* result (computed now,
            // after the challenge) and the garbage tree's paths.
            let proofs = samples
                .iter()
                .map(|&i| {
                    let p = tree.prove(i).unwrap();
                    uncheatable_grid::grid::SampleProof {
                        index: i,
                        leaf_value: task.compute(i), // correct f(x)!
                        leaf_sibling: p.leaf_sibling().to_vec(),
                        digest_siblings: p.digest_siblings().iter().map(|d| d.to_vec()).collect(),
                    }
                })
                .collect();
            part_ep
                .send(&Message::Proofs {
                    task_id: a.task_id,
                    proofs,
                })
                .unwrap();
            part_ep
                .send(&Message::Reports {
                    task_id: a.task_id,
                    reports: vec![],
                })
                .unwrap();
            let _ = part_ep.recv();
        });
        let screener = task.match_screener();
        let (verdict, _) = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &task,
            &screener,
            domain,
            &CbsConfig {
                task_id: 1,
                samples: 5,
                seed: 2,
                report_audit: 0,
            },
            &ledger,
        )
        .unwrap();
        // Correct f(x) but Φ(R′) ≠ Φ(R): caught by the commitment check.
        assert!(matches!(verdict, Verdict::CommitmentMismatch { .. }));
    });
}

/// A man-in-the-middle who swaps the commitment after the fact breaks the
/// exchange: the honest participant's proofs no longer verify.
#[test]
fn commitment_is_binding_across_the_wire() {
    let task = PasswordSearch::with_hidden_password(5, 6);
    let domain = Domain::new(0, 16);
    let (sup_ep, mitm_sup) = duplex();
    let (mitm_part, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let screener = task.match_screener();
            let _ = participant_cbs::<Sha256, _, _, _>(
                &part_ep,
                &task,
                &screener,
                &HonestWorker,
                ParticipantStorage::Full,
                &part_ledger,
            );
        });
        // The MITM relays everything except the commitment, which it
        // replaces with its own digest.
        scope.spawn(|| {
            let assign = mitm_sup.recv().unwrap();
            mitm_part.send(&assign).unwrap();
            let Message::Commit { task_id, .. } = mitm_part.recv().unwrap() else {
                panic!("expected Commit");
            };
            mitm_sup
                .send(&Message::Commit {
                    task_id,
                    root: Sha256::digest(b"swapped").to_vec(),
                })
                .unwrap();
            let challenge = mitm_sup.recv().unwrap();
            mitm_part.send(&challenge).unwrap();
            let proofs = mitm_part.recv().unwrap();
            mitm_sup.send(&proofs).unwrap();
            let reports = mitm_part.recv().unwrap();
            mitm_sup.send(&reports).unwrap();
            let verdict = mitm_sup.recv().unwrap();
            mitm_part.send(&verdict).unwrap();
        });
        let screener = task.match_screener();
        let (verdict, _) = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &task,
            &screener,
            domain,
            &CbsConfig {
                task_id: 9,
                samples: 3,
                seed: 4,
                report_audit: 0,
            },
            &sup_ledger,
        )
        .unwrap();
        assert!(matches!(verdict, Verdict::CommitmentMismatch { .. }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any prefix cheater with r < 1 is caught once a sample lands in the
    /// guessed region — and with m = 48, q = 0, survival needs all 48
    /// samples in D′ (probability r^48 < 0.4^48 ≈ 1e-19 for r ≤ 0.4).
    #[test]
    fn low_ratio_cheaters_never_survive_48_samples(
        r in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let task = PasswordSearch::with_hidden_password(seed, 1);
        let screener = task.match_screener();
        let cheater = SemiHonestCheater::new(
            r,
            CheatSelection::Scattered,
            ZeroGuesser::new(seed),
            seed,
        );
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &cheater,
            ParticipantStorage::Full,
            &CbsConfig { task_id: 1, samples: 48, seed, report_audit: 0 },
        ).unwrap();
        prop_assert!(!outcome.accepted);
    }
}

/// Theorem 3's two-sided nature: a *lucky-guess* cheater (q = 1) survives
/// every sample even though it computed nothing — the formula says
/// `(r + (1-r)·1)^m = 1` and the protocol agrees.
#[test]
fn perfect_guessers_survive_as_theorem3_predicts() {
    let task = PasswordSearch::with_hidden_password(3, 4);
    let screener = task.match_screener();
    let guesser = LuckyGuesser::new(task.clone(), 1.0, 5);
    let cheater = SemiHonestCheater::new(0.0, CheatSelection::Prefix, guesser, 5);
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, 64),
        &cheater,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 1,
            samples: 20,
            seed: 6,
            report_audit: 0,
        },
    )
    .unwrap();
    assert!(outcome.accepted);
    assert_eq!(cheat_success_probability(0.0, 1.0, 20), 1.0);
}
