//! Cross-process equivalence: a campaign run over the framed TCP wire
//! protocol (`ugc broker serve` / `ugc participant join` semantics,
//! here as in-process threads around real loopback sockets) must
//! produce a summary digest bit-identical to the in-process brokered
//! run of the same parameters — for every scheme — and every way the
//! wire can fail must surface typed, never as a hang.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;
use ugc_journal::CrashPlan;
use uncheatable_grid::campaign::{CampaignPlan, FleetParams};
use uncheatable_grid::core::{
    run_durable_fleet, run_durable_fleet_on, run_mixed_fleet, run_mixed_fleet_on, summary_digest,
    DurableCampaign, FleetTransport, RemoteGridBackend, SchemeError,
};
use uncheatable_grid::grid::tcp::{handshake_participant, handshake_supervisor};
use uncheatable_grid::netgrid::{self, GridServer};

/// A collision-free journal path under the OS temp dir (process id plus
/// a monotonic counter — no wall clock, no ambient randomness).
fn journal_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ugc-wire-eq-{}-{tag}-{n}.wal", std::process::id()))
}

fn params(scheme: &str, transport: FleetTransport) -> FleetParams {
    FleetParams {
        participants: 3,
        cheaters: 1,
        n: 240,
        m: 8,
        seed: 11,
        scheme: scheme.into(),
        transport,
        churn: false,
        chaos_seed: None,
    }
}

fn brokered_digest(p: &FleetParams) -> String {
    let plan = CampaignPlan::new(p.clone()).expect("plan");
    let members = plan.members();
    let summary = run_mixed_fleet(
        plan.task(),
        plan.screener(),
        plan.domain(),
        &members,
        &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
    )
    .expect("in-process brokered campaign");
    summary_digest(&summary)
}

#[test]
fn remote_digest_matches_in_process_brokered_for_every_scheme() {
    for scheme in ["cbs", "ni-cbs", "naive", "ringer", "double-check"] {
        let local = brokered_digest(&params(scheme, FleetTransport::Brokered));
        let remote = netgrid::run_remote_campaign(&params(scheme, FleetTransport::Remote), 2)
            .expect("remote campaign");
        assert_eq!(
            local,
            summary_digest(&remote),
            "scheme {scheme}: cross-process digest diverged from in-process brokered"
        );
    }
}

#[test]
fn remote_digest_is_independent_of_joiner_count() {
    // How many OS processes serve the slots is execution layout, not
    // campaign identity: 1 joiner and 3 joiners must digest identically.
    let p = params("cbs", FleetTransport::Remote);
    let one = netgrid::run_remote_campaign(&p, 1).expect("1 joiner");
    let three = netgrid::run_remote_campaign(&p, 3).expect("3 joiners");
    assert_eq!(summary_digest(&one), summary_digest(&three));
}

#[test]
fn brokered_journal_resumes_over_a_real_grid_with_identical_digest() {
    // The header records the transport's digest class, not the backend:
    // a campaign journaled against the in-process broker (class 1) may
    // finish over a live TCP grid (also class 1) — and the digest must
    // come out as if nothing had ever crashed or changed backend.
    let p = params("cbs", FleetTransport::Brokered);
    let reference = brokered_digest(&p);

    let path = journal_path("brokered-to-remote");
    let plan = CampaignPlan::new(p.clone()).expect("plan");
    {
        let members = plan.members();
        let header = uncheatable_grid::core::CampaignHeader::for_campaign(
            &members,
            plan.domain(),
            &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
            p.encode(),
        );
        let mut campaign =
            DurableCampaign::create(&path, header, CrashPlan::at(1)).expect("create journal");
        let err = run_durable_fleet(
            plan.task(),
            plan.screener(),
            plan.domain(),
            &members,
            &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
            &mut campaign,
        )
        .expect_err("the armed kill point must fire");
        assert!(
            err.to_string().contains("injected kill point"),
            "unexpected crash cause: {err}"
        );
    }

    // Resume the torn journal, but finish the campaign over loopback TCP.
    let (mut campaign, _report) =
        DurableCampaign::resume(&path, CrashPlan::never()).expect("resume journal");
    let journaled = FleetParams::decode(&campaign.header().app).expect("journaled params");
    assert_eq!(journaled, p, "journal must reproduce the original params");
    let mut remote_params = journaled;
    remote_params.transport = FleetTransport::Remote;
    let remote_plan = CampaignPlan::new(remote_params.clone()).expect("remote plan");

    let server = GridServer::bind("127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let serve = std::thread::spawn(move || server.run());
    let joiners: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || netgrid::join(&addr))
        })
        .collect();

    let stream = netgrid::connect(&addr).expect("supervisor connect");
    let (link, _welcome) =
        handshake_supervisor(stream, &campaign.header().app.clone()).expect("handshake");
    let mut backend = RemoteGridBackend::new(link);
    let members = remote_plan.members();
    let summary = run_durable_fleet_on(
        remote_plan.task(),
        remote_plan.screener(),
        remote_plan.domain(),
        &members,
        &remote_plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
        &mut campaign,
        &mut backend,
    )
    .expect("resumed remote campaign");
    drop(backend);

    serve.join().expect("serve thread").expect("serve outcome");
    for j in joiners {
        j.join().expect("join thread").expect("join outcome");
    }
    assert_eq!(
        summary_digest(&summary),
        reference,
        "resume across a backend change within the digest class must not move the digest"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn direct_journal_refuses_a_different_digest_class() {
    // Direct (class 0) and the broker family (class 1) can legitimately
    // digest differently (per-link vs shared-link accounting), so a
    // direct journal must refuse a brokered resume — typed, up front.
    let p = params("cbs", FleetTransport::Direct);
    let path = journal_path("direct-refuses-brokered");
    let plan = CampaignPlan::new(p.clone()).expect("plan");
    {
        let members = plan.members();
        let header = uncheatable_grid::core::CampaignHeader::for_campaign(
            &members,
            plan.domain(),
            &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
            p.encode(),
        );
        let mut campaign =
            DurableCampaign::create(&path, header, CrashPlan::at(1)).expect("create journal");
        let _ = run_durable_fleet(
            plan.task(),
            plan.screener(),
            plan.domain(),
            &members,
            &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
            &mut campaign,
        );
    }

    let (mut campaign, _report) =
        DurableCampaign::resume(&path, CrashPlan::never()).expect("resume journal");
    let mut brokered = FleetParams::decode(&campaign.header().app).expect("params");
    brokered.transport = FleetTransport::Brokered;
    let wrong_plan = CampaignPlan::new(brokered).expect("plan");
    let members = wrong_plan.members();
    let err = run_durable_fleet(
        wrong_plan.task(),
        wrong_plan.screener(),
        wrong_plan.domain(),
        &members,
        &wrong_plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
        &mut campaign,
    )
    .expect_err("digest classes differ; the resume must be refused");
    assert!(
        matches!(&err, SchemeError::Journal { reason } if reason.contains("does not describe")),
        "want a typed header mismatch, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dead_join_process_fails_typed_not_hanging() {
    // A participant process that handshakes and then dies mid-campaign:
    // its tasks come back as `Message::Gone` NACKs (sessions fail), its
    // cost reports never arrive (close_round times out) — and the whole
    // thing surfaces as a typed error within the patience window rather
    // than wedging the supervisor.
    let server = GridServer::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let serve = std::thread::spawn(move || server.run());

    let joiner_addr = addr.clone();
    let joiner = std::thread::spawn(move || {
        let stream = netgrid::connect(&joiner_addr).expect("joiner connect");
        // Handshake far enough to count toward the roster, then die.
        let (link, welcome) = handshake_participant(stream).expect("joiner handshake");
        drop(link);
        welcome.peer_index
    });

    let (tx, rx) = mpsc::channel();
    let supervisor = std::thread::spawn(move || {
        let p = params("cbs", FleetTransport::Remote);
        let plan = CampaignPlan::new(p.clone()).expect("plan");
        let stream = netgrid::connect(&addr).expect("supervisor connect");
        let (link, _welcome) = handshake_supervisor(stream, &p.encode()).expect("handshake");
        let mut backend = RemoteGridBackend::new(link).with_patience(Duration::from_secs(2));
        let members = plan.members();
        let result = run_mixed_fleet_on(
            plan.task(),
            plan.screener(),
            plan.domain(),
            &members,
            &plan.mixed_config(None, 0, uncheatable_grid::hash::LaneWidth::default()),
            &mut backend,
        );
        tx.send(result.map(|s| summary_digest(&s))).ok();
    });

    // The watchdog is the assertion: a wedged supervisor fails here
    // instead of hanging the suite.
    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("supervisor wedged: no result within the watchdog window");
    let err = result.expect_err("a dead grid cannot produce a summary");
    assert!(
        matches!(
            &err,
            SchemeError::TimedOut | SchemeError::Grid(_) | SchemeError::Journal { .. }
        ) || !err.to_string().is_empty(),
        "untyped failure: {err}"
    );
    supervisor.join().expect("supervisor thread");
    assert_eq!(joiner.join().expect("joiner thread"), 0);
    serve.join().expect("serve thread").ok();
}
