//! Crash-resume equivalence: a journaled campaign killed at *any*
//! record and resumed must converge to the same verdicts, attempts,
//! cost ledgers, fault log and summary digest as a run that was never
//! interrupted — for all five schemes, over both transports, across
//! chaos seeds, at kill points from the first record to the last.
//!
//! This is the tentpole property of the write-ahead journal: rounds are
//! journaled before the supervisor acts on them and applied on resume
//! only when their commit marker made it to disk, so a crash can lose
//! in-flight work but never change what the campaign concludes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use ugc_journal::{read_journal, CrashPlan};
use uncheatable_grid::core::scheme::cbs::CbsScheme;
use uncheatable_grid::core::scheme::double_check::DoubleCheckScheme;
use uncheatable_grid::core::scheme::naive::NaiveScheme;
use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
use uncheatable_grid::core::scheme::ringer::RingerScheme;
use uncheatable_grid::core::{
    run_durable_fleet, run_mixed_fleet, summary_digest, CampaignHeader, DurableCampaign,
    FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig, ResumeReport, SchemeError,
};
use uncheatable_grid::grid::runtime::FaultPlan;
use uncheatable_grid::grid::{
    CheatSelection, HonestWorker, MaliciousWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{AcceptAllScreener, Domain, ZeroGuesser};

/// A collision-free journal path under the OS temp dir (process id plus
/// a monotonic counter — no wall clock, no ambient randomness).
fn journal_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ugc-crash-resume-{}-{tag}-{n}.wal",
        std::process::id()
    ))
}

/// How one campaign run touches the journal.
enum Mode<'a> {
    /// No journal at all — the plain `run_mixed_fleet` reference.
    Plain,
    /// Fresh journal at this path, armed with this crash plan.
    Create(&'a Path, CrashPlan),
    /// Resume the journal at this path.
    Resume(&'a Path, CrashPlan),
}

/// One member per scheme plus a lazy and a malicious CBS member — 7
/// members over 8 participant slots, covering every scheme's dialogue
/// shape — run under chaos-with-churn so the campaign spans multiple
/// reassignment rounds.
fn campaign(
    chaos_seed: u64,
    transport: FleetTransport,
    mode: Mode<'_>,
) -> Result<(FleetSummary, Option<ResumeReport>), SchemeError> {
    let task = PasswordSearch::with_hidden_password(7, 3);
    let screener = AcceptAllScreener;
    let honest = HonestWorker;
    let lazy = SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(4), 9);
    let malicious = MaliciousWorker::new(1.0, 5);
    let cbs = CbsScheme {
        samples: 16,
        seed: chaos_seed ^ 11,
        report_audit: 2,
    };
    let ni = NiCbsScheme {
        samples: 16,
        g_iterations: 2,
        report_audit: 0,
        audit_seed: chaos_seed ^ 13,
    };
    let naive = NaiveScheme {
        samples: 16,
        seed: chaos_seed ^ 14,
    };
    let ringer = RingerScheme {
        ringers: 6,
        seed: chaos_seed ^ 15,
    };
    let double_check = DoubleCheckScheme;
    let specs: Vec<MemberSpec<'_, Sha256>> = vec![
        MemberSpec {
            scheme: &cbs,
            behaviours: vec![&honest as &dyn WorkerBehaviour],
        },
        MemberSpec {
            scheme: &ni,
            behaviours: vec![&honest],
        },
        MemberSpec {
            scheme: &naive,
            behaviours: vec![&honest],
        },
        MemberSpec {
            scheme: &ringer,
            behaviours: vec![&honest],
        },
        MemberSpec {
            scheme: &double_check,
            behaviours: vec![&honest, &honest],
        },
        MemberSpec {
            scheme: &cbs,
            behaviours: vec![&lazy],
        },
        MemberSpec {
            scheme: &cbs,
            behaviours: vec![&malicious],
        },
    ];
    let domain = Domain::new(0, specs.len() as u64 * 64);
    let config = MixedFleetConfig {
        transport,
        chaos: Some(FaultPlan::chaos(chaos_seed).with_churn(150)),
        deadline: Some(Duration::from_secs(20)),
        retries: 8,
        ..MixedFleetConfig::default()
    };
    match mode {
        Mode::Plain => {
            run_mixed_fleet(&task, &screener, domain, &specs, &config).map(|s| (s, None))
        }
        Mode::Create(path, crash) => {
            let header =
                CampaignHeader::for_campaign(&specs, domain, &config, b"crash-resume".to_vec());
            let mut campaign = DurableCampaign::create(path, header, crash)?;
            run_durable_fleet(&task, &screener, domain, &specs, &config, &mut campaign)
                .map(|s| (s, None))
        }
        Mode::Resume(path, crash) => {
            let (mut campaign, report) = DurableCampaign::resume(path, crash)?;
            run_durable_fleet(&task, &screener, domain, &specs, &config, &mut campaign)
                .map(|s| (s, Some(report)))
        }
    }
}

/// Runs the campaign with a kill at record `kill`, asserts the kill
/// fired, resumes, and returns the resumed digest plus the report.
fn kill_then_resume(
    chaos_seed: u64,
    transport: FleetTransport,
    kill: u64,
    path: &Path,
) -> (String, ResumeReport) {
    match campaign(
        chaos_seed,
        transport,
        Mode::Create(path, CrashPlan::at(kill)),
    ) {
        Ok(_) => panic!("kill at record {kill} never fired"),
        Err(SchemeError::Journal { reason }) => {
            assert!(reason.contains("injected kill point"), "{reason}");
        }
        Err(other) => panic!("kill at record {kill} surfaced as {other}"),
    }
    let (resumed, report) = campaign(
        chaos_seed,
        transport,
        Mode::Resume(path, CrashPlan::never()),
    )
    .expect("the resumed campaign completes");
    (
        summary_digest(&resumed),
        report.expect("resume mode yields a report"),
    )
}

/// The full matrix: both transports × three chaos seeds × kill points
/// {first record, mid-campaign, last record}. Every cell must resume to
/// the uninterrupted run's digest.
#[test]
fn kill_and_resume_converges_at_every_matrix_point() {
    for transport in [FleetTransport::Direct, FleetTransport::Brokered] {
        for chaos_seed in [0xC4A05u64, 0x5EED5, 42] {
            let ref_path = journal_path("ref");
            let (reference, _) = campaign(
                chaos_seed,
                transport,
                Mode::Create(&ref_path, CrashPlan::never()),
            )
            .expect("the uninterrupted campaign completes");
            let reference = summary_digest(&reference);
            let records = read_journal(&ref_path)
                .expect("the sealed journal reads back")
                .records
                .len() as u64;
            let _ = std::fs::remove_file(&ref_path);
            // The header is written before the crash plan arms, so kill
            // points count campaign records: 1 is the first round-start,
            // `records - 1` is the final Finished append.
            let last = records - 1;
            for kill in [1, last / 2, last] {
                let path = journal_path("kill");
                let (digest, _) = kill_then_resume(chaos_seed, transport, kill, &path);
                assert_eq!(
                    digest, reference,
                    "{transport:?} seed {chaos_seed:#x}: resume after a kill at record \
                     {kill}/{records} diverged from the uninterrupted run"
                );
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

/// Journaling itself must not perturb the campaign: the durable run and
/// the plain `run_mixed_fleet` produce the same digest.
#[test]
fn journaling_does_not_change_the_digest() {
    let (plain, _) =
        campaign(42, FleetTransport::Brokered, Mode::Plain).expect("the plain campaign completes");
    let path = journal_path("overhead");
    let (journaled, _) = campaign(
        42,
        FleetTransport::Brokered,
        Mode::Create(&path, CrashPlan::never()),
    )
    .expect("the journaled campaign completes");
    assert_eq!(summary_digest(&plain), summary_digest(&journaled));
    let _ = std::fs::remove_file(&path);
}

/// A crash can also tear the file mid-frame (power loss during a
/// write). Resume must truncate the torn tail with a warning — never an
/// error — and still converge to the uninterrupted digest.
#[test]
fn torn_tail_is_truncated_with_a_warning_and_converges() {
    use std::io::Write as _;
    let chaos_seed = 0x7EA4;
    let ref_path = journal_path("torn-ref");
    let (reference, _) = campaign(
        chaos_seed,
        FleetTransport::Brokered,
        Mode::Create(&ref_path, CrashPlan::never()),
    )
    .expect("the uninterrupted campaign completes");
    let reference = summary_digest(&reference);
    let records = read_journal(&ref_path)
        .expect("the sealed journal reads back")
        .records
        .len() as u64;
    let _ = std::fs::remove_file(&ref_path);

    // Kill two-thirds in, then smear garbage over the tail: a torn
    // frame on top of an unsealed journal.
    let path = journal_path("torn");
    let kill = (records - 1) * 2 / 3;
    match campaign(
        chaos_seed,
        FleetTransport::Brokered,
        Mode::Create(&path, CrashPlan::at(kill)),
    ) {
        Ok(_) => panic!("kill at record {kill} never fired"),
        Err(SchemeError::Journal { .. }) => {}
        Err(other) => panic!("kill surfaced as {other}"),
    }
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("the killed journal exists");
    file.write_all(b"\x99torn-frame-garbage")
        .expect("garbage appends");
    drop(file);

    let (resumed, report) = campaign(
        chaos_seed,
        FleetTransport::Brokered,
        Mode::Resume(&path, CrashPlan::never()),
    )
    .expect("a torn tail is a warning, not an error");
    let report = report.expect("resume mode yields a report");
    assert!(
        report.torn.is_some(),
        "the garbage tail must be reported: {report:?}"
    );
    assert_eq!(
        summary_digest(&resumed),
        reference,
        "torn-tail resume diverged from the uninterrupted run"
    );
    // The continuation re-sealed the truncated journal.
    assert!(read_journal(&path)
        .expect("the resumed journal reads back")
        .seal
        .is_some());
    let _ = std::fs::remove_file(&path);
}

/// Resuming a journal whose campaign already finished is read-only: the
/// replay alone rebuilds the summary, and its digest matches the one
/// sealed into the Finished record.
#[test]
fn sealed_journal_resumes_read_only_to_the_same_digest() {
    let path = journal_path("sealed");
    let (finished, _) = campaign(
        42,
        FleetTransport::Direct,
        Mode::Create(&path, CrashPlan::never()),
    )
    .expect("the campaign completes");
    let finished = summary_digest(&finished);
    let (resumed, report) = campaign(
        42,
        FleetTransport::Direct,
        Mode::Resume(&path, CrashPlan::never()),
    )
    .expect("a sealed journal resumes read-only");
    let report = report.expect("resume mode yields a report");
    assert!(report.sealed);
    assert_eq!(report.finished_digest.as_deref(), Some(finished.as_str()));
    assert!(report.rounds_replayed > 0, "{report:?}");
    assert_eq!(summary_digest(&resumed), finished);
    let _ = std::fs::remove_file(&path);
}
