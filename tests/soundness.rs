//! **Theorem 1 (Soundness)** across every scheme: an honest participant is
//! always accepted, for arbitrary domains, sample counts, storage modes
//! and hash functions.

use proptest::prelude::*;
use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::double_check::{run_double_check, DoubleCheckConfig};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::HonestWorker;
use uncheatable_grid::hash::{Md5, Sha1, Sha256};
use uncheatable_grid::merkle::tree_height;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::Domain;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cbs_accepts_honest(n in 1u64..300, m in 1usize..40, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, n / 2);
        let screener = task.match_screener();
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            ParticipantStorage::Full,
            &CbsConfig { task_id: 1, samples: m, seed, report_audit: 2 },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }

    #[test]
    fn cbs_partial_accepts_honest(n in 2u64..300, m in 1usize..20,
                                  ell_seed in any::<u32>(), seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 0);
        let screener = task.match_screener();
        let height = tree_height(n);
        let ell = 1 + ell_seed % height;
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            ParticipantStorage::Partial { subtree_height: ell },
            &CbsConfig { task_id: 1, samples: m, seed, report_audit: 0 },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }

    #[test]
    fn ni_cbs_accepts_honest(n in 1u64..300, m in 1usize..40,
                             k in 1u64..8, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 0);
        let screener = task.match_screener();
        let outcome = run_ni_cbs::<Md5, _, _, _>(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            ParticipantStorage::Full,
            &NiCbsConfig {
                task_id: 1,
                samples: m,
                g_iterations: k,
                report_audit: 1,
                audit_seed: seed,
            },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }

    #[test]
    fn naive_accepts_honest(n in 1u64..300, m in 1usize..40, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 0);
        let screener = task.match_screener();
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            &NaiveConfig { task_id: 1, samples: m, seed },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }

    #[test]
    fn ringer_accepts_honest(n in 8u64..300, d in 1usize..8, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 1);
        let screener = task.match_screener();
        let outcome = run_ringer(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            &RingerConfig { task_id: 1, ringers: d, seed },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }

    #[test]
    fn double_check_accepts_honest_pair(n in 1u64..200, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 0);
        let screener = task.match_screener();
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            &HonestWorker,
            &DoubleCheckConfig { task_id: 1 },
        ).unwrap();
        prop_assert!(outcome.accepted);
    }
}

#[test]
fn soundness_holds_for_every_hash_function() {
    let task = PasswordSearch::with_hidden_password(4, 8);
    let screener = task.match_screener();
    let domain = Domain::new(0, 100);
    let config = CbsConfig {
        task_id: 1,
        samples: 12,
        seed: 9,
        report_audit: 0,
    };
    assert!(
        run_cbs::<Md5, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            &config
        )
        .unwrap()
        .accepted
    );
    assert!(
        run_cbs::<Sha1, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            &config
        )
        .unwrap()
        .accepted
    );
    assert!(
        run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            &config
        )
        .unwrap()
        .accepted
    );
}

#[test]
fn soundness_holds_for_offset_domains() {
    // Domains need not start at zero (participants get sub-ranges).
    let task = PasswordSearch::with_hidden_password(4, 5_000_010);
    let screener = task.match_screener();
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(5_000_000, 64),
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 1,
            samples: 10,
            seed: 3,
            report_audit: 0,
        },
    )
    .unwrap();
    assert!(outcome.accepted);
    assert_eq!(outcome.reports[0].input, 5_000_010);
}
