//! Failure injection: protocols must fail *cleanly* (typed errors, no
//! hangs, no panics) when peers die, lie structurally, or reorder
//! messages. Distributed-systems hygiene for the scheme layer.

use uncheatable_grid::core::scheme::cbs::{participant_cbs, supervisor_cbs, CbsConfig};
use uncheatable_grid::core::{ParticipantStorage, SchemeError};
use uncheatable_grid::grid::{duplex, Assignment, CostLedger, GridError, HonestWorker, Message};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::Domain;

fn task() -> PasswordSearch {
    PasswordSearch::with_hidden_password(1, 2)
}

#[test]
fn supervisor_reports_disconnect_if_participant_dies_before_commit() {
    let t = task();
    let screener = t.match_screener();
    let (sup_ep, part_ep) = duplex();
    drop(part_ep); // participant never shows up
    let ledger = CostLedger::new();
    let err = supervisor_cbs::<Sha256, _, _>(
        &sup_ep,
        &t,
        &screener,
        Domain::new(0, 16),
        &CbsConfig {
            task_id: 1,
            samples: 2,
            seed: 1,
            report_audit: 0,
        },
        &ledger,
    )
    .unwrap_err();
    assert_eq!(err, SchemeError::Grid(GridError::Disconnected));
}

#[test]
fn participant_reports_disconnect_if_supervisor_dies_after_commit() {
    let t = task();
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let screener = t.match_screener();
            participant_cbs::<Sha256, _, _, _>(
                &part_ep,
                &t,
                &screener,
                &HonestWorker,
                ParticipantStorage::Full,
                &ledger,
            )
        });
        sup_ep
            .send(&Message::Assign(Assignment {
                task_id: 1,
                domain: Domain::new(0, 16),
            }))
            .unwrap();
        let _commit = sup_ep.recv().unwrap();
        drop(sup_ep); // supervisor vanishes before challenging
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err, SchemeError::Grid(GridError::Disconnected));
    });
}

#[test]
fn supervisor_rejects_out_of_order_messages() {
    let t = task();
    let screener = t.match_screener();
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _assign = part_ep.recv().unwrap();
            // Sends Reports where a Commit is expected.
            part_ep
                .send(&Message::Reports {
                    task_id: 1,
                    reports: vec![],
                })
                .unwrap();
        });
        let err = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &t,
            &screener,
            Domain::new(0, 16),
            &CbsConfig {
                task_id: 1,
                samples: 2,
                seed: 1,
                report_audit: 0,
            },
            &ledger,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemeError::UnexpectedMessage {
                expected: "Commit",
                got: "Reports"
            }
        );
    });
}

#[test]
fn supervisor_rejects_wrong_task_id() {
    let t = task();
    let screener = t.match_screener();
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _assign = part_ep.recv().unwrap();
            part_ep
                .send(&Message::Commit {
                    task_id: 999,
                    root: vec![0u8; 32],
                })
                .unwrap();
        });
        let err = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &t,
            &screener,
            Domain::new(0, 16),
            &CbsConfig {
                task_id: 1,
                samples: 2,
                seed: 1,
                report_audit: 0,
            },
            &ledger,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemeError::TaskMismatch {
                expected: 1,
                got: 999
            }
        );
    });
}

#[test]
fn supervisor_rejects_malformed_commitment() {
    let t = task();
    let screener = t.match_screener();
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _assign = part_ep.recv().unwrap();
            part_ep
                .send(&Message::Commit {
                    task_id: 1,
                    root: vec![0u8; 31], // not a SHA-256 digest
                })
                .unwrap();
        });
        let err = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &t,
            &screener,
            Domain::new(0, 16),
            &CbsConfig {
                task_id: 1,
                samples: 2,
                seed: 1,
                report_audit: 0,
            },
            &ledger,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemeError::MalformedPayload {
                what: "commitment root"
            }
        );
    });
}

#[test]
fn supervisor_rejects_short_proof_list() {
    let t = task();
    let screener = t.match_screener();
    let (sup_ep, part_ep) = duplex();
    let ledger = CostLedger::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _assign = part_ep.recv().unwrap();
            part_ep
                .send(&Message::Commit {
                    task_id: 1,
                    root: vec![0u8; 32],
                })
                .unwrap();
            let _challenge = part_ep.recv().unwrap();
            part_ep
                .send(&Message::Proofs {
                    task_id: 1,
                    proofs: vec![], // challenged 3, answered 0
                })
                .unwrap();
            part_ep
                .send(&Message::Reports {
                    task_id: 1,
                    reports: vec![],
                })
                .unwrap();
        });
        let err = supervisor_cbs::<Sha256, _, _>(
            &sup_ep,
            &t,
            &screener,
            Domain::new(0, 16),
            &CbsConfig {
                task_id: 1,
                samples: 3,
                seed: 1,
                report_audit: 0,
            },
            &ledger,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemeError::ProofCountMismatch {
                expected: 3,
                got: 0
            }
        );
    });
}
