//! The chaos soak: mixed five-scheme campaigns over real participant
//! threads with seeded fault injection (duplication, reordering, latency,
//! crash/restart churn, message loss). Verifies the three guarantees the
//! thread-per-participant runtime makes:
//!
//! 1. **Correctness under chaos** — honest participants end up accepted,
//!    cheaters rejected, no matter what the fault plan does to the links
//!    (failed sessions are reassigned until a clean attempt lands).
//! 2. **No hangs** — a crashed participant or a dropped message fails its
//!    session with a typed error ([`GridError::Disconnected`] /
//!    [`SchemeError::TimedOut`]) instead of wedging the engine.
//! 3. **Bit-identical replay** — the same seed reproduces the same fault
//!    log, the same per-member attempt counts, verdicts and byte counts.
//!
//! CI runs this file as the dedicated `chaos-soak` job under a hard
//! `timeout-minutes` guard, so a reintroduced hang fails fast.

use std::time::{Duration, Instant};
use uncheatable_grid::core::scheme::cbs::CbsScheme;
use uncheatable_grid::core::scheme::double_check::DoubleCheckScheme;
use uncheatable_grid::core::scheme::naive::NaiveScheme;
use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
use uncheatable_grid::core::scheme::ringer::RingerScheme;
use uncheatable_grid::core::{
    chaos_link_id, run_mixed_fleet, FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig,
    SchemeError, VerificationScheme,
};
use uncheatable_grid::grid::runtime::FaultPlan;
use uncheatable_grid::grid::{
    CheatSelection, GridError, HonestWorker, MaliciousWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{AcceptAllScreener, Domain, ZeroGuesser};

fn spec<'a>(
    scheme: &'a dyn VerificationScheme<Sha256>,
    behaviours: Vec<&'a dyn WorkerBehaviour>,
) -> MemberSpec<'a, Sha256> {
    MemberSpec { scheme, behaviours }
}

/// A replay-comparable fingerprint of everything that must be
/// deterministic: verdicts, attempts, per-session supervisor traffic,
/// ledger totals and the injected-fault log. (Wall-clock throughput is
/// real time and deliberately excluded.)
fn digest(summary: &FleetSummary) -> String {
    let mut out = String::new();
    for m in &summary.members {
        out.push_str(&format!(
            "member {} share {} accepted {} attempts {} verdict {:?} \
             link(tx {} rx {}) sup {:?} part {:?}\n",
            m.participant,
            m.share,
            m.outcome.accepted,
            m.attempts,
            m.outcome.verdict,
            m.outcome.supervisor_link.bytes_sent,
            m.outcome.supervisor_link.bytes_received,
            m.outcome.supervisor_costs,
            m.outcome.participant_costs,
        ));
    }
    out.push_str(&format!(
        "sessions {} bytes {}\n",
        summary.throughput.sessions, summary.throughput.bytes
    ));
    out.push_str(&format!("faults {:?}\n", summary.fault_events));
    out
}

/// The acceptance campaign: all five schemes, ten participant threads,
/// three behaviour kinds, a nonzero chaos seed with churn — completed
/// with the verdicts each scheme's theory demands, twice, bit-identically.
#[test]
fn mixed_five_scheme_chaos_campaign_is_correct_and_replays_bit_identically() {
    let task = PasswordSearch::with_hidden_password(7, 3);
    let screener = AcceptAllScreener;
    let honest = HonestWorker;
    let lazy = SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(4), 9);
    let malicious = MaliciousWorker::new(1.0, 5);

    let cbs = CbsScheme {
        samples: 24,
        seed: 11,
        report_audit: 0,
    };
    let cbs_audited = CbsScheme {
        samples: 10,
        seed: 12,
        report_audit: 4,
    };
    let ni = NiCbsScheme {
        samples: 24,
        g_iterations: 2,
        report_audit: 0,
        audit_seed: 13,
    };
    let naive = NaiveScheme {
        samples: 24,
        seed: 14,
    };
    let ringer = RingerScheme {
        ringers: 8,
        seed: 15,
    };
    let double_check = DoubleCheckScheme;

    let run = || {
        // (member, expected acceptance)
        let members: Vec<(MemberSpec<'_, Sha256>, bool)> = vec![
            (spec(&cbs, vec![&honest]), true),
            (spec(&cbs, vec![&lazy]), false),
            (spec(&ni, vec![&honest]), true),
            (spec(&ni, vec![&lazy]), false),
            (spec(&naive, vec![&honest]), true),
            (spec(&naive, vec![&lazy]), false),
            (spec(&ringer, vec![&honest]), true),
            (spec(&cbs_audited, vec![&malicious]), false),
            (spec(&double_check, vec![&honest, &honest]), true),
        ];
        let expected: Vec<bool> = members.iter().map(|(_, ok)| *ok).collect();
        let specs: Vec<MemberSpec<'_, Sha256>> = members.into_iter().map(|(m, _)| m).collect();
        assert!(
            specs.iter().map(|m| m.behaviours.len()).sum::<usize>() >= 8,
            "the soak must run at least 8 participant threads"
        );
        let summary = run_mixed_fleet(
            &task,
            &screener,
            Domain::new(0, specs.len() as u64 * 64),
            &specs,
            &MixedFleetConfig {
                transport: FleetTransport::Brokered,
                chaos: Some(FaultPlan::chaos(0xC4A05).with_churn(200)),
                deadline: Some(Duration::from_secs(20)),
                retries: 8,
                ..MixedFleetConfig::default()
            },
        )
        .expect("chaos campaign must converge within the retry budget");
        (summary, expected)
    };

    let (first, expected) = run();
    for (member, expected) in first.members.iter().zip(&expected) {
        assert_eq!(
            member.outcome.accepted, *expected,
            "member {} ({}) verdict diverged under chaos: {} after {} attempts",
            member.participant, member.share, member.outcome.verdict, member.attempts
        );
    }
    // The chaos actually bit: faults were injected and recorded.
    assert!(
        !first.fault_events.is_empty(),
        "a nonzero chaos seed must inject faults"
    );
    // Throughput is measured, not estimated.
    assert!(first.throughput.sessions >= 9);
    assert!(first.throughput.bytes > 0);
    assert!(first.throughput.wall > Duration::ZERO);
    assert!(first.throughput.sessions_per_sec() > 0.0);

    // Bit-identical replay from the same seed.
    let (second, _) = run();
    assert_eq!(
        digest(&first),
        digest(&second),
        "the same chaos seed must replay bit-identically"
    );
}

/// Regression: a participant that crashes mid-session must fail its
/// session with a typed error — for every scheme, over both transports —
/// never hang the engine.
#[test]
fn crash_mid_session_fails_cleanly_for_every_scheme() {
    let task = PasswordSearch::with_hidden_password(1, 2);
    let screener = AcceptAllScreener;
    let honest = HonestWorker;
    // Every link crashes; find a seed whose slot-0 participant dies
    // within its first two messages, early enough to strand any scheme's
    // dialogue.
    let plan = (0..)
        .map(|seed| FaultPlan::quiet(seed).with_churn(1024))
        .find(|plan| matches!(plan.link(chaos_link_id(0, 0)).crash_after(), Some(k) if k <= 2))
        .unwrap();

    let cbs = CbsScheme {
        samples: 8,
        seed: 1,
        report_audit: 0,
    };
    let ni = NiCbsScheme {
        samples: 8,
        g_iterations: 1,
        report_audit: 0,
        audit_seed: 2,
    };
    let naive = NaiveScheme {
        samples: 8,
        seed: 3,
    };
    let ringer = RingerScheme {
        ringers: 4,
        seed: 4,
    };
    let double_check = DoubleCheckScheme;
    let schemes: Vec<(&str, &dyn VerificationScheme<Sha256>, usize)> = vec![
        ("cbs", &cbs, 1),
        ("ni-cbs", &ni, 1),
        ("naive", &naive, 1),
        ("ringer", &ringer, 1),
        ("double-check", &double_check, 2),
    ];
    for (name, scheme, slots) in schemes {
        for transport in [FleetTransport::Direct, FleetTransport::Brokered] {
            // ugc-lint: allow(wall-clock): test-harness stopwatch — bounds how long the soak may take, asserts nothing semantic
            let started = Instant::now();
            let err = run_mixed_fleet(
                &task,
                &screener,
                Domain::new(0, 32),
                &[spec(scheme, vec![&honest as &dyn WorkerBehaviour; slots])],
                &MixedFleetConfig {
                    transport,
                    chaos: Some(plan),
                    deadline: Some(Duration::from_secs(10)),
                    retries: 0,
                    ..MixedFleetConfig::default()
                },
            )
            .expect_err("a crashed participant must fail the session");
            assert!(
                matches!(
                    err,
                    SchemeError::Grid(GridError::Disconnected) | SchemeError::TimedOut
                ),
                "{name}/{transport:?}: unexpected error {err}"
            );
            assert!(
                started.elapsed() < Duration::from_secs(15),
                "{name}/{transport:?}: crash handling took {:?} — engine hang?",
                started.elapsed()
            );
        }
    }
}

/// A crashed session is reassigned to a fresh participant (with a fresh
/// fault schedule) and recovers — the restart half of crash/restart
/// churn.
#[test]
fn crashed_session_is_reassigned_and_recovers() {
    let task = PasswordSearch::with_hidden_password(3, 5);
    let screener = task.match_screener();
    let scheme = CbsScheme {
        samples: 10,
        seed: 6,
        report_audit: 0,
    };
    // Round 0's link crashes early; round 1's replacement link does not
    // crash at all.
    let plan = (0..)
        .map(|seed| FaultPlan::quiet(seed).with_churn(512))
        .find(|plan| {
            matches!(plan.link(chaos_link_id(0, 0)).crash_after(), Some(k) if k <= 2)
                && plan.link(chaos_link_id(1, 0)).crash_after().is_none()
        })
        .unwrap();
    let honest = HonestWorker;
    let summary = run_mixed_fleet(
        &task,
        &screener,
        Domain::new(0, 64),
        &[spec(&scheme, vec![&honest])],
        &MixedFleetConfig {
            transport: FleetTransport::Brokered,
            chaos: Some(plan),
            deadline: Some(Duration::from_secs(10)),
            retries: 2,
            ..MixedFleetConfig::default()
        },
    )
    .expect("the reassigned attempt must succeed");
    let member = &summary.members[0];
    assert!(
        member.outcome.accepted,
        "verdict: {}",
        member.outcome.verdict
    );
    assert_eq!(member.attempts, 2, "exactly one reassignment expected");
    assert!(
        summary.fault_events.iter().any(
            |e| matches!(e, uncheatable_grid::grid::FaultEvent::Crashed { link, .. }
                if *link == chaos_link_id(0, 0))
        ),
        "the crash must be on the record: {:?}",
        summary.fault_events
    );
    assert_eq!(summary.throughput.sessions, 2);
}

/// A dropped message stalls its session; the per-session deadline fails
/// it with [`SchemeError::TimedOut`] instead of hanging, and a retry
/// (whose fresh link drops nothing) recovers.
#[test]
fn dropped_messages_time_out_and_reassignment_recovers() {
    let task = PasswordSearch::with_hidden_password(2, 4);
    let screener = task.match_screener();
    let scheme = CbsScheme {
        samples: 6,
        seed: 8,
        report_audit: 0,
    };
    use uncheatable_grid::grid::runtime::{FaultDecision, LinkDirection};
    // Round 0: the participant's very first inbound message (the
    // assignment) is dropped. Round 1: a fault-free dialogue.
    let plan = (0..)
        .map(|seed| FaultPlan::quiet(seed).with_drops(256))
        .find(|plan| {
            let round0 = plan.link(chaos_link_id(0, 0));
            let round1 = plan.link(chaos_link_id(1, 0));
            round0.decision(LinkDirection::Inbound, 0) == FaultDecision::Drop
                && (0..6).all(|seq| {
                    round1.decision(LinkDirection::Inbound, seq) == FaultDecision::Deliver
                        && round1.decision(LinkDirection::Outbound, seq) == FaultDecision::Deliver
                })
        })
        .unwrap();
    let honest = HonestWorker;
    let run = |retries: u32| {
        run_mixed_fleet(
            &task,
            &screener,
            Domain::new(0, 32),
            &[spec(&scheme, vec![&honest])],
            &MixedFleetConfig {
                transport: FleetTransport::Brokered,
                chaos: Some(plan),
                deadline: Some(Duration::from_millis(400)),
                retries,
                ..MixedFleetConfig::default()
            },
        )
    };
    // Without retries the timeout surfaces as the campaign's error.
    // ugc-lint: allow(wall-clock): test-harness stopwatch — asserts the timeout fires promptly, not any semantic result
    let started = Instant::now();
    let err = run(0).expect_err("a dropped assignment must time the session out");
    assert_eq!(err, SchemeError::TimedOut);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout handling took {:?}",
        started.elapsed()
    );
    // With a retry the session is reassigned onto a clean link and lands.
    let summary = run(1).expect("the retry must recover the session");
    assert!(summary.members[0].outcome.accepted);
    assert_eq!(summary.members[0].attempts, 2);
}
