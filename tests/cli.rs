//! End-to-end tests of the `ugc` command-line driver.

use std::process::{Command, Output};

fn ugc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ugc"))
        .args(args)
        .output()
        .expect("ugc binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = ugc(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage: ugc"));
}

#[test]
fn no_args_prints_usage() {
    let out = ugc(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("sample-size"));
}

#[test]
fn unknown_command_fails() {
    let out = ugc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn sample_size_reproduces_paper_anchors() {
    let out = ugc(&[
        "sample-size",
        "--epsilon",
        "1e-4",
        "--r",
        "0.5",
        "--q",
        "0.5",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("m = 33"), "{}", stdout(&out));
    let out = ugc(&["sample-size", "--epsilon", "1e-4", "--r", "0.5", "--q", "0"]);
    assert!(stdout(&out).contains("m = 14"), "{}", stdout(&out));
}

#[test]
fn sample_size_handles_unreachable_case() {
    let out = ugc(&["sample-size", "--r", "1.0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("no finite m"));
}

#[test]
fn detection_prints_eq2() {
    let out = ugc(&["detection", "--r", "0.5", "--q", "0", "--m", "10"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.contains("9.766e-4") || text.contains("9.77e-4"),
        "{text}"
    );
}

#[test]
fn run_cbs_honest_accepts() {
    let out = ugc(&["run", "--scheme", "cbs", "--n", "256", "--m", "10"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("verdict:      accepted"), "{text}");
    assert!(text.contains("result(s) of interest"), "{text}");
}

#[test]
fn run_cbs_cheater_rejected() {
    let out = ugc(&[
        "run", "--scheme", "cbs", "--n", "256", "--m", "25", "--cheat", "0.5",
    ]);
    assert!(out.status.success());
    assert!(!stdout(&out).contains("verdict:      accepted"));
}

#[test]
fn run_all_schemes_on_password() {
    for scheme in ["cbs", "ni-cbs", "naive", "ringer"] {
        let out = ugc(&["run", "--scheme", scheme, "--n", "128", "--m", "8"]);
        assert!(out.status.success(), "{scheme} failed");
        assert!(
            stdout(&out).contains("accepted"),
            "{scheme}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn run_all_workloads_through_cbs() {
    for workload in ["password", "seti", "docking", "primes"] {
        let out = ugc(&["run", "--workload", workload, "--n", "64", "--m", "5"]);
        assert!(out.status.success(), "{workload} failed");
    }
}

#[test]
fn ringer_rejects_non_one_way_workload() {
    let out = ugc(&[
        "run",
        "--scheme",
        "ringer",
        "--workload",
        "seti",
        "--n",
        "64",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("one-way"));
}

#[test]
fn run_partial_storage() {
    let out = ugc(&[
        "run",
        "--scheme",
        "cbs",
        "--n",
        "256",
        "--m",
        "8",
        "--partial",
        "3",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("accepted"));
}

#[test]
fn fleet_flags_the_cheater() {
    let out = ugc(&[
        "fleet",
        "--participants",
        "3",
        "--cheaters",
        "1",
        "--n",
        "384",
        "--m",
        "20",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("2 accepted, 1 rejected"), "{text}");
    assert!(text.contains("reassign"), "{text}");
}

#[test]
fn fleet_over_broker_matches_direct_verdicts() {
    let base = [
        "fleet",
        "--participants",
        "3",
        "--cheaters",
        "1",
        "--n",
        "384",
        "--m",
        "20",
    ];
    for scheme in ["cbs", "ni-cbs", "naive"] {
        let direct = ugc(&[&base[..], &["--scheme", scheme]].concat());
        let brokered = ugc(&[&base[..], &["--scheme", scheme, "--broker"]].concat());
        assert!(direct.status.success(), "{scheme} direct failed");
        assert!(brokered.status.success(), "{scheme} brokered failed");
        assert!(
            stdout(&direct).contains("2 accepted, 1 rejected"),
            "{scheme}: {}",
            stdout(&direct)
        );
        assert!(
            stdout(&brokered).contains("2 accepted, 1 rejected"),
            "{scheme}: {}",
            stdout(&brokered)
        );
        assert!(stdout(&brokered).contains("grid broker"));
    }
}

#[test]
fn fleet_chaos_campaign_reports_faults_and_throughput() {
    let args = [
        "fleet",
        "--threads",
        "8",
        "--cheaters",
        "1",
        "--chaos",
        "7",
        "--churn",
        "--broker",
        "--n",
        "512",
        "--m",
        "20",
    ];
    let out = ugc(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("fleet of 8 threads"), "{text}");
    assert!(text.contains("7 accepted, 1 rejected"), "{text}");
    assert!(text.contains("chaos seed 7:"), "{text}");
    assert!(text.contains("faults injected"), "{text}");
    assert!(text.contains("sessions/s"), "{text}");

    // The same seed replays to the same verdicts and the same fault log
    // (the throughput line is wall-clock and excluded).
    let replay = ugc(&args);
    let replay_text = stdout(&replay);
    let stable = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.starts_with("throughput:"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(stable(&text), stable(&replay_text));
}

#[test]
fn invalid_number_reports_cleanly() {
    let out = ugc(&["run", "--n", "banana"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value"));
}

#[test]
fn fleet_bad_flag_value_prints_usage_and_fails() {
    // A bad --participants value must produce a usage hint and a nonzero
    // exit, never a panic.
    let out = ugc(&["fleet", "--participants", "banana"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
    let out = ugc(&["fleet", "--workers", "-3"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value"));
    // A dangling --key with no value must error, not silently fall back
    // to the default (a forgotten `--chaos <seed>` would otherwise run
    // the campaign without chaos and exit 0).
    let out = ugc(&["fleet", "--participants", "2", "--chaos"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--chaos requires a value"), "{err}");
}

#[test]
fn fleet_unrecognized_flag_prints_usage_and_fails() {
    // Typos must not be silently ignored (they used to be): the command
    // errors, names the offender and shows the usage.
    let out = ugc(&["fleet", "--particpants", "3"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unrecognized argument"), "{err}");
    assert!(err.contains("--particpants"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
}

#[test]
fn fleet_workers_pool_matches_thread_per_participant_verdicts() {
    // The same campaign on a 2-worker scheduler pool: identical verdicts
    // and identical replayable lines (only the execution header and the
    // wall-clock throughput line differ from the threaded run).
    let base = [
        "fleet",
        "--participants",
        "6",
        "--cheaters",
        "1",
        "--n",
        "384",
        "--m",
        "15",
        "--chaos",
        "5",
        "--churn",
        "--broker",
    ];
    let stable = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| !l.starts_with("throughput:") && !l.starts_with("fleet of"))
            .map(str::to_owned)
            .collect()
    };
    let threaded = ugc(&base);
    assert!(threaded.status.success());
    let pooled = ugc(&[&base[..], &["--workers", "2"]].concat());
    assert!(pooled.status.success());
    assert!(
        stdout(&pooled).contains("6 participants on 2 scheduler workers"),
        "{}",
        stdout(&pooled)
    );
    assert_eq!(
        stable(&threaded),
        stable(&pooled),
        "worker pool must not change verdicts, attempts or the fault log"
    );
}

#[test]
fn lint_audits_workspace_clean() {
    // The repo must audit clean through the CLI wrapper; the summary line
    // names the file count and the suppression inventory.
    let out = ugc(&["lint"]);
    assert!(
        out.status.success(),
        "ugc lint found violations:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("0 finding(s)"), "{text}");
    assert!(text.contains("suppression"), "{text}");
    assert!(text.contains("vendor unsafe count:"), "{text}");
}

#[test]
fn lint_json_output_is_structured() {
    let out = ugc(&["lint", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"findings\": []"), "{text}");
    assert!(text.contains("\"clean\": true"), "{text}");
    assert!(text.contains("\"vendor_unsafe\""), "{text}");
}

#[test]
fn lint_unknown_flag_prints_usage_and_fails() {
    let out = ugc(&["lint", "--jsno"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unrecognized argument"), "{err}");
    assert!(err.contains("--jsno"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
    // A dangling --root must error, not silently audit the cwd.
    let out = ugc(&["lint", "--root"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--root requires a value"));
}

#[test]
fn fleet_resume_without_journal_fails() {
    // --resume without --journal is a flag error: usage hint, nonzero
    // exit, no campaign run.
    let out = ugc(&["fleet", "--resume"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--resume requires --journal"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
}

#[test]
fn fleet_kill_at_requires_journal() {
    let out = ugc(&["fleet", "--kill-at", "3"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--kill-at requires --journal"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
}

#[test]
fn fleet_verify_journal_rejects_campaign_flags() {
    // --verify-journal only checks a journal; mixing it with campaign
    // flags (or --resume / --workers) must fail with a usage hint.
    let out = ugc(&[
        "fleet",
        "--journal",
        "x.wal",
        "--verify-journal",
        "--participants",
        "3",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--verify-journal"), "{err}");
    assert!(err.contains("usage: ugc"), "{err}");
    let out = ugc(&[
        "fleet",
        "--journal",
        "x.wal",
        "--verify-journal",
        "--resume",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot be combined"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // And without --journal there is nothing to verify.
    let out = ugc(&["fleet", "--verify-journal"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--verify-journal requires --journal"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fleet_resume_rejects_campaign_flags() {
    let out = ugc(&["fleet", "--journal", "x.wal", "--resume", "--n", "512"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("drop the campaign flags"), "{err}");
    assert!(err.contains("--n 512"), "{err}");
}

#[test]
fn fleet_journal_kill_resume_reproduces_digest() {
    // The durable-campaign walkthrough, end to end through the CLI: a
    // journaled run killed mid-campaign resumes to the same digest (and
    // the same per-participant lines) as a run that was never journaled,
    // and the sealed journal passes attestation.
    let journal = std::env::temp_dir().join(format!("ugc-cli-journal-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let path = journal.to_str().expect("temp path is UTF-8");
    let base = [
        "fleet",
        "--participants",
        "3",
        "--cheaters",
        "1",
        "--n",
        "384",
        "--m",
        "20",
        "--chaos",
        "7",
    ];
    let stable = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  participant") || l.starts_with("digest:"))
            .map(str::to_owned)
            .collect()
    };

    let reference = ugc(&base);
    assert!(reference.status.success());
    assert!(
        stdout(&reference).contains("digest: "),
        "{}",
        stdout(&reference)
    );

    let killed = ugc(&[&base[..], &["--journal", path, "--kill-at", "4"]].concat());
    assert_eq!(
        killed.status.code(),
        Some(2),
        "an injected kill point must exit 2, not fail generically: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        stdout(&killed).contains("campaign aborted"),
        "{}",
        stdout(&killed)
    );

    // --resume takes no campaign flags: the journal header carries them.
    let resumed = ugc(&["fleet", "--journal", path, "--resume"]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(
        stdout(&resumed).contains("resumed: "),
        "{}",
        stdout(&resumed)
    );
    assert!(stdout(&resumed).contains("sealed"), "{}", stdout(&resumed));
    assert_eq!(
        stable(&reference),
        stable(&resumed),
        "a killed-and-resumed campaign must reproduce the uninterrupted digest"
    );

    let verified = ugc(&["fleet", "--journal", path, "--verify-journal"]);
    assert!(
        verified.status.success(),
        "{}",
        String::from_utf8_lossy(&verified.stderr)
    );
    assert!(
        stdout(&verified).contains("attestation: "),
        "{}",
        stdout(&verified)
    );
    let _ = std::fs::remove_file(&journal);
}

fn digest_line(out: &Output) -> String {
    stdout(out)
        .lines()
        .find(|l| l.starts_with("digest: "))
        .unwrap_or_else(|| panic!("no digest line in:\n{}", stdout(out)))
        .to_owned()
}

#[test]
fn fleet_transport_brokered_equals_deprecated_broker_flag() {
    let base = [
        "fleet",
        "--participants",
        "3",
        "--cheaters",
        "1",
        "--n",
        "240",
        "--m",
        "8",
    ];
    let spelled = ugc(&[&base[..], &["--transport", "brokered"]].concat());
    let deprecated = ugc(&[&base[..], &["--broker"]].concat());
    assert!(spelled.status.success());
    assert!(deprecated.status.success());
    // Same campaign, same digest — the alias changes nothing but stderr.
    assert_eq!(digest_line(&spelled), digest_line(&deprecated));
    assert!(
        String::from_utf8_lossy(&deprecated.stderr).contains("--broker is deprecated"),
        "the alias must hint at the new spelling: {}",
        String::from_utf8_lossy(&deprecated.stderr)
    );
    assert!(String::from_utf8_lossy(&spelled.stderr).is_empty());
}

#[test]
fn fleet_transport_flag_matrix() {
    // Unknown transport value: error names the flag and the remote path.
    let out = ugc(&["fleet", "--transport", "carrier-pigeon"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown transport"), "{err}");
    assert!(err.contains("--connect"), "{err}");

    // Mixing the old and new spellings is a conflict, not a guess.
    let out = ugc(&["fleet", "--transport", "brokered", "--broker"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("conflicts"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A dangling --transport must not silently default.
    let out = ugc(&["fleet", "--transport"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires a value"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fleet_connect_flag_matrix() {
    // --connect excludes every journal flag.
    for extra in [
        &["--journal", "/tmp/x.wal"][..],
        &["--resume"][..],
        &["--kill-at", "3"][..],
        &["--verify-journal"][..],
    ] {
        let out = ugc(&[&["fleet", "--connect", "127.0.0.1:1"][..], extra].concat());
        assert!(!out.status.success(), "--connect with {extra:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("crash-durability"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // --connect implies the remote transport; picking another is an error.
    for extra in [&["--transport", "direct"][..], &["--broker"][..]] {
        let out = ugc(&[&["fleet", "--connect", "127.0.0.1:1"][..], extra].concat());
        assert!(!out.status.success(), "--connect with {extra:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("implies the remote transport"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Chaos is keyed by in-process link identity; refuse it remotely.
    for extra in [&["--chaos", "7"][..], &["--churn"][..]] {
        let out = ugc(&[&["fleet", "--connect", "127.0.0.1:1"][..], extra].concat());
        assert!(!out.status.success(), "--connect with {extra:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("cannot inject chaos"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn broker_serve_flag_matrix() {
    let out = ugc(&["broker"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown broker subcommand"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ugc(&["broker", "relay"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("broker serve"));

    let out = ugc(&["broker", "serve", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unrecognized"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Zero participants can never assemble a grid; refuse up front.
    let out = ugc(&[
        "broker",
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--participants",
        "0",
    ]);
    assert!(!out.status.success());
}

#[test]
fn participant_join_flag_matrix() {
    let out = ugc(&["participant"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown participant subcommand"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ugc(&["participant", "join"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires the broker address"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ugc(&["participant", "join", "127.0.0.1:9", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecognized"));
}

#[test]
fn cross_process_campaign_digest_matches_in_process() {
    // The full three-process walkthrough, through the real binaries: a
    // serve process, two join processes, and a --connect supervisor,
    // whose printed digest must equal the in-process brokered run.
    use std::io::BufRead;

    let campaign = [
        "--participants",
        "3",
        "--cheaters",
        "1",
        "--n",
        "240",
        "--m",
        "8",
        "--scheme",
        "double-check",
    ];
    let reference = ugc(&[&["fleet"][..], &campaign, &["--transport", "brokered"]].concat());
    assert!(reference.status.success());

    let mut serve = Command::new(env!("CARGO_BIN_EXE_ugc"))
        .args([
            "broker",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--participants",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // The first stdout line announces the actual bound address.
    let mut first_line = String::new();
    let mut serve_out = std::io::BufReader::new(serve.stdout.take().expect("serve stdout"));
    serve_out
        .read_line(&mut first_line)
        .expect("serve announces its address");
    let addr = first_line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable serve banner: {first_line:?}"))
        .to_owned();

    let joins: Vec<_> = (0..2)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_ugc"))
                .args(["participant", "join", &addr])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("join spawns")
        })
        .collect();

    let connected = ugc(&[&["fleet", "--connect", &addr][..], &campaign].concat());
    assert!(
        connected.status.success(),
        "{}",
        String::from_utf8_lossy(&connected.stderr)
    );
    assert!(
        stdout(&connected).contains("remote grid broker"),
        "{}",
        stdout(&connected)
    );
    assert_eq!(
        digest_line(&reference),
        digest_line(&connected),
        "cross-process digest diverged:\nin-process:\n{}\nremote:\n{}",
        stdout(&reference),
        stdout(&connected)
    );

    for join in joins {
        let out = join.wait_with_output().expect("join exits");
        assert!(out.status.success());
        assert!(stdout(&out).contains("slot(s) served"), "{}", stdout(&out));
    }
    assert!(serve.wait().expect("serve exits").success());
}

#[test]
fn fleet_workers_zero_picks_available_cores() {
    let out = ugc(&[
        "fleet",
        "--participants",
        "3",
        "--cheaters",
        "0",
        "--n",
        "96",
        "--m",
        "6",
        "--workers",
        "0",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("scheduler workers"), "{text}");
    assert!(text.contains("3 accepted, 0 rejected"), "{text}");
}
