//! Integration test reproducing **Fig. 1** of the paper node by node: the
//! eight-leaf Merkle tree, the sample `x_3`, the sibling set
//! `{L4, A, D, F}` and the root reconstruction footnote.

use uncheatable_grid::hash::{HashFunction, Sha256};
use uncheatable_grid::merkle::{MerkleProof, MerkleTree};

/// The paper's naming (1-indexed leaves L1…L8; our indices are 0-based, so
/// the paper's sample x3 is leaf index 2).
struct Fig1 {
    leaves: Vec<Vec<u8>>,
    phi_a: [u8; 32],
    phi_b: [u8; 32],
    phi_c: [u8; 32],
    phi_d: [u8; 32],
    phi_e: [u8; 32],
    phi_f: [u8; 32],
    phi_r: [u8; 32],
}

fn build_fig1() -> Fig1 {
    // f(x) = x² as a stand-in computation.
    let leaves: Vec<Vec<u8>> = (1u64..=8).map(|x| (x * x).to_le_bytes().to_vec()).collect();
    let phi_a = Sha256::digest_pair(&leaves[0], &leaves[1]);
    let phi_b = Sha256::digest_pair(&leaves[2], &leaves[3]);
    let phi_c = Sha256::digest_pair(&phi_a, &phi_b);
    let phi_d = Sha256::digest_pair(&leaves[4], &leaves[5]);
    let phi_e = Sha256::digest_pair(&leaves[6], &leaves[7]);
    let phi_f = Sha256::digest_pair(&phi_d, &phi_e);
    let phi_r = Sha256::digest_pair(&phi_c, &phi_f);
    Fig1 {
        leaves,
        phi_a,
        phi_b,
        phi_c,
        phi_d,
        phi_e,
        phi_f,
        phi_r,
    }
}

#[test]
fn tree_matches_eq1_node_by_node() {
    let fig = build_fig1();
    let tree: MerkleTree<Sha256> = MerkleTree::build(&fig.leaves).unwrap();
    assert_eq!(tree.root(), fig.phi_r, "Φ(R) = hash(Φ(E′)||Φ(F)) chain");
    assert_eq!(tree.height(), 3);
}

#[test]
fn intermediate_nodes_match_eq1() {
    // Φ(D) and Φ(E) are leaf-pair digests feeding Φ(F) — pin them so the
    // Fig. 1 node map stays complete.
    let fig = build_fig1();
    assert_eq!(
        fig.phi_d,
        Sha256::digest_pair(&fig.leaves[4], &fig.leaves[5])
    );
    assert_eq!(
        fig.phi_e,
        Sha256::digest_pair(&fig.leaves[6], &fig.leaves[7])
    );
    assert_eq!(fig.phi_f, Sha256::digest_pair(&fig.phi_d, &fig.phi_e));
}

#[test]
fn sample_x3_proof_carries_the_fig1_siblings() {
    let fig = build_fig1();
    let tree: MerkleTree<Sha256> = MerkleTree::build(&fig.leaves).unwrap();
    // Paper: "the participant sends to the supervisor f(x3) and all the Φ
    // values of the sibling nodes (L4, A, D, and F) along the path."
    // In our balanced 8-leaf tree the path for leaf 2 carries the raw L4
    // plus the digests of the paper's A-analogue and F-analogue.
    let proof = tree.prove(2).unwrap();
    assert_eq!(proof.leaf_sibling(), &fig.leaves[3], "λ1 = Φ(L4) = f(x4)");
    assert_eq!(proof.digest_siblings()[0], fig.phi_a, "λ2 = Φ(A)");
    assert_eq!(proof.digest_siblings()[1], fig.phi_f, "λ3 = Φ(F)");
}

#[test]
fn footnote_reconstruction_procedure() {
    // Footnote 1: "with f(x3) and Φ(L4), we can compute Φ(B); then with
    // Φ(A), we can compute Φ(C); … finally we compute Φ(R′) from Φ(C=E)
    // and Φ(F)."
    let fig = build_fig1();
    let phi_b = Sha256::digest_pair(&fig.leaves[2], &fig.leaves[3]);
    assert_eq!(phi_b, fig.phi_b);
    let phi_c = Sha256::digest_pair(&fig.phi_a, &phi_b);
    assert_eq!(phi_c, fig.phi_c);
    let phi_r = Sha256::digest_pair(&phi_c, &fig.phi_f);
    assert_eq!(phi_r, fig.phi_r);
    // And the library's Λ performs exactly that computation.
    let tree: MerkleTree<Sha256> = MerkleTree::build(&fig.leaves).unwrap();
    let proof = tree.prove(2).unwrap();
    assert_eq!(proof.reconstruct_root(&fig.leaves[2]), fig.phi_r);
}

#[test]
fn dishonest_leaf_cannot_reconstruct_the_commitment() {
    // Theorem 2 on the Fig. 1 instance: a participant that committed
    // garbage at L3 cannot make Λ(true f(x3), λ′…) equal Φ(R) even with
    // freely chosen siblings — we spot-check a brute force over many
    // forged sibling sets.
    let fig = build_fig1();
    let mut forged_leaves = fig.leaves.clone();
    forged_leaves[2] = vec![0xEE; 8]; // garbage committed at L3
    let forged_tree: MerkleTree<Sha256> = MerkleTree::build(&forged_leaves).unwrap();
    let committed_root = forged_tree.root();
    let true_f_x3 = &fig.leaves[2];

    // The honest proof from the forged tree fails against the true f(x3)…
    let proof = forged_tree.prove(2).unwrap();
    assert!(!proof.verify(&committed_root, true_f_x3));
    // …and so do many random sibling forgeries.
    for seed in 0..200u64 {
        let fake_sibling = Sha256::digest(&seed.to_le_bytes());
        let forged: MerkleProof<Sha256> = MerkleProof::from_parts(
            2,
            fake_sibling[..8].to_vec(),
            vec![
                Sha256::digest(&seed.to_be_bytes()),
                Sha256::digest(fake_sibling.as_ref()),
            ],
        );
        assert!(!forged.verify(&committed_root, true_f_x3));
    }
}
