//! Scheduler equivalence: the poll-driven `GridScheduler` execution
//! model must be bit-identical to the PR 4 thread-per-participant
//! runtime — same seed and chaos plan in, same `FaultLog`, verdicts and
//! `CostLedger` axes out — for all five schemes, over both transports,
//! at any worker-pool size *and any work-stealing seed*.
//!
//! This is the replay-digest property the event-driven refactor rests
//! on: fault decisions are a pure function of `(seed, link, direction,
//! seq)` and each link carries exactly one session's protocol sequence,
//! so no interleaving — OS threads, a 4-worker run-queue, or a stolen
//! batch landing on another worker's queue — can change what any
//! participant observes. The work-stealing victim order (PR 8) and the
//! batched message stepping it schedules are exercised here explicitly:
//! sweeping `steal_seed` permutes which worker polls which session
//! without moving a single digest bit.

use std::time::Duration;
use uncheatable_grid::core::scheme::cbs::CbsScheme;
use uncheatable_grid::core::scheme::double_check::DoubleCheckScheme;
use uncheatable_grid::core::scheme::naive::NaiveScheme;
use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
use uncheatable_grid::core::scheme::ringer::RingerScheme;
use uncheatable_grid::core::{
    run_mixed_fleet, FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig,
};
use uncheatable_grid::grid::runtime::FaultPlan;
use uncheatable_grid::grid::{
    CheatSelection, HonestWorker, MaliciousWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{AcceptAllScreener, Domain, ZeroGuesser};

/// Everything that must be identical between execution models: verdicts,
/// attempts, per-session supervisor traffic, every `CostLedger` axis and
/// the injected-fault log. (Wall-clock throughput is real time and
/// deliberately excluded.)
fn digest(summary: &FleetSummary) -> String {
    let mut out = String::new();
    for m in &summary.members {
        out.push_str(&format!(
            "member {} share {} accepted {} attempts {} verdict {:?} \
             link(tx {} rx {}) sup {:?} part {:?}\n",
            m.participant,
            m.share,
            m.outcome.accepted,
            m.attempts,
            m.outcome.verdict,
            m.outcome.supervisor_link.bytes_sent,
            m.outcome.supervisor_link.bytes_received,
            m.outcome.supervisor_costs,
            m.outcome.participant_costs,
        ));
    }
    out.push_str(&format!(
        "sessions {} bytes {}\n",
        summary.throughput.sessions, summary.throughput.bytes
    ));
    out.push_str(&format!("faults {:?}\n", summary.fault_events));
    out
}

struct Schemes {
    cbs: CbsScheme,
    ni: NiCbsScheme,
    naive: NaiveScheme,
    ringer: RingerScheme,
    double_check: DoubleCheckScheme,
}

impl Schemes {
    fn new(seed: u64) -> Self {
        Schemes {
            cbs: CbsScheme {
                samples: 16,
                seed: seed ^ 11,
                report_audit: 2,
            },
            ni: NiCbsScheme {
                samples: 16,
                g_iterations: 2,
                report_audit: 0,
                audit_seed: seed ^ 13,
            },
            naive: NaiveScheme {
                samples: 16,
                seed: seed ^ 14,
            },
            ringer: RingerScheme {
                ringers: 6,
                seed: seed ^ 15,
            },
            double_check: DoubleCheckScheme,
        }
    }
}

/// One member per scheme plus a cheating CBS member: 7 participant slots
/// covering every scheme's dialogue shape, honest and dishonest.
fn members<'a>(
    schemes: &'a Schemes,
    honest: &'a HonestWorker,
    lazy: &'a SemiHonestCheater<ZeroGuesser>,
    malicious: &'a MaliciousWorker,
) -> Vec<MemberSpec<'a, Sha256>> {
    vec![
        MemberSpec {
            scheme: &schemes.cbs,
            behaviours: vec![honest as &dyn WorkerBehaviour],
        },
        MemberSpec {
            scheme: &schemes.ni,
            behaviours: vec![honest],
        },
        MemberSpec {
            scheme: &schemes.naive,
            behaviours: vec![honest],
        },
        MemberSpec {
            scheme: &schemes.ringer,
            behaviours: vec![honest],
        },
        MemberSpec {
            scheme: &schemes.double_check,
            behaviours: vec![honest, honest],
        },
        MemberSpec {
            scheme: &schemes.cbs,
            behaviours: vec![lazy],
        },
        // The report audit (report_audit: 2 on the CBS scheme) is what
        // catches a malicious worker that computes f honestly but
        // corrupts what it screens.
        MemberSpec {
            scheme: &schemes.cbs,
            behaviours: vec![malicious],
        },
    ]
}

fn campaign(chaos_seed: u64, transport: FleetTransport, workers: Option<usize>) -> FleetSummary {
    campaign_stealing(chaos_seed, transport, workers, 0)
}

fn campaign_stealing(
    chaos_seed: u64,
    transport: FleetTransport,
    workers: Option<usize>,
    steal_seed: u64,
) -> FleetSummary {
    let task = PasswordSearch::with_hidden_password(7, 3);
    let screener = AcceptAllScreener;
    let honest = HonestWorker;
    let lazy = SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(4), 9);
    let malicious = MaliciousWorker::new(1.0, 5);
    let schemes = Schemes::new(chaos_seed);
    let specs = members(&schemes, &honest, &lazy, &malicious);
    let slots: usize = specs.iter().map(|m| m.behaviours.len()).sum();
    assert_eq!(slots, 8);
    run_mixed_fleet(
        &task,
        &screener,
        Domain::new(0, specs.len() as u64 * 64),
        &specs,
        &MixedFleetConfig {
            transport,
            chaos: Some(FaultPlan::chaos(chaos_seed).with_churn(150)),
            deadline: Some(Duration::from_secs(20)),
            retries: 8,
            workers,
            steal_seed,
            ..MixedFleetConfig::default()
        },
    )
    .expect("the campaign must converge within the retry budget")
}

/// The tentpole property, brokered: the thread-per-participant reference
/// and the scheduler at `workers ∈ {1, 4, participants}` all produce the
/// same fault log, verdicts and ledgers — across several chaos seeds.
#[test]
fn brokered_scheduler_matches_thread_per_participant_at_any_pool_size() {
    for chaos_seed in [0xC4A05, 0x5EED5, 42] {
        let reference = digest(&campaign(chaos_seed, FleetTransport::Brokered, None));
        for workers in [1, 4, 8] {
            let scheduled = digest(&campaign(
                chaos_seed,
                FleetTransport::Brokered,
                Some(workers),
            ));
            assert_eq!(
                reference, scheduled,
                "seed {chaos_seed:#x}: {workers}-worker scheduler diverged from the \
                 thread-per-participant runtime"
            );
        }
    }
}

/// The same property over direct per-participant links (no broker):
/// the engine's transport must not matter to the equivalence.
#[test]
fn direct_scheduler_matches_thread_per_participant() {
    let chaos_seed = 0xD12EC7;
    let reference = digest(&campaign(chaos_seed, FleetTransport::Direct, None));
    for workers in [1, 4, 8] {
        let scheduled = digest(&campaign(chaos_seed, FleetTransport::Direct, Some(workers)));
        assert_eq!(
            reference, scheduled,
            "{workers}-worker scheduler diverged over direct links"
        );
    }
}

/// The PR 8 property: the work-stealing victim order is scheduling-only.
/// Sweeping the steal seed at several pool sizes — over both transports —
/// permutes which worker polls which session (and which stolen batches
/// land where) without moving a digest bit relative to the
/// thread-per-participant reference.
#[test]
fn steal_seed_never_reaches_digests() {
    for (chaos_seed, transport) in [
        (0xC4A05u64, FleetTransport::Brokered),
        (0xD12EC7, FleetTransport::Direct),
    ] {
        let reference = digest(&campaign(chaos_seed, transport, None));
        for workers in [1, 4, 8] {
            for steal_seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
                let stolen = digest(&campaign_stealing(
                    chaos_seed,
                    transport,
                    Some(workers),
                    steal_seed,
                ));
                assert_eq!(
                    reference, stolen,
                    "{transport:?} seed {chaos_seed:#x}: {workers} workers with steal \
                     seed {steal_seed:#x} diverged from the thread-per-participant runtime"
                );
            }
        }
    }
}

/// Expected verdicts survive the scheduler: honest members accepted,
/// cheaters rejected, exactly as the thread-per-participant path decides.
#[test]
fn scheduler_verdicts_are_correct_under_chaos() {
    let summary = campaign(0xC4A05, FleetTransport::Brokered, Some(4));
    let expected = [true, true, true, true, true, false, false];
    assert_eq!(summary.members.len(), expected.len());
    for (member, expected) in summary.members.iter().zip(expected) {
        assert_eq!(
            member.outcome.accepted, expected,
            "member {} ({}): {} after {} attempts",
            member.participant, member.share, member.outcome.verdict, member.attempts
        );
    }
    assert!(
        !summary.fault_events.is_empty(),
        "a nonzero chaos seed must inject faults"
    );
}

/// A clean (chaos-free) fleet is also identical between execution
/// models — the scheduler is not only for storms.
#[test]
fn quiet_fleet_identical_across_execution_models() {
    let task = PasswordSearch::with_hidden_password(3, 100);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let schemes = Schemes::new(1);
    let run = |workers: Option<usize>| {
        let specs = vec![
            MemberSpec::<'_, Sha256> {
                scheme: &schemes.cbs,
                behaviours: vec![&honest as &dyn WorkerBehaviour],
            },
            MemberSpec {
                scheme: &schemes.ni,
                behaviours: vec![&honest],
            },
            MemberSpec {
                scheme: &schemes.double_check,
                behaviours: vec![&honest, &honest],
            },
        ];
        digest(
            &run_mixed_fleet(
                &task,
                &screener,
                Domain::new(0, 192),
                &specs,
                &MixedFleetConfig {
                    transport: FleetTransport::Brokered,
                    workers,
                    ..MixedFleetConfig::default()
                },
            )
            .unwrap(),
        )
    };
    let reference = run(None);
    assert_eq!(reference, run(Some(1)));
    assert_eq!(reference, run(Some(4)));
}
