//! Concurrency hygiene: the protocol stack must tolerate many rounds in
//! flight at once (a real supervisor verifies hundreds of participants
//! concurrently), and the public types must be `Send`/`Sync` so users can
//! drive them from their own executors.

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{
    CheatSelection, CostLedger, Endpoint, HonestWorker, SemiHonestCheater,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::merkle::{MerkleProof, MerkleTree};
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

#[test]
fn key_types_are_send_and_sync() {
    fn send_sync<T: Send + Sync>() {}
    send_sync::<MerkleTree<Sha256>>();
    send_sync::<MerkleProof<Sha256>>();
    send_sync::<CostLedger>();
    send_sync::<PasswordSearch>();
    send_sync::<SemiHonestCheater<ZeroGuesser>>();
    fn send_only<T: Send>() {}
    send_only::<Endpoint>();
}

#[test]
fn many_concurrent_rounds_stay_isolated() {
    // 16 independent rounds on 16 threads, alternating honest/cheating:
    // verdicts must match the behaviour, regardless of interleaving.
    let task = PasswordSearch::with_hidden_password(11, 5);
    let results: Vec<(usize, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16usize)
            .map(|i| {
                let task = &task;
                scope.spawn(move || {
                    let screener = task.match_screener();
                    let config = CbsConfig {
                        task_id: i as u64,
                        samples: 24,
                        seed: 100 + i as u64,
                        report_audit: 0,
                    };
                    let accepted = if i % 2 == 0 {
                        run_cbs::<Sha256, _, _, _>(
                            task,
                            &screener,
                            Domain::new(0, 200),
                            &HonestWorker,
                            ParticipantStorage::Full,
                            &config,
                        )
                        .unwrap()
                        .accepted
                    } else {
                        let cheater = SemiHonestCheater::new(
                            0.3,
                            CheatSelection::Scattered,
                            ZeroGuesser::new(i as u64),
                            i as u64,
                        );
                        run_cbs::<Sha256, _, _, _>(
                            task,
                            &screener,
                            Domain::new(0, 200),
                            &cheater,
                            ParticipantStorage::Full,
                            &config,
                        )
                        .unwrap()
                        .accepted
                    };
                    (i, accepted)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, accepted) in results {
        if i % 2 == 0 {
            assert!(accepted, "honest round {i} rejected");
        } else {
            assert!(!accepted, "cheating round {i} accepted");
        }
    }
}

#[test]
fn shared_task_across_threads_is_consistent() {
    // A single task instance evaluated from many threads must agree with
    // itself — determinism is load-bearing for commitments.
    let task = PasswordSearch::with_hidden_password(9, 100);
    let reference: Vec<Vec<u8>> = (0..64)
        .map(|x| {
            use uncheatable_grid::task::ComputeTask;
            task.compute(x)
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let task = &task;
            let reference = &reference;
            scope.spawn(move || {
                use uncheatable_grid::task::ComputeTask;
                for x in 0..64u64 {
                    assert_eq!(task.compute(x), reference[x as usize]);
                }
            });
        }
    });
}
