//! Concurrency hygiene: the protocol stack must tolerate many rounds in
//! flight at once (a real supervisor verifies hundreds of participants
//! concurrently), and the public types must be `Send`/`Sync` so users can
//! drive them from their own executors.

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{
    CheatSelection, CostLedger, Endpoint, HonestWorker, SemiHonestCheater,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::merkle::{MerkleProof, MerkleTree};
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

#[test]
fn key_types_are_send_and_sync() {
    fn send_sync<T: Send + Sync>() {}
    send_sync::<MerkleTree<Sha256>>();
    send_sync::<MerkleProof<Sha256>>();
    send_sync::<CostLedger>();
    send_sync::<PasswordSearch>();
    send_sync::<SemiHonestCheater<ZeroGuesser>>();
    fn send_only<T: Send>() {}
    send_only::<Endpoint>();
}

#[test]
fn many_concurrent_rounds_stay_isolated() {
    // 16 independent rounds on 16 threads, alternating honest/cheating:
    // verdicts must match the behaviour, regardless of interleaving.
    let task = PasswordSearch::with_hidden_password(11, 5);
    let results: Vec<(usize, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16usize)
            .map(|i| {
                let task = &task;
                scope.spawn(move || {
                    let screener = task.match_screener();
                    let config = CbsConfig {
                        task_id: i as u64,
                        samples: 24,
                        seed: 100 + i as u64,
                        report_audit: 0,
                    };
                    let accepted = if i % 2 == 0 {
                        run_cbs::<Sha256, _, _, _>(
                            task,
                            &screener,
                            Domain::new(0, 200),
                            &HonestWorker,
                            ParticipantStorage::Full,
                            &config,
                        )
                        .unwrap()
                        .accepted
                    } else {
                        let cheater = SemiHonestCheater::new(
                            0.3,
                            CheatSelection::Scattered,
                            ZeroGuesser::new(i as u64),
                            i as u64,
                        );
                        run_cbs::<Sha256, _, _, _>(
                            task,
                            &screener,
                            Domain::new(0, 200),
                            &cheater,
                            ParticipantStorage::Full,
                            &config,
                        )
                        .unwrap()
                        .accepted
                    };
                    (i, accepted)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, accepted) in results {
        if i % 2 == 0 {
            assert!(accepted, "honest round {i} rejected");
        } else {
            assert!(!accepted, "cheating round {i} accepted");
        }
    }
}

#[test]
fn shared_task_across_threads_is_consistent() {
    // A single task instance evaluated from many threads must agree with
    // itself — determinism is load-bearing for commitments.
    let task = PasswordSearch::with_hidden_password(9, 100);
    let reference: Vec<Vec<u8>> = (0..64)
        .map(|x| {
            use uncheatable_grid::task::ComputeTask;
            task.compute(x)
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let task = &task;
            let reference = &reference;
            scope.spawn(move || {
                use uncheatable_grid::task::ComputeTask;
                for x in 0..64u64 {
                    assert_eq!(task.compute(x), reference[x as usize]);
                }
            });
        }
    });
}

#[test]
fn mixed_scheme_campaign_over_one_broker_link() {
    // The session engine's full generality: five schemes, ten participant
    // slots, three behaviour kinds (honest, semi-honest, malicious), all
    // multiplexed over ONE supervisor link into a relaying broker — with
    // per-session verdicts and ledger totals exactly as each scheme's
    // theory demands.
    use uncheatable_grid::core::scheme::cbs::CbsScheme;
    use uncheatable_grid::core::scheme::double_check::DoubleCheckScheme;
    use uncheatable_grid::core::scheme::naive::NaiveScheme;
    use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
    use uncheatable_grid::core::scheme::ringer::RingerScheme;
    use uncheatable_grid::core::{
        run_mixed_fleet, FleetTransport, MemberSpec, MixedFleetConfig, Verdict,
    };
    use uncheatable_grid::grid::{MaliciousWorker, WorkerBehaviour};
    use uncheatable_grid::task::AcceptAllScreener;

    let task = PasswordSearch::with_hidden_password(7, 3);
    let screener = AcceptAllScreener; // every input reports: feeds the audit
    let honest = HonestWorker;
    let lazy = SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(4), 9);
    let malicious = MaliciousWorker::new(1.0, 5);

    let cbs = CbsScheme {
        samples: 24,
        seed: 11,
        report_audit: 0,
    };
    let cbs_audited = CbsScheme {
        samples: 10,
        seed: 12,
        report_audit: 4,
    };
    let ni = NiCbsScheme {
        samples: 24,
        g_iterations: 2,
        report_audit: 0,
        audit_seed: 13,
    };
    let naive = NaiveScheme {
        samples: 24,
        seed: 14,
    };
    let ringer = RingerScheme {
        ringers: 8,
        seed: 15,
    };
    let double_check = DoubleCheckScheme;

    // member, scheme, behaviours, expected acceptance
    let members: Vec<(MemberSpec<'_, Sha256>, bool)> = vec![
        (spec(&cbs, vec![&honest]), true),
        (spec(&cbs, vec![&lazy]), false),
        (spec(&ni, vec![&honest]), true),
        (spec(&ni, vec![&lazy]), false),
        (spec(&naive, vec![&honest]), true),
        (spec(&naive, vec![&lazy]), false),
        (spec(&ringer, vec![&honest]), true),
        (spec(&cbs_audited, vec![&malicious]), false),
        (spec(&double_check, vec![&honest, &lazy]), false),
    ];
    fn spec<'a>(
        scheme: &'a dyn uncheatable_grid::core::VerificationScheme<Sha256>,
        behaviours: Vec<&'a dyn WorkerBehaviour>,
    ) -> MemberSpec<'a, Sha256> {
        MemberSpec { scheme, behaviours }
    }
    let expected: Vec<bool> = members.iter().map(|(_, ok)| *ok).collect();
    let specs: Vec<MemberSpec<'_, Sha256>> = members.into_iter().map(|(m, _)| m).collect();
    assert!(
        specs.iter().map(|m| m.behaviours.len()).sum::<usize>() >= 8,
        "campaign must exercise at least 8 participants"
    );

    let n_members = specs.len() as u64;
    let share = 64u64;
    let summary = run_mixed_fleet(
        &task,
        &screener,
        Domain::new(0, n_members * share),
        &specs,
        &MixedFleetConfig {
            transport: FleetTransport::Brokered,
            ..MixedFleetConfig::default()
        },
    )
    .unwrap();

    // Per-session verdicts match each scheme's theory.
    assert_eq!(summary.members.len(), expected.len());
    for (member, expected) in summary.members.iter().zip(&expected) {
        assert_eq!(
            member.outcome.accepted, *expected,
            "member {} ({}) verdict diverged: {}",
            member.participant, member.share, member.outcome.verdict
        );
    }
    assert!(matches!(
        summary.members[7].outcome.verdict,
        Verdict::ReportMismatch { .. }
    ));
    assert!(matches!(
        summary.members[8].outcome.verdict,
        Verdict::ReplicaDisagreement { .. }
    ));

    // Per-session ledger totals: each member's accounting is isolated even
    // though every message crossed the same broker link.
    let m = &summary.members;
    assert_eq!(m[0].outcome.participant_costs.f_evals, share); // honest CBS: n evals
    assert_eq!(m[0].outcome.supervisor_costs.verify_ops, 24); // m sample checks
    assert_eq!(m[2].outcome.supervisor_costs.g_evals, 24 * 2); // Eq. (4), both sides
    assert_eq!(m[2].outcome.participant_costs.g_evals, 24 * 2);
    assert_eq!(m[4].outcome.participant_costs.f_evals, share); // honest naive
    assert!(m[1].outcome.participant_costs.f_evals < share); // the lazy cheater skipped work
    assert_eq!(
        m[6].outcome.supervisor_costs.f_evals,
        8 * uncheatable_grid::task::ComputeTask::unit_cost(&task) // d ringers precomputed
    );
    assert_eq!(m[7].outcome.participant_costs.f_evals, share); // malicious ≠ lazy
                                                               // Double-check burns both replicas' cycles; the honest one did all 64.
    assert!(m[8].outcome.participant_costs.f_evals > share);

    // The honest members' screened reports all survived aggregation.
    assert!(!summary.reports.is_empty());
}

#[test]
fn mixed_campaign_identical_across_transports_and_envelopes() {
    // Direct links, a relayed broker, and envelope framing must all yield
    // the same verdicts — the transport is invisible to the sessions.
    use uncheatable_grid::core::scheme::cbs::CbsScheme;
    use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
    use uncheatable_grid::core::{run_mixed_fleet, FleetTransport, MemberSpec, MixedFleetConfig};
    use uncheatable_grid::grid::WorkerBehaviour;

    let task = PasswordSearch::with_hidden_password(3, 50);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let lazy = SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(2), 6);
    let cbs = CbsScheme {
        samples: 20,
        seed: 5,
        report_audit: 0,
    };
    let ni = NiCbsScheme {
        samples: 20,
        g_iterations: 1,
        report_audit: 0,
        audit_seed: 5,
    };
    let run = |transport: FleetTransport, envelope: bool| -> Vec<bool> {
        let members: Vec<MemberSpec<'_, Sha256>> = vec![
            MemberSpec {
                scheme: &cbs,
                behaviours: vec![&honest as &dyn WorkerBehaviour],
            },
            MemberSpec {
                scheme: &ni,
                behaviours: vec![&lazy],
            },
            MemberSpec {
                scheme: &cbs,
                behaviours: vec![&lazy],
            },
            MemberSpec {
                scheme: &ni,
                behaviours: vec![&honest],
            },
        ];
        run_mixed_fleet(
            &task,
            &screener,
            Domain::new(0, 256),
            &members,
            &MixedFleetConfig {
                transport,
                envelope,
                ..MixedFleetConfig::default()
            },
        )
        .unwrap()
        .members
        .iter()
        .map(|m| m.outcome.accepted)
        .collect()
    };
    let baseline = run(FleetTransport::Direct, false);
    assert_eq!(baseline, vec![true, false, false, true]);
    assert_eq!(baseline, run(FleetTransport::Brokered, false));
    assert_eq!(baseline, run(FleetTransport::Direct, true));
    assert_eq!(baseline, run(FleetTransport::Brokered, true));
}
