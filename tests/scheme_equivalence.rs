//! Cross-scheme invariants: identical verdicts and reports where theory
//! says so, and the cost ordering the paper claims.

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::HonestWorker;
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::Domain;

const N: u64 = 1 << 14;
const M: usize = 20;

fn all_outcomes() -> Vec<(&'static str, uncheatable_grid::core::RoundOutcome)> {
    let task = PasswordSearch::with_hidden_password(2, 77);
    let screener = task.match_screener();
    let domain = Domain::new(0, N);
    vec![
        (
            "naive",
            run_naive(
                &task,
                &screener,
                domain,
                &HonestWorker,
                &NaiveConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                },
            )
            .unwrap(),
        ),
        (
            "cbs",
            run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Full,
                &CbsConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                    report_audit: 0,
                },
            )
            .unwrap(),
        ),
        (
            "cbs-partial",
            run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Partial { subtree_height: 4 },
                &CbsConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                    report_audit: 0,
                },
            )
            .unwrap(),
        ),
        (
            "ni-cbs",
            run_ni_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Full,
                &NiCbsConfig {
                    task_id: 1,
                    samples: M,
                    g_iterations: 1,
                    report_audit: 0,
                    audit_seed: 0,
                },
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn every_scheme_accepts_and_finds_the_password() {
    for (name, outcome) in all_outcomes() {
        assert!(outcome.accepted, "{name} rejected an honest worker");
        assert_eq!(
            outcome.reports.iter().map(|r| r.input).collect::<Vec<_>>(),
            vec![77],
            "{name} lost the interesting result"
        );
    }
}

#[test]
fn full_and_partial_cbs_send_identical_bytes() {
    let outcomes = all_outcomes();
    let cbs = &outcomes[1].1;
    let partial = &outcomes[2].1;
    // Same commitment, same proofs, same reports — the storage mode is
    // invisible on the wire.
    assert_eq!(
        cbs.supervisor_link.bytes_received,
        partial.supervisor_link.bytes_received
    );
    assert_eq!(
        cbs.supervisor_link.bytes_sent,
        partial.supervisor_link.bytes_sent
    );
}

#[test]
fn cbs_upload_beats_naive_by_an_order_of_magnitude() {
    let outcomes = all_outcomes();
    let naive = outcomes[0].1.supervisor_link.bytes_received;
    let cbs = outcomes[1].1.supervisor_link.bytes_received;
    assert!(
        naive > 10 * cbs,
        "expected ≥10× gap at n = 2^14: naive {naive} vs CBS {cbs}"
    );
}

#[test]
fn ni_cbs_halves_the_round_trips() {
    let outcomes = all_outcomes();
    let cbs = &outcomes[1].1;
    let ni = &outcomes[3].1;
    assert_eq!(cbs.supervisor_link.messages_sent, 3); // Assign, Challenge, Verdict
    assert_eq!(ni.supervisor_link.messages_sent, 2); // Assign, Verdict
    assert!(ni.supervisor_link.bytes_sent < cbs.supervisor_link.bytes_sent);
}

#[test]
fn supervisor_compute_is_sampled_not_linear() {
    for (name, outcome) in all_outcomes() {
        assert!(
            outcome.supervisor_costs.f_evals <= (M as u64) + 5,
            "{name}: supervisor recomputed {} times",
            outcome.supervisor_costs.f_evals
        );
    }
}

#[test]
fn participant_baseline_work_is_the_task_itself() {
    for (name, outcome) in all_outcomes() {
        assert!(
            outcome.participant_costs.f_evals >= N,
            "{name}: participant skipped work while honest"
        );
        // Partial storage rebuilds add at most m × 2^ℓ evaluations.
        assert!(
            outcome.participant_costs.f_evals <= N + (M as u64) * 16,
            "{name}: unexpected participant workload {}",
            outcome.participant_costs.f_evals
        );
    }
}
