//! Cross-scheme invariants: identical verdicts and reports where theory
//! says so, the cost ordering the paper claims, and — since the session
//! refactor — proof that the engine-over-broker path is **bit-identical**
//! to the legacy in-process rounds for all five schemes (verdicts,
//! supervisor byte counts, and every `CostLedger` axis).

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig, CbsScheme};
use uncheatable_grid::core::scheme::double_check::{
    run_double_check, DoubleCheckConfig, DoubleCheckScheme,
};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig, NaiveScheme};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig, NiCbsScheme};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig, RingerScheme};
use uncheatable_grid::core::{
    run_mixed_fleet, FleetTransport, MemberSpec, MixedFleetConfig, ParticipantStorage,
    RoundOutcome, VerificationScheme,
};
use uncheatable_grid::grid::{
    CheatSelection, HonestWorker, MaliciousWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

const N: u64 = 1 << 14;
const M: usize = 20;

fn all_outcomes() -> Vec<(&'static str, uncheatable_grid::core::RoundOutcome)> {
    let task = PasswordSearch::with_hidden_password(2, 77);
    let screener = task.match_screener();
    let domain = Domain::new(0, N);
    vec![
        (
            "naive",
            run_naive(
                &task,
                &screener,
                domain,
                &HonestWorker,
                &NaiveConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                },
            )
            .unwrap(),
        ),
        (
            "cbs",
            run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Full,
                &CbsConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                    report_audit: 0,
                },
            )
            .unwrap(),
        ),
        (
            "cbs-partial",
            run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Partial { subtree_height: 4 },
                &CbsConfig {
                    task_id: 1,
                    samples: M,
                    seed: 3,
                    report_audit: 0,
                },
            )
            .unwrap(),
        ),
        (
            "ni-cbs",
            run_ni_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                domain,
                &HonestWorker,
                ParticipantStorage::Full,
                &NiCbsConfig {
                    task_id: 1,
                    samples: M,
                    g_iterations: 1,
                    report_audit: 0,
                    audit_seed: 0,
                },
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn every_scheme_accepts_and_finds_the_password() {
    for (name, outcome) in all_outcomes() {
        assert!(outcome.accepted, "{name} rejected an honest worker");
        assert_eq!(
            outcome.reports.iter().map(|r| r.input).collect::<Vec<_>>(),
            vec![77],
            "{name} lost the interesting result"
        );
    }
}

#[test]
fn full_and_partial_cbs_send_identical_bytes() {
    let outcomes = all_outcomes();
    let cbs = &outcomes[1].1;
    let partial = &outcomes[2].1;
    // Same commitment, same proofs, same reports — the storage mode is
    // invisible on the wire.
    assert_eq!(
        cbs.supervisor_link.bytes_received,
        partial.supervisor_link.bytes_received
    );
    assert_eq!(
        cbs.supervisor_link.bytes_sent,
        partial.supervisor_link.bytes_sent
    );
}

#[test]
fn cbs_upload_beats_naive_by_an_order_of_magnitude() {
    let outcomes = all_outcomes();
    let naive = outcomes[0].1.supervisor_link.bytes_received;
    let cbs = outcomes[1].1.supervisor_link.bytes_received;
    assert!(
        naive > 10 * cbs,
        "expected ≥10× gap at n = 2^14: naive {naive} vs CBS {cbs}"
    );
}

#[test]
fn ni_cbs_halves_the_round_trips() {
    let outcomes = all_outcomes();
    let cbs = &outcomes[1].1;
    let ni = &outcomes[3].1;
    assert_eq!(cbs.supervisor_link.messages_sent, 3); // Assign, Challenge, Verdict
    assert_eq!(ni.supervisor_link.messages_sent, 2); // Assign, Verdict
    assert!(ni.supervisor_link.bytes_sent < cbs.supervisor_link.bytes_sent);
}

#[test]
fn supervisor_compute_is_sampled_not_linear() {
    for (name, outcome) in all_outcomes() {
        assert!(
            outcome.supervisor_costs.f_evals <= (M as u64) + 5,
            "{name}: supervisor recomputed {} times",
            outcome.supervisor_costs.f_evals
        );
    }
}

#[test]
fn participant_baseline_work_is_the_task_itself() {
    for (name, outcome) in all_outcomes() {
        assert!(
            outcome.participant_costs.f_evals >= N,
            "{name}: participant skipped work while honest"
        );
        // Partial storage rebuilds add at most m × 2^ℓ evaluations.
        assert!(
            outcome.participant_costs.f_evals <= N + (M as u64) * 16,
            "{name}: unexpected participant workload {}",
            outcome.participant_costs.f_evals
        );
    }
}

// ---------------------------------------------------------------------------
// Engine-vs-legacy equivalence: every scheme, multiplexed over the broker
// transport, must reproduce the pre-refactor in-process rounds bit for bit.
// ---------------------------------------------------------------------------

/// Runs one session of `scheme` through the engine over the relaying
/// broker and returns the member's outcome.
fn engine_round<S: uncheatable_grid::task::Screener>(
    task: &PasswordSearch,
    screener: &S,
    domain: Domain,
    scheme: &dyn VerificationScheme<Sha256>,
    behaviours: Vec<&dyn WorkerBehaviour>,
    storage: ParticipantStorage,
) -> RoundOutcome {
    let members = vec![MemberSpec { scheme, behaviours }];
    let summary = run_mixed_fleet(
        task,
        screener,
        domain,
        &members,
        &MixedFleetConfig {
            storage,
            transport: FleetTransport::Brokered,
            ..MixedFleetConfig::default()
        },
    )
    .unwrap();
    summary.members.into_iter().next().unwrap().outcome
}

/// Bit-identity across everything a round measures.
fn assert_outcomes_identical(name: &str, legacy: &RoundOutcome, engine: &RoundOutcome) {
    assert_eq!(legacy.verdict, engine.verdict, "{name}: verdict diverged");
    assert_eq!(
        legacy.supervisor_link, engine.supervisor_link,
        "{name}: supervisor byte counts diverged"
    );
    assert_eq!(
        legacy.supervisor_costs, engine.supervisor_costs,
        "{name}: supervisor ledger diverged"
    );
    assert_eq!(
        legacy.participant_costs, engine.participant_costs,
        "{name}: participant ledger diverged"
    );
    assert_eq!(legacy.reports, engine.reports, "{name}: reports diverged");
}

#[test]
fn engine_matches_legacy_cbs() {
    let task = PasswordSearch::with_hidden_password(3, 40);
    let screener = task.match_screener();
    let domain = Domain::new(0, 128);
    for (storage, behaviour) in [
        (
            ParticipantStorage::Full,
            &HonestWorker as &dyn WorkerBehaviour,
        ),
        (
            ParticipantStorage::Partial { subtree_height: 3 },
            &HonestWorker as &dyn WorkerBehaviour,
        ),
    ] {
        let legacy = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &behaviour,
            storage,
            &CbsConfig {
                task_id: 0,
                samples: 16,
                seed: 9,
                report_audit: 2,
            },
        )
        .unwrap();
        let scheme = CbsScheme {
            samples: 16,
            seed: 9,
            report_audit: 2,
        };
        let engine = engine_round(&task, &screener, domain, &scheme, vec![behaviour], storage);
        assert_outcomes_identical("cbs", &legacy, &engine);
    }
}

#[test]
fn engine_matches_legacy_cbs_on_a_cheater() {
    let task = PasswordSearch::with_hidden_password(3, 40);
    let screener = task.match_screener();
    let domain = Domain::new(0, 256);
    let cheater = SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(5), 11);
    let legacy = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &cheater,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 0,
            samples: 20,
            seed: 4,
            report_audit: 0,
        },
    )
    .unwrap();
    let scheme = CbsScheme {
        samples: 20,
        seed: 4,
        report_audit: 0,
    };
    let engine = engine_round(
        &task,
        &screener,
        domain,
        &scheme,
        vec![&cheater],
        ParticipantStorage::Full,
    );
    assert!(!legacy.accepted);
    assert_outcomes_identical("cbs-cheater", &legacy, &engine);
}

#[test]
fn engine_matches_legacy_ni_cbs() {
    let task = PasswordSearch::with_hidden_password(5, 9);
    let screener = task.match_screener();
    let domain = Domain::new(0, 128);
    let legacy = run_ni_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &HonestWorker,
        ParticipantStorage::Full,
        &NiCbsConfig {
            task_id: 0,
            samples: 10,
            g_iterations: 3,
            report_audit: 1,
            audit_seed: 6,
        },
    )
    .unwrap();
    let scheme = NiCbsScheme {
        samples: 10,
        g_iterations: 3,
        report_audit: 1,
        audit_seed: 6,
    };
    let engine = engine_round(
        &task,
        &screener,
        domain,
        &scheme,
        vec![&HonestWorker],
        ParticipantStorage::Full,
    );
    assert_outcomes_identical("ni-cbs", &legacy, &engine);
}

#[test]
fn engine_matches_legacy_naive() {
    let task = PasswordSearch::with_hidden_password(3, 40);
    let screener = task.match_screener();
    let domain = Domain::new(0, 128);
    let cheater = SemiHonestCheater::new(0.4, CheatSelection::Scattered, ZeroGuesser::new(7), 5);
    for behaviour in [&HonestWorker as &dyn WorkerBehaviour, &cheater] {
        let legacy = run_naive(
            &task,
            &screener,
            domain,
            &behaviour,
            &NaiveConfig {
                task_id: 0,
                samples: 12,
                seed: 2,
            },
        )
        .unwrap();
        let scheme = NaiveScheme {
            samples: 12,
            seed: 2,
        };
        let engine = engine_round(
            &task,
            &screener,
            domain,
            &scheme,
            vec![behaviour],
            ParticipantStorage::Full,
        );
        assert_outcomes_identical("naive", &legacy, &engine);
    }
}

#[test]
fn engine_matches_legacy_ringer() {
    let task = PasswordSearch::with_hidden_password(1, 10);
    let screener = task.match_screener();
    let domain = Domain::new(0, 128);
    let legacy = run_ringer(
        &task,
        &screener,
        domain,
        &HonestWorker,
        &RingerConfig {
            task_id: 0,
            ringers: 6,
            seed: 3,
        },
    )
    .unwrap();
    let scheme = RingerScheme {
        ringers: 6,
        seed: 3,
    };
    let engine = engine_round(
        &task,
        &screener,
        domain,
        &scheme,
        vec![&HonestWorker],
        ParticipantStorage::Full,
    );
    assert_outcomes_identical("ringer", &legacy, &engine);
}

#[test]
fn engine_matches_legacy_double_check() {
    let task = PasswordSearch::with_hidden_password(1, 20);
    let screener = task.match_screener();
    let domain = Domain::new(0, 64);
    let cheater = SemiHonestCheater::new(0.9, CheatSelection::Scattered, ZeroGuesser::new(2), 3);
    for replica_b in [&HonestWorker as &dyn WorkerBehaviour, &cheater] {
        let legacy = run_double_check(
            &task,
            &screener,
            domain,
            &HonestWorker,
            &replica_b,
            &DoubleCheckConfig { task_id: 0 },
        )
        .unwrap();
        let engine = engine_round(
            &task,
            &screener,
            domain,
            &DoubleCheckScheme,
            vec![&HonestWorker, replica_b],
            ParticipantStorage::Full,
        );
        assert_outcomes_identical("double-check", &legacy, &engine);
    }
}

#[test]
fn engine_matches_legacy_with_a_corrupting_malicious_worker() {
    // The malicious model needs the report-audit extension; prove the
    // engine path rejects it exactly like the legacy path.
    let task = PasswordSearch::with_hidden_password(3, 10);
    let screener = uncheatable_grid::task::AcceptAllScreener;
    let malicious = MaliciousWorker::new(1.0, 8);
    let legacy = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, 64),
        &malicious,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 0,
            samples: 10,
            seed: 6,
            report_audit: 4,
        },
    )
    .unwrap();
    let scheme = CbsScheme {
        samples: 10,
        seed: 6,
        report_audit: 4,
    };
    let engine = engine_round(
        &task,
        &screener,
        Domain::new(0, 64),
        &scheme,
        vec![&malicious],
        ParticipantStorage::Full,
    );
    assert!(!legacy.accepted);
    assert_outcomes_identical("cbs-malicious", &legacy, &engine);
}
