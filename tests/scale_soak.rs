//! The scale soak: a 1000-participant mixed-scheme campaign on a
//! 4-worker scheduler pool — the workload the thread-per-participant
//! runtime could never run, and the acceptance test of the event-driven
//! refactor:
//!
//! 1. **It completes, correctly** — a thousand poll-driven sessions
//!    (all five schemes, honest members and planted cheaters, seeded
//!    churn) multiplex over four OS threads and every verdict matches
//!    the theory.
//! 2. **Worker count is invisible** — the replay digest (verdicts,
//!    attempts, ledgers, byte counts, fault log) is bit-identical at
//!    `workers ∈ {1, 4, 1000}` and across replays of the same seed.
//!
//! CI runs this file as the dedicated `scale-soak` job under a hard
//! `timeout-minutes` guard, so a reintroduced scheduler stall fails in
//! minutes.

use uncheatable_grid::core::scheme::cbs::CbsScheme;
use uncheatable_grid::core::scheme::double_check::DoubleCheckScheme;
use uncheatable_grid::core::scheme::naive::NaiveScheme;
use uncheatable_grid::core::scheme::ni_cbs::NiCbsScheme;
use uncheatable_grid::core::scheme::ringer::RingerScheme;
use uncheatable_grid::core::{
    run_mixed_fleet, FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig, VerificationScheme,
};
use uncheatable_grid::grid::runtime::FaultPlan;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater, WorkerBehaviour};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{AcceptAllScreener, Domain, ZeroGuesser};

/// Participant slots in the campaign (the paper's "huge pool").
const SLOTS: usize = 1000;
/// Inputs per member share — tiny on purpose: the soak stresses
/// scheduling and multiplexing, not `f`.
const SHARE: u64 = 8;
/// Every `CHEAT_EVERY`-th member is a planted cheater (on CBS, whose
/// sample checks catch it deterministically for this seed).
const CHEAT_EVERY: usize = 100;
/// The campaign's fixed seed: fault schedule, scheme seeds and cheat
/// placement all derive from it.
const SOAK_SEED: u64 = 0x5CA1_E50A;

/// The deterministic fingerprint that must not vary with worker count:
/// verdicts, attempts, per-session traffic, ledgers, fault log.
fn digest(summary: &FleetSummary) -> String {
    let mut out = String::new();
    for m in &summary.members {
        out.push_str(&format!(
            "{}:{}:{}:{:?}:{}:{}:{:?}:{:?};",
            m.participant,
            m.outcome.accepted,
            m.attempts,
            m.outcome.verdict,
            m.outcome.supervisor_link.bytes_sent,
            m.outcome.supervisor_link.bytes_received,
            m.outcome.supervisor_costs,
            m.outcome.participant_costs,
        ));
    }
    out.push_str(&format!(
        "sessions {} bytes {} faults {:?}",
        summary.throughput.sessions, summary.throughput.bytes, summary.fault_events
    ));
    out
}

struct Schemes {
    cbs: CbsScheme,
    ni: NiCbsScheme,
    naive: NaiveScheme,
    ringer: RingerScheme,
    double_check: DoubleCheckScheme,
}

/// Runs the 1000-slot campaign on the given pool. `None` would be the
/// thread-per-participant model — deliberately not exercised here at
/// this scale (that is the point of the scheduler).
fn campaign(workers: usize) -> FleetSummary {
    let task = PasswordSearch::with_hidden_password(SOAK_SEED, 3);
    let screener = AcceptAllScreener;
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        0.2,
        CheatSelection::Scattered,
        ZeroGuesser::new(SOAK_SEED ^ 4),
        9,
    );
    let schemes = Schemes {
        cbs: CbsScheme {
            samples: 6,
            seed: SOAK_SEED ^ 11,
            report_audit: 0,
        },
        ni: NiCbsScheme {
            samples: 6,
            g_iterations: 1,
            report_audit: 0,
            audit_seed: SOAK_SEED ^ 13,
        },
        naive: NaiveScheme {
            samples: 6,
            seed: SOAK_SEED ^ 14,
        },
        ringer: RingerScheme {
            ringers: 4,
            seed: SOAK_SEED ^ 15,
        },
        double_check: DoubleCheckScheme,
    };
    // Cycle the five schemes until exactly SLOTS participant slots are
    // filled (double-check consumes two per member); plant a cheater on
    // every CHEAT_EVERY-th member, always on CBS so the sample check —
    // not scheme-specific luck — catches it.
    let mut members: Vec<MemberSpec<'_, Sha256>> = Vec::new();
    let mut slots = 0usize;
    let mut kind = 0usize;
    while slots < SLOTS {
        let member = if members.len() % CHEAT_EVERY == CHEAT_EVERY - 1 {
            MemberSpec {
                scheme: &schemes.cbs as &dyn VerificationScheme<Sha256>,
                behaviours: vec![&cheater as &dyn WorkerBehaviour],
            }
        } else {
            match kind % 5 {
                0 => MemberSpec {
                    scheme: &schemes.cbs,
                    behaviours: vec![&honest],
                },
                1 => MemberSpec {
                    scheme: &schemes.ni,
                    behaviours: vec![&honest],
                },
                2 => MemberSpec {
                    scheme: &schemes.naive,
                    behaviours: vec![&honest],
                },
                3 => MemberSpec {
                    scheme: &schemes.ringer,
                    behaviours: vec![&honest],
                },
                // Only while two slots still fit.
                _ if slots + 2 <= SLOTS => MemberSpec {
                    scheme: &schemes.double_check,
                    behaviours: vec![&honest, &honest],
                },
                _ => MemberSpec {
                    scheme: &schemes.cbs,
                    behaviours: vec![&honest],
                },
            }
        };
        slots += member.behaviours.len();
        kind += 1;
        members.push(member);
    }
    assert_eq!(slots, SLOTS);
    let domain = Domain::new(0, members.len() as u64 * SHARE);
    run_mixed_fleet(
        &task,
        &screener,
        domain,
        &members,
        &MixedFleetConfig {
            transport: FleetTransport::Brokered,
            // Churn but no drops: crashed sessions fail fast through the
            // broker's Gone NACK and are reassigned, so no inactivity
            // deadline (a wall-clock quantity) is needed at any pool
            // size.
            chaos: Some(FaultPlan::chaos(SOAK_SEED).with_churn(40)),
            retries: 8,
            workers: Some(workers),
            ..MixedFleetConfig::default()
        },
    )
    .expect("the scale campaign must converge within the retry budget")
}

/// The headline acceptance test: 1000 participants complete on 4
/// workers with the verdicts the theory demands, replaying
/// bit-identically — and the digest does not change at `workers ∈
/// {1, 4, 1000}`.
#[test]
fn thousand_participants_on_four_workers_complete_and_replay_bit_identically() {
    let four = campaign(4);
    for member in &four.members {
        let planted_cheater = member.participant % CHEAT_EVERY == CHEAT_EVERY - 1;
        assert_eq!(
            member.outcome.accepted, !planted_cheater,
            "member {}: {} after {} attempts",
            member.participant, member.outcome.verdict, member.attempts
        );
    }
    // 1000 slots ≈ 834 members (double-check members hold two slots);
    // churn retries push the session count above the member count.
    assert!(
        four.members.len() >= 800,
        "expected ≥800 members over 1000 slots, saw {}",
        four.members.len()
    );
    assert!(
        four.throughput.sessions >= four.members.len() as u64,
        "expected ≥{} sessions, saw {}",
        four.members.len(),
        four.throughput.sessions
    );
    assert!(
        !four.fault_events.is_empty(),
        "a nonzero chaos seed must inject faults"
    );

    let four_digest = digest(&four);
    // Replay at the same pool size: bit-identical.
    assert_eq!(
        four_digest,
        digest(&campaign(4)),
        "the same seed must replay bit-identically on 4 workers"
    );
    // Pool size is invisible: a single worker and one-per-participant
    // produce the same campaign.
    assert_eq!(
        four_digest,
        digest(&campaign(1)),
        "1-worker digest diverged from 4 workers"
    );
    assert_eq!(
        four_digest,
        digest(&campaign(SLOTS)),
        "{SLOTS}-worker digest diverged from 4 workers"
    );
}
