//! The Section 4 deployment: NI-CBS through a GRACE-style broker, with the
//! supervisor blind to participant identity.

use uncheatable_grid::core::sampling::derive_samples;
use uncheatable_grid::core::scheme::cbs::verify_round;
use uncheatable_grid::core::scheme::ni_cbs::{participant_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::{ParticipantStorage, Verdict};
use uncheatable_grid::grid::{
    duplex, Assignment, Broker, CheatSelection, CostLedger, HonestWorker, Message,
    SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::{HashFunction, IteratedHash, Sha256};
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

const M: usize = 15;

#[test]
fn brokered_ni_cbs_accepts_honest_rejects_cheater() {
    let task = PasswordSearch::with_hidden_password(8, 10);
    let domain_a = Domain::new(0, 128);
    let domain_b = Domain::new(128, 128);

    let (sup_ep, broker_up) = duplex();
    let (down_a, part_a) = duplex();
    let (down_b, part_b) = duplex();
    let mut broker = Broker::new(broker_up, vec![down_a, down_b]);

    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(0.4, CheatSelection::Scattered, ZeroGuesser::new(1), 3);

    let verdicts = std::thread::scope(|scope| {
        let t = &task;
        let h = &honest;
        let c = &cheater;
        scope.spawn(move || {
            let ledger = CostLedger::new();
            let screener = t.match_screener();
            let _ = participant_ni_cbs::<Sha256, _, _, _>(
                &part_a,
                t,
                &screener,
                &(h as &dyn WorkerBehaviour),
                ParticipantStorage::Full,
                &NiCbsConfig {
                    task_id: 0,
                    samples: M,
                    g_iterations: 1,
                    report_audit: 0,
                    audit_seed: 0,
                },
                &ledger,
            );
        });
        scope.spawn(move || {
            let ledger = CostLedger::new();
            let screener = t.match_screener();
            let _ = participant_ni_cbs::<Sha256, _, _, _>(
                &part_b,
                t,
                &screener,
                &(c as &dyn WorkerBehaviour),
                ParticipantStorage::Full,
                &NiCbsConfig {
                    task_id: 0,
                    samples: M,
                    g_iterations: 1,
                    report_audit: 0,
                    audit_seed: 0,
                },
                &ledger,
            );
        });

        // Supervisor side, by hand, through the broker.
        let ledger = CostLedger::new();
        let screener = task.match_screener();
        sup_ep
            .send(&Message::Assign(Assignment {
                task_id: 0,
                domain: domain_a,
            }))
            .unwrap();
        sup_ep
            .send(&Message::Assign(Assignment {
                task_id: 1,
                domain: domain_b,
            }))
            .unwrap();
        broker.relay_outward(2).unwrap();

        let mut verdicts = Vec::new();
        for (task_id, domain) in [(0u64, domain_a), (1, domain_b)] {
            broker.relay_inward_for(task_id).unwrap(); // CommitAndProofs
            broker.relay_inward_for(task_id).unwrap(); // Reports
            let Message::CommitAndProofs { root, proofs, .. } = sup_ep.recv().unwrap() else {
                panic!("expected CommitAndProofs");
            };
            let Message::Reports { reports, .. } = sup_ep.recv().unwrap() else {
                panic!("expected Reports");
            };
            let root = Sha256::digest_from_bytes(&root).unwrap();
            let g = IteratedHash::<Sha256>::new(1);
            let samples = derive_samples(&g, root.as_ref(), M, domain.len(), &ledger);
            let ok = proofs.len() == samples.len()
                && samples.iter().zip(&proofs).all(|(s, p)| *s == p.index);
            let verdict = if ok {
                verify_round::<Sha256>(
                    &task, &screener, domain, &root, &samples, &proofs, &reports, 0, 0, &ledger,
                )
                .unwrap()
            } else {
                Verdict::SampleDerivationMismatch
            };
            sup_ep
                .send(&Message::Verdict {
                    task_id,
                    accepted: verdict.is_accepted(),
                })
                .unwrap();
            broker.relay_outward(1).unwrap();
            verdicts.push(verdict);
        }
        verdicts
    });

    assert!(verdicts[0].is_accepted(), "honest participant rejected");
    assert!(!verdicts[1].is_accepted(), "cheater accepted");
    assert_eq!(broker.stats().outward, 4);
    assert_eq!(broker.stats().inward, 4);
}
