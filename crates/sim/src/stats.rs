//! Statistical helpers for experiment estimates.

/// Wilson score interval for a binomial proportion.
///
/// Preferred over the normal approximation because cheat-success rates sit
/// near 0 where the naive interval degenerates.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or `z ≤ 0`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = ugc_sim::wilson_interval(5, 100, 1.96);
/// assert!(lo > 0.0 && lo < 0.05);
/// assert!(hi > 0.05 && hi < 0.15);
/// ```
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "trials must be positive");
    assert!(successes <= trials, "successes exceed trials");
    assert!(z > 0.0 && z.is_finite(), "z must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 1.96);
        assert!(lo < 0.3 && 0.3 < hi);
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let (lo, hi) = wilson_interval(0, 1000, 2.58);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.02);
    }

    #[test]
    fn wilson_handles_all_successes() {
        let (lo, hi) = wilson_interval(1000, 1000, 2.58);
        assert!(lo > 0.98 && lo < 1.0);
        // Floating point may land an ulp below the clamp.
        assert!(hi > 0.999_999 && hi <= 1.0, "hi = {hi}");
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let (lo1, hi1) = wilson_interval(10, 100, 1.96);
        let (lo2, hi2) = wilson_interval(1000, 10_000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "trials must be positive")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson_interval(0, 0, 1.96);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
