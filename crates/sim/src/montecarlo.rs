//! Monte-Carlo estimation of cheat-success probabilities.

use crate::stats::wilson_interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugc_core::engine::SessionEngine;
use ugc_core::scheme::cbs::{run_cbs_with, CbsConfig, CbsScheme};
use ugc_core::session::{
    drive_participant, ParticipantContext, SupervisorContext, VerificationScheme,
};
use ugc_core::{LaneWidth, Parallelism, ParticipantStorage};
use ugc_grid::{duplex, Broker, CheatSelection, CostLedger, SemiHonestCheater};
use ugc_hash::Sha256;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{Domain, LuckyGuesser};

/// Seed for trial `t`, derived from the experiment's base seed.
///
/// Every trial — fast or full-protocol, serial or sharded — keys its own
/// generator off this value, so an estimate is a pure function of
/// `(experiment, trials)` regardless of how the trials are scheduled
/// across threads.
fn trial_seed(base: u64, t: u32) -> u64 {
    base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(t))
}

/// One cell of the detection-probability sweep (a point on the Fig. 2 /
/// Eq. 2 grids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionExperiment {
    /// Domain size `n` (matters only for the protocol path).
    pub domain_size: u64,
    /// Sample count `m`.
    pub samples: usize,
    /// Honesty ratio `r`.
    pub honesty_ratio: f64,
    /// Guess quality `q` (probability a guessed leaf is correct).
    pub guess_quality: f64,
    /// Number of independent trials.
    pub trials: u32,
    /// Base seed; trial `t` derives its own seed from it.
    pub seed: u64,
}

/// A binomial rate estimate with a 99% Wilson interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// Number of trials in which the cheater survived.
    pub successes: u32,
    /// Total trials.
    pub trials: u32,
    /// Point estimate `successes / trials`.
    pub rate: f64,
    /// Lower 99% Wilson bound.
    pub ci_low: f64,
    /// Upper 99% Wilson bound.
    pub ci_high: f64,
}

impl RateEstimate {
    fn from_counts(successes: u32, trials: u32) -> Self {
        let (mut ci_low, mut ci_high) =
            wilson_interval(u64::from(successes), u64::from(trials), 2.576);
        // Exact bounds at the extremes: the Wilson endpoints collapse to
        // 0/1 analytically there, but floating point can leave an
        // ulp-sized residue that would exclude tiny true probabilities.
        if successes == 0 {
            ci_low = 0.0;
        }
        if successes == trials {
            ci_high = 1.0;
        }
        RateEstimate {
            successes,
            trials,
            rate: f64::from(successes) / f64::from(trials),
            ci_low,
            ci_high,
        }
    }

    /// Whether the interval contains a theoretical value.
    #[must_use]
    pub fn contains(&self, p: f64) -> bool {
        self.ci_low <= p && p <= self.ci_high
    }
}

/// One Theorem 3 sampling event, keyed entirely by `(exp.seed, t)`.
fn fast_trial(exp: &DetectionExperiment, t: u32) -> bool {
    let mut rng = StdRng::seed_from_u64(trial_seed(exp.seed, t));
    for _ in 0..exp.samples {
        let honest = rng.random::<f64>() < exp.honesty_ratio;
        if !honest && rng.random::<f64>() >= exp.guess_quality {
            return false;
        }
    }
    true
}

/// The unreliable-grid overlay on a [`DetectionExperiment`]: each
/// verification attempt crashes (participant churn, lost messages) with
/// probability [`crash_probability`](Self::crash_probability) before it
/// can complete, and a crashed attempt is reassigned up to
/// [`retries`](Self::retries) times — the failure model the chaos runtime
/// injects with [`FaultPlan`](ugc_grid::FaultPlan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Probability that one attempt crashes before verifying anything.
    pub crash_probability: f64,
    /// Reassignments granted after a crashed attempt.
    pub retries: u32,
}

/// Chaos-aware fast path: estimates the probability that a cheater
/// escapes detection on a grid where attempts crash and are reassigned
/// per `churn`. A trial counts as an escape if every attempt crashed
/// (the work was never verified) or the first completed attempt survived
/// the Theorem 3 sampling event.
///
/// Validated against the closed form
/// [`cheat_success_probability_under_churn`](ugc_core::analysis::cheat_success_probability_under_churn);
/// deterministic per `(exp.seed, t)` like every other estimator here.
///
/// # Panics
///
/// Panics if `exp.trials == 0`, a probability is out of range, or
/// `churn.crash_probability` is not a probability.
#[must_use]
pub fn estimate_cheat_success_under_churn(
    exp: &DetectionExperiment,
    churn: &ChurnModel,
) -> RateEstimate {
    validate_fast(exp);
    assert!(
        (0.0..=1.0).contains(&churn.crash_probability),
        "crash probability out of range"
    );
    let survived = (0..exp.trials)
        .map(|t| {
            // An independent stream from the sampling event's: the same
            // trial seed must not correlate crashes with sample luck.
            let mut crash_rng = StdRng::seed_from_u64(trial_seed(exp.seed, t) ^ 0x0c4a_5b1e);
            let completed =
                (0..=churn.retries).any(|_| crash_rng.random::<f64>() >= churn.crash_probability);
            u32::from(if completed { fast_trial(exp, t) } else { true })
        })
        .sum();
    RateEstimate::from_counts(survived, exp.trials)
}

fn validate_fast(exp: &DetectionExperiment) {
    assert!(exp.trials > 0, "need at least one trial");
    assert!((0.0..=1.0).contains(&exp.honesty_ratio), "r out of range");
    assert!((0.0..=1.0).contains(&exp.guess_quality), "q out of range");
}

/// Fast path: simulates only the Theorem 3 event per trial — each of the
/// `m` uniform samples survives iff it lands in `D′` (probability `r`) or
/// the guess was lucky (probability `q`). Use for dense grids.
///
/// Each trial derives its own generator from the base seed, so the
/// estimate is bit-identical to
/// [`estimate_cheat_success_fast_parallel`] at any thread count.
///
/// # Panics
///
/// Panics if `trials == 0` or the probabilities are out of range.
#[must_use]
pub fn estimate_cheat_success_fast(exp: &DetectionExperiment) -> RateEstimate {
    validate_fast(exp);
    let survived = (0..exp.trials).map(|t| u32::from(fast_trial(exp, t))).sum();
    RateEstimate::from_counts(survived, exp.trials)
}

/// [`estimate_cheat_success_fast`] with the trials sharded over
/// `parallelism` worker threads. Deterministic: bit-identical counts to
/// the serial path for the same base seed, at any thread count — only
/// wall-clock time changes. This is the engine behind the Fig. 2
/// reproduction's 200k-trials-per-cell sweeps.
///
/// # Panics
///
/// As the serial variant.
#[must_use]
pub fn estimate_cheat_success_fast_parallel(
    exp: &DetectionExperiment,
    parallelism: Parallelism,
) -> RateEstimate {
    validate_fast(exp);
    let threads = (parallelism.get() as u32).min(exp.trials).max(1);
    if threads == 1 {
        return estimate_cheat_success_fast(exp);
    }
    let survived = crossbeam::thread::scope(|scope| {
        let per = exp.trials.div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let exp = *exp;
                scope.spawn(move |_| {
                    let lo = w * per;
                    let hi = (lo + per).min(exp.trials);
                    (lo..hi)
                        .map(|t| u32::from(fast_trial(&exp, t)))
                        .sum::<u32>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    })
    .expect("monte-carlo scope");
    RateEstimate::from_counts(survived, exp.trials)
}

/// Full-protocol path: every trial runs a complete interactive CBS round
/// (tree build, commitment, challenge, proofs, verification) against a
/// scattered semi-honest cheater whose guesser realises `q` exactly.
///
/// Orders of magnitude slower than the fast path; use it to validate that
/// the protocol's detection matches Theorem 3, then sweep with the fast
/// path.
///
/// # Panics
///
/// Panics if `trials == 0` or probabilities are out of range (as the fast
/// path), or if a protocol round fails outright (transport bugs — never
/// expected in-process).
#[must_use]
pub fn estimate_cheat_success_protocol(exp: &DetectionExperiment) -> RateEstimate {
    assert!(exp.trials > 0, "need at least one trial");
    let survived = (0..exp.trials)
        .map(|t| u32::from(run_protocol_trial(exp, t)))
        .sum();
    RateEstimate::from_counts(survived, exp.trials)
}

/// Parallel variant of [`estimate_cheat_success_protocol`]: splits the
/// trials over `parallelism` workers. Deterministic — trial `t` derives
/// the same seed regardless of which worker runs it, so the estimate is
/// bit-identical to the serial path at any thread count.
///
/// # Panics
///
/// As the serial variant.
#[must_use]
pub fn estimate_cheat_success_protocol_parallel(
    exp: &DetectionExperiment,
    parallelism: Parallelism,
) -> RateEstimate {
    assert!(exp.trials > 0, "need at least one trial");
    let threads = (parallelism.get() as u32).min(exp.trials).max(1);
    if threads == 1 {
        return estimate_cheat_success_protocol(exp);
    }
    let survived = crossbeam::thread::scope(|scope| {
        let per = exp.trials.div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let exp = *exp;
                scope.spawn(move |_| {
                    let lo = w * per;
                    let hi = (lo + per).min(exp.trials);
                    (lo..hi)
                        .map(|t| u32::from(run_protocol_trial(&exp, t)))
                        .sum::<u32>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    })
    .expect("monte-carlo scope");
    RateEstimate::from_counts(survived, exp.trials)
}

/// The cast of one protocol trial, shared by the in-process and the
/// brokered paths so both derive identical verdicts for the same `t`.
fn trial_cast(
    exp: &DetectionExperiment,
    t: u32,
) -> (
    PasswordSearch,
    SemiHonestCheater<LuckyGuesser<PasswordSearch>>,
    CbsScheme,
) {
    let trial_seed = trial_seed(exp.seed, t);
    let task = PasswordSearch::with_hidden_password(trial_seed, 0);
    let guesser = LuckyGuesser::new(task.clone(), exp.guess_quality, trial_seed ^ 0xaa);
    let cheater = SemiHonestCheater::new(
        exp.honesty_ratio,
        CheatSelection::Scattered,
        guesser,
        trial_seed ^ 0xbb,
    );
    let scheme = CbsScheme {
        samples: exp.samples,
        seed: trial_seed ^ 0xcc,
        report_audit: 0,
    };
    (task, cheater, scheme)
}

/// Full-protocol path over the **grid transport**: trials run as CBS
/// sessions multiplexed by a [`SessionEngine`] over one supervisor link
/// into a relaying [`Broker`], `concurrency` trials in flight per batch —
/// the deployment-shaped variant of [`estimate_cheat_success_protocol`].
///
/// Deterministic and **bit-identical** to the in-process path: trial `t`
/// derives the same task, cheater and sampling seed either way, so the
/// survival counts match exactly; only the transport differs.
///
/// # Panics
///
/// Panics if `trials == 0` or `concurrency == 0`, or on transport bugs
/// (never expected in-process).
#[must_use]
pub fn estimate_cheat_success_protocol_brokered(
    exp: &DetectionExperiment,
    concurrency: usize,
) -> RateEstimate {
    assert!(exp.trials > 0, "need at least one trial");
    assert!(concurrency > 0, "need at least one session in flight");
    let mut survived = 0u32;
    let mut next = 0u32;
    while next < exp.trials {
        let hi = (next + concurrency as u32).min(exp.trials);
        survived += run_brokered_batch(exp, next..hi);
        next = hi;
    }
    RateEstimate::from_counts(survived, exp.trials)
}

/// Runs one batch of trials as concurrent sessions over a broker link;
/// returns how many cheaters survived.
fn run_brokered_batch(exp: &DetectionExperiment, trials: core::ops::Range<u32>) -> u32 {
    let domain = Domain::new(0, exp.domain_size);
    let casts: Vec<_> = trials.map(|t| trial_cast(exp, t)).collect();
    let screeners: Vec<_> = casts
        .iter()
        .map(|(task, _, _)| task.match_screener())
        .collect();

    let mut engine = SessionEngine::new();
    let mut children = Vec::new();
    let mut part_endpoints = Vec::new();
    for (i, ((task, _, scheme), screener)) in casts.iter().zip(&screeners).enumerate() {
        let session = VerificationScheme::<Sha256>::supervisor_session(
            scheme,
            SupervisorContext {
                task,
                screener,
                domain,
                task_ids: vec![i as u64],
                ledger: CostLedger::new(),
            },
        );
        engine
            .add_session(session, vec![i as u64])
            .expect("batch task ids are unique");
        let (broker_side, part_side) = duplex();
        children.push(broker_side);
        part_endpoints.push(part_side);
    }
    let (mut sup_transport, broker_up) = duplex();
    let broker = Broker::new(broker_up, children);

    let results = std::thread::scope(|scope| {
        scope.spawn(move || broker.pump_until_closed());
        for (((task, cheater, scheme), screener), endpoint) in
            casts.iter().zip(&screeners).zip(part_endpoints)
        {
            // Each thread owns its endpoint so finishing hangs it up.
            scope.spawn(move || {
                let mut session = VerificationScheme::<Sha256>::participant_session(
                    scheme,
                    ParticipantContext {
                        task,
                        screener,
                        behaviour: cheater,
                        storage: ParticipantStorage::Full,
                        // Serial builds: parallelism lives at the batch level.
                        parallelism: Parallelism::serial(),
                        lanes: LaneWidth::default(),
                        ledger: CostLedger::new(),
                    },
                );
                drive_participant(&endpoint, session.as_mut())
                    .expect("brokered CBS round must not fail");
            });
        }
        let results = engine.run(&mut sup_transport);
        drop(sup_transport);
        results
    });
    results
        .into_iter()
        .map(|r| {
            u32::from(
                r.outcome
                    .expect("brokered CBS round must not fail")
                    .verdict
                    .is_accepted(),
            )
        })
        .sum()
}

/// One full CBS round for trial `t`; `true` iff the cheater survived.
fn run_protocol_trial(exp: &DetectionExperiment, t: u32) -> bool {
    let (task, cheater, scheme) = trial_cast(exp, t);
    let screener = task.match_screener();
    let config = CbsConfig {
        task_id: u64::from(t),
        samples: scheme.samples,
        seed: scheme.seed,
        report_audit: scheme.report_audit,
    };
    // Serial tree build: the trial may already be running on a saturated
    // shard thread, so nesting a multi-threaded build would oversubscribe
    // the cores (parallelism lives at the trial level here).
    run_cbs_with::<Sha256, _, _, _>(
        &task,
        &screener,
        Domain::new(0, exp.domain_size),
        &cheater,
        ParticipantStorage::Full,
        Parallelism::serial(),
        // Lane-batched tree builds and sample hashing: bit-identical to
        // scalar, so estimates are unchanged at any width.
        LaneWidth::default(),
        &config,
    )
    .expect("in-process CBS round must not fail")
    .accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_core::analysis::cheat_success_probability;

    #[test]
    fn fast_path_matches_eq2_across_grid() {
        for &(r, q, m) in &[
            (0.5, 0.0, 5usize),
            (0.5, 0.5, 8),
            (0.8, 0.0, 10),
            (0.9, 0.5, 20),
            (0.2, 0.0, 3),
        ] {
            let exp = DetectionExperiment {
                domain_size: 0, // unused on the fast path
                samples: m,
                honesty_ratio: r,
                guess_quality: q,
                trials: 20_000,
                seed: 7,
            };
            let est = estimate_cheat_success_fast(&exp);
            let theory = cheat_success_probability(r, q, m as u64);
            assert!(
                est.contains(theory),
                "r={r} q={q} m={m}: est [{:.4},{:.4}] excludes {:.4}",
                est.ci_low,
                est.ci_high,
                theory
            );
        }
    }

    #[test]
    fn fast_path_extremes() {
        let mut exp = DetectionExperiment {
            domain_size: 0,
            samples: 10,
            honesty_ratio: 1.0,
            guess_quality: 0.0,
            trials: 500,
            seed: 1,
        };
        assert_eq!(estimate_cheat_success_fast(&exp).rate, 1.0);
        exp.honesty_ratio = 0.0;
        assert_eq!(estimate_cheat_success_fast(&exp).rate, 0.0);
    }

    #[test]
    fn churn_estimate_matches_closed_form_across_grid() {
        use ugc_core::analysis::cheat_success_probability_under_churn;
        for &(r, q, m, c, retries) in &[
            (0.5, 0.0, 10usize, 0.3, 0u32),
            (0.5, 0.0, 10, 0.3, 3),
            (0.8, 0.2, 6, 0.5, 1),
            (0.5, 0.0, 14, 0.9, 8),
        ] {
            let exp = DetectionExperiment {
                domain_size: 0,
                samples: m,
                honesty_ratio: r,
                guess_quality: q,
                trials: 20_000,
                seed: 13,
            };
            let churn = ChurnModel {
                crash_probability: c,
                retries,
            };
            let est = estimate_cheat_success_under_churn(&exp, &churn);
            let theory = cheat_success_probability_under_churn(r, q, m as u64, c, retries);
            assert!(
                est.contains(theory),
                "r={r} q={q} m={m} c={c} retries={retries}: \
                 est [{:.4},{:.4}] excludes {:.4}",
                est.ci_low,
                est.ci_high,
                theory
            );
        }
    }

    #[test]
    fn churn_estimate_reduces_to_fast_path_without_crashes() {
        let exp = DetectionExperiment {
            domain_size: 0,
            samples: 8,
            honesty_ratio: 0.6,
            guess_quality: 0.1,
            trials: 5_000,
            seed: 3,
        };
        let no_churn = ChurnModel {
            crash_probability: 0.0,
            retries: 0,
        };
        assert_eq!(
            estimate_cheat_success_under_churn(&exp, &no_churn).successes,
            estimate_cheat_success_fast(&exp).successes
        );
    }

    #[test]
    fn churn_estimate_deterministic_per_seed() {
        let exp = DetectionExperiment {
            domain_size: 0,
            samples: 5,
            honesty_ratio: 0.5,
            guess_quality: 0.0,
            trials: 4_000,
            seed: 77,
        };
        let churn = ChurnModel {
            crash_probability: 0.4,
            retries: 2,
        };
        assert_eq!(
            estimate_cheat_success_under_churn(&exp, &churn).successes,
            estimate_cheat_success_under_churn(&exp, &churn).successes
        );
    }

    #[test]
    fn fast_path_deterministic_per_seed() {
        let exp = DetectionExperiment {
            domain_size: 0,
            samples: 6,
            honesty_ratio: 0.6,
            guess_quality: 0.1,
            trials: 5_000,
            seed: 33,
        };
        assert_eq!(
            estimate_cheat_success_fast(&exp).successes,
            estimate_cheat_success_fast(&exp).successes
        );
    }

    #[test]
    fn protocol_path_agrees_with_theory() {
        // Small but real: 300 full CBS rounds at r=0.5, q=0, m=3 → expect
        // survival ≈ 0.125.
        let exp = DetectionExperiment {
            domain_size: 64,
            samples: 3,
            honesty_ratio: 0.5,
            guess_quality: 0.0,
            trials: 300,
            seed: 11,
        };
        let est = estimate_cheat_success_protocol(&exp);
        let theory = cheat_success_probability(0.5, 0.0, 3);
        assert!(
            est.contains(theory),
            "protocol estimate [{:.3},{:.3}] excludes theory {:.3}",
            est.ci_low,
            est.ci_high,
            theory
        );
    }

    #[test]
    fn brokered_protocol_path_is_bit_identical_to_in_process() {
        // Same trials through the session engine + broker: the transport
        // must not change a single verdict.
        let exp = DetectionExperiment {
            domain_size: 64,
            samples: 3,
            honesty_ratio: 0.5,
            guess_quality: 0.0,
            trials: 40,
            seed: 11,
        };
        let in_process = estimate_cheat_success_protocol(&exp);
        for concurrency in [1usize, 4, 64] {
            let brokered = estimate_cheat_success_protocol_brokered(&exp, concurrency);
            assert_eq!(
                in_process.successes, brokered.successes,
                "brokered path diverged at concurrency {concurrency}"
            );
        }
    }

    #[test]
    fn protocol_path_with_lucky_guessers() {
        // q = 1: every guess is right, so the cheater always survives.
        let exp = DetectionExperiment {
            domain_size: 32,
            samples: 5,
            honesty_ratio: 0.3,
            guess_quality: 1.0,
            trials: 30,
            seed: 5,
        };
        let est = estimate_cheat_success_protocol(&exp);
        assert_eq!(est.rate, 1.0);
    }

    #[test]
    fn rate_estimate_interval_sane() {
        let est = RateEstimate::from_counts(0, 100);
        assert_eq!(est.rate, 0.0);
        assert!(est.ci_high > 0.0);
        assert!(est.contains(0.0));
        assert!(!est.contains(0.5));
    }

    #[test]
    fn zero_successes_interval_contains_tiny_probabilities() {
        // Regression: an ulp of Wilson rounding once excluded 1e-21.
        let est = RateEstimate::from_counts(0, 100_000);
        assert!(est.contains(1e-21));
        let est = RateEstimate::from_counts(100_000, 100_000);
        assert!(est.contains(1.0 - 1e-12));
    }

    #[test]
    fn parallel_protocol_estimate_equals_serial() {
        let exp = DetectionExperiment {
            domain_size: 32,
            samples: 3,
            honesty_ratio: 0.5,
            guess_quality: 0.0,
            trials: 64,
            seed: 21,
        };
        let serial = estimate_cheat_success_protocol(&exp);
        for threads in 1usize..=8 {
            let parallel =
                estimate_cheat_success_protocol_parallel(&exp, Parallelism::threads(threads));
            assert_eq!(
                parallel.successes, serial.successes,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn sharded_fast_estimate_identical_to_serial() {
        // The satellite requirement: for the same base seed the sharded
        // Monte-Carlo estimate must be *identical* (not just statistically
        // compatible) to the serial one, at every thread count.
        for seed in [0u64, 7, 0xdead_beef] {
            let exp = DetectionExperiment {
                domain_size: 0,
                samples: 9,
                honesty_ratio: 0.6,
                guess_quality: 0.2,
                trials: 10_001, // odd: exercises ragged shard boundaries
                seed,
            };
            let serial = estimate_cheat_success_fast(&exp);
            for threads in 1usize..=8 {
                let sharded =
                    estimate_cheat_success_fast_parallel(&exp, Parallelism::threads(threads));
                assert_eq!(
                    sharded.successes, serial.successes,
                    "seed={seed} threads={threads} diverged"
                );
            }
        }
    }

    #[test]
    fn fast_parallel_handles_more_threads_than_trials() {
        let exp = DetectionExperiment {
            domain_size: 0,
            samples: 2,
            honesty_ratio: 0.5,
            guess_quality: 0.0,
            trials: 3,
            seed: 1,
        };
        let serial = estimate_cheat_success_fast(&exp);
        let sharded = estimate_cheat_success_fast_parallel(&exp, Parallelism::threads(64));
        assert_eq!(serial.successes, sharded.successes);
    }
}
