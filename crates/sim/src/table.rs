//! A minimal aligned-column table printer for experiment binaries.

use core::fmt;

/// An aligned text table, printed by the figure-regeneration binaries so
/// their output reads like the paper's tables.
///
/// # Examples
///
/// ```
/// let mut t = ugc_sim::Table::new(["r", "m (q=0)", "m (q=0.5)"]);
/// t.push(["0.5", "14", "33"]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("0.5"));
/// assert!(rendered.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, width) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bb"]);
        t.push(["100", "2"]);
        t.push(["1", "200"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same display width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only one"]);
    }

    #[test]
    fn header_only_table_renders() {
        let t = Table::new(["col"]);
        let s = t.to_string();
        assert!(s.contains("col"));
        assert_eq!(s.lines().count(), 2);
    }
}
