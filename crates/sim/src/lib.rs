//! Monte-Carlo experiment harness for the Uncheatable Grid Computing
//! reproduction.
//!
//! The paper's evaluation is analytical; this crate is the empirical side
//! of the reproduction. It estimates detection/cheat-success probabilities
//! by running many independent rounds — either the *fast path* (just the
//! sampling event of Theorem 3) for dense parameter grids, or the *full
//! protocol path* (complete CBS rounds over the byte-counted transport)
//! for validation — and reports Wilson confidence intervals so the
//! figure-regeneration binaries can show agreement bands, not just point
//! estimates.
//!
//! # Examples
//!
//! ```
//! use ugc_sim::{DetectionExperiment, estimate_cheat_success_fast};
//! use ugc_core::analysis::cheat_success_probability;
//!
//! let exp = DetectionExperiment {
//!     domain_size: 256,
//!     samples: 10,
//!     honesty_ratio: 0.5,
//!     guess_quality: 0.0,
//!     trials: 2_000,
//!     seed: 42,
//! };
//! let est = estimate_cheat_success_fast(&exp);
//! let theory = cheat_success_probability(0.5, 0.0, 10);
//! assert!(est.ci_low <= theory && theory <= est.ci_high);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod montecarlo;
mod stats;
mod table;

pub use montecarlo::{
    estimate_cheat_success_fast, estimate_cheat_success_fast_parallel,
    estimate_cheat_success_protocol, estimate_cheat_success_protocol_brokered,
    estimate_cheat_success_protocol_parallel, estimate_cheat_success_under_churn, ChurnModel,
    DetectionExperiment, RateEstimate,
};
pub use stats::{wilson_interval, Summary};
pub use table::Table;
// Convenience: experiment binaries shard trials with the same knob the
// scheme layer uses for tree builds.
pub use ugc_core::Parallelism;
