//! Property-based tests for the hash primitives.
//!
//! Invariants (DESIGN.md §5): incremental update equals one-shot digest for
//! any chunking, hex roundtrips, digests are length-stable, and the pair
//! digest equals hashing the concatenation.

use proptest::prelude::*;
use ugc_hash::{
    digest_batch, digest_iterated_batch, digest_pairs, hex, streaming_digest_iterated,
    streaming_digest_pair, Algorithm, HashChain, HashFunction, IteratedHash, LaneWidth, Md5, Sha1,
    Sha256,
};

fn chunked_digest<H: HashFunction>(data: &[u8], cuts: &[usize]) -> H::Digest {
    let mut st = H::new_state();
    let mut rest = data;
    for &cut in cuts {
        let take = cut.min(rest.len());
        let (head, tail) = rest.split_at(take);
        H::update(&mut st, head);
        rest = tail;
    }
    H::update(&mut st, rest);
    H::finalize(st)
}

proptest! {
    #[test]
    fn md5_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..512),
                               cuts in proptest::collection::vec(0usize..200, 0..8)) {
        prop_assert_eq!(chunked_digest::<Md5>(&data, &cuts), Md5::digest(&data));
    }

    #[test]
    fn sha1_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..512),
                                cuts in proptest::collection::vec(0usize..200, 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha1>(&data, &cuts), Sha1::digest(&data));
    }

    #[test]
    fn sha256_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..512),
                                  cuts in proptest::collection::vec(0usize..200, 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha256>(&data, &cuts), Sha256::digest(&data));
    }

    #[test]
    fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&bytes);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), bytes);
    }

    #[test]
    fn hex_encode_length(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::encode(&bytes).len(), bytes.len() * 2);
    }

    #[test]
    fn digest_lengths_stable(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        for alg in Algorithm::ALL {
            prop_assert_eq!(alg.digest(&data).len(), alg.digest_len());
        }
    }

    #[test]
    fn pair_digest_equals_concat(a in proptest::collection::vec(any::<u8>(), 0..128),
                                 b in proptest::collection::vec(any::<u8>(), 0..128)) {
        let concat: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(Sha256::digest_pair(&a, &b), Sha256::digest(&concat));
        prop_assert_eq!(Md5::digest_pair(&a, &b), Md5::digest(&concat));
    }

    #[test]
    fn pair_digest_fast_path_equals_streaming(
        a in proptest::collection::vec(any::<u8>(), 0..160),
        b in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        // Lengths up to 320 cross both the one-/two-block boundary (56)
        // and the stack fast-path cut-off (119) for every algorithm.
        prop_assert_eq!(Md5::digest_pair(&a, &b), streaming_digest_pair::<Md5>(&a, &b));
        prop_assert_eq!(Sha1::digest_pair(&a, &b), streaming_digest_pair::<Sha1>(&a, &b));
        prop_assert_eq!(Sha256::digest_pair(&a, &b), streaming_digest_pair::<Sha256>(&a, &b));
    }

    #[test]
    fn digest_iterated_fast_path_equals_streaming(
        data in proptest::collection::vec(any::<u8>(), 0..96),
        k in 1u64..32,
    ) {
        prop_assert_eq!(
            Md5::digest_iterated(&data, k),
            streaming_digest_iterated::<Md5>(&data, k)
        );
        prop_assert_eq!(
            Sha1::digest_iterated(&data, k),
            streaming_digest_iterated::<Sha1>(&data, k)
        );
        prop_assert_eq!(
            Sha256::digest_iterated(&data, k),
            streaming_digest_iterated::<Sha256>(&data, k)
        );
    }

    #[test]
    fn iterated_hash_composes(data in proptest::collection::vec(any::<u8>(), 0..64),
                              k in 1u64..16) {
        let g = IteratedHash::<Sha256>::new(k);
        let mut manual = Sha256::digest(&data);
        for _ in 1..k {
            manual = Sha256::digest(manual.as_ref());
        }
        prop_assert_eq!(g.apply(&data), manual);
    }

    #[test]
    fn chain_prefix_consistent(seed in proptest::collection::vec(any::<u8>(), 1..64),
                               k in 1u64..8, m in 1usize..16) {
        // Taking m elements then re-deriving must agree element-wise.
        let g = IteratedHash::<Md5>::new(k);
        let first: Vec<_> = HashChain::new(g, &seed).take(m).collect();
        let second: Vec<_> = HashChain::new(g, &seed).take(m).collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn digest_to_u64_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let d = Sha256::digest(&data);
        prop_assert_eq!(Sha256::digest_to_u64(&d), Sha256::digest_to_u64(&d));
    }

    #[test]
    fn lane_batch_equals_scalar_every_width(
        // Lengths up to 140 cross the one-/two-block padding boundaries
        // (55/56, 119/120); batch sizes up to 9 cover the fully-scalar,
        // 4-wide-plus-tail and 8-wide-plus-tail dispatch shapes.
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..140), 0..10),
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for width in LaneWidth::ALL {
            prop_assert_eq!(
                digest_batch::<Md5>(&refs, width),
                msgs.iter().map(|m| Md5::digest(m)).collect::<Vec<_>>(),
                "md5 {}", width
            );
            prop_assert_eq!(
                digest_batch::<Sha1>(&refs, width),
                msgs.iter().map(|m| Sha1::digest(m)).collect::<Vec<_>>(),
                "sha1 {}", width
            );
            prop_assert_eq!(
                digest_batch::<Sha256>(&refs, width),
                msgs.iter().map(|m| Sha256::digest(m)).collect::<Vec<_>>(),
                "sha256 {}", width
            );
        }
    }

    #[test]
    fn lane_pairs_equal_scalar_pair_digest(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..80),
             proptest::collection::vec(any::<u8>(), 0..80)),
            0..10),
    ) {
        let refs: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(a, b)| (a.as_slice(), b.as_slice())).collect();
        for width in LaneWidth::ALL {
            prop_assert_eq!(
                digest_pairs::<Sha256>(&refs, width),
                pairs.iter().map(|(a, b)| Sha256::digest_pair(a, b)).collect::<Vec<_>>(),
                "{}", width
            );
        }
    }

    #[test]
    fn lane_iterated_batch_equals_scalar_chains(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..10),
        k in 1u64..16,
    ) {
        let refs: Vec<&[u8]> = seeds.iter().map(|s| s.as_slice()).collect();
        for width in LaneWidth::ALL {
            prop_assert_eq!(
                digest_iterated_batch::<Md5>(&refs, k, width),
                seeds.iter().map(|s| Md5::digest_iterated(s, k)).collect::<Vec<_>>(),
                "{}", width
            );
        }
    }

    #[test]
    fn lane_order_is_independent(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 8..9),
    ) {
        // Lane i's digest depends only on message i: reversing the batch
        // exactly reverses the outputs.
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let forward = digest_batch::<Sha1>(&refs, LaneWidth::X8);
        let reversed_refs: Vec<&[u8]> = refs.iter().rev().copied().collect();
        let mut reversed = digest_batch::<Sha1>(&reversed_refs, LaneWidth::X8);
        reversed.reverse();
        prop_assert_eq!(forward, reversed);
    }
}
