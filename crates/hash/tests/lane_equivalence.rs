//! Lane-vs-scalar equivalence: the multi-lane digest kernels must be
//! bit-identical to per-message scalar hashing for every algorithm, at
//! every padding boundary, for ragged batches and mixed per-lane lengths.
//!
//! The suite runs at one [`LaneWidth`] picked by the `UGC_LANES`
//! environment variable (`scalar`, `x4` or `x8`; default `x8`) — CI runs
//! it once per setting, so the same assertions prove both that the wide
//! kernels match the scalar path and that the `Scalar` setting really
//! does bypass them.

use ugc_hash::{
    digest_batch, digest_iterated_batch, digest_pairs, HashFunction, LaneWidth, Md5, Sha1, Sha256,
};

/// Message lengths that exercise every padding case: empty, one byte,
/// both sides of the one-block boundary (55/56), the block edge
/// (63/64/65), and both sides of the two-block boundary (119/120), plus
/// an exact two-block message (128).
const BOUNDARY_LENS: [usize; 10] = [0, 1, 55, 56, 63, 64, 65, 119, 120, 128];

/// The width under test: `UGC_LANES` (scalar | x4 | x8), default x8.
fn width_under_test() -> LaneWidth {
    match std::env::var("UGC_LANES") {
        Ok(name) => LaneWidth::parse(&name)
            .unwrap_or_else(|| panic!("UGC_LANES={name:?}: expected scalar, x4 or x8")),
        Err(_) => LaneWidth::default(),
    }
}

/// Deterministic pseudo-random message of length `len`.
fn message(len: usize, tag: u64) -> Vec<u8> {
    let mut state = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ len as u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 56).to_le_bytes()[0]
        })
        .collect()
}

fn assert_batch_matches_scalar<H: HashFunction>(payloads: &[Vec<u8>], context: &str) {
    let width = width_under_test();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let lanes = digest_batch::<H>(&refs, width);
    let scalar: Vec<H::Digest> = payloads.iter().map(|p| H::digest(p)).collect();
    assert_eq!(lanes, scalar, "{context} width={width}");
}

#[test]
fn padding_boundaries_match_scalar_for_every_algorithm() {
    for &len in &BOUNDARY_LENS {
        // A full batch of same-length messages at each boundary length.
        let payloads: Vec<Vec<u8>> = (0..8).map(|i| message(len, i)).collect();
        assert_batch_matches_scalar::<Md5>(&payloads, &format!("md5 len={len}"));
        assert_batch_matches_scalar::<Sha1>(&payloads, &format!("sha1 len={len}"));
        assert_batch_matches_scalar::<Sha256>(&payloads, &format!("sha256 len={len}"));
    }
}

#[test]
fn ragged_batches_match_scalar_for_every_algorithm() {
    // Batch sizes straddling both kernel widths: 1..=3 go fully scalar,
    // 4..=7 take one 4-wide dispatch plus a tail, 8..=9 take an 8-wide
    // dispatch plus a tail.
    for n in 1..=9usize {
        let payloads: Vec<Vec<u8>> = (0..n).map(|i| message(24 + i, i as u64)).collect();
        assert_batch_matches_scalar::<Md5>(&payloads, &format!("md5 n={n}"));
        assert_batch_matches_scalar::<Sha1>(&payloads, &format!("sha1 n={n}"));
        assert_batch_matches_scalar::<Sha256>(&payloads, &format!("sha256 n={n}"));
    }
}

#[test]
fn mixed_per_lane_lengths_match_scalar() {
    // Every boundary length in the same dispatch: the transposed pass
    // covers the common block count, the scalar finish the longer lanes.
    let payloads: Vec<Vec<u8>> = BOUNDARY_LENS
        .iter()
        .enumerate()
        .map(|(i, &len)| message(len, i as u64))
        .collect();
    assert_batch_matches_scalar::<Md5>(&payloads, "md5 mixed");
    assert_batch_matches_scalar::<Sha1>(&payloads, "sha1 mixed");
    assert_batch_matches_scalar::<Sha256>(&payloads, "sha256 mixed");
}

#[test]
fn lane_order_independence() {
    // Lane i's digest depends only on message i: reversing the batch
    // reverses the outputs and changes nothing else.
    let width = width_under_test();
    let payloads: Vec<Vec<u8>> = (0..8).map(|i| message(30 + 7 * i as usize, i)).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let forward = digest_batch::<Sha256>(&refs, width);
    let reversed_refs: Vec<&[u8]> = refs.iter().rev().copied().collect();
    let mut reversed = digest_batch::<Sha256>(&reversed_refs, width);
    reversed.reverse();
    assert_eq!(forward, reversed, "width={width}");
}

#[test]
fn two_segment_pairs_match_concatenation() {
    let width = width_under_test();
    for &split in &[0usize, 1, 32, 55, 64, 100] {
        let payloads: Vec<Vec<u8>> = (0..9).map(|i| message(120, 1000 + i)).collect();
        let pairs: Vec<(&[u8], &[u8])> = payloads
            .iter()
            .map(|p| {
                let (a, b) = p.split_at(split.min(p.len()));
                (a, b)
            })
            .collect();
        let lanes = digest_pairs::<Sha1>(&pairs, width);
        let scalar: Vec<_> = payloads.iter().map(|p| Sha1::digest(p)).collect();
        assert_eq!(lanes, scalar, "split={split} width={width}");
    }
}

#[test]
fn iterated_chains_match_scalar() {
    let width = width_under_test();
    let seeds: Vec<Vec<u8>> = (0..9).map(|i| message(16, 2000 + i)).collect();
    let refs: Vec<&[u8]> = seeds.iter().map(|s| s.as_slice()).collect();
    for k in [1u64, 2, 7, 64] {
        let lanes = digest_iterated_batch::<Md5>(&refs, k, width);
        let scalar: Vec<_> = seeds.iter().map(|s| Md5::digest_iterated(s, k)).collect();
        assert_eq!(lanes, scalar, "k={k} width={width}");
    }
}

#[test]
fn fixed_width_dispatch_matches_scalar_digests() {
    // Drive the trait entry points directly (not the batch helpers):
    // these are what the Merkle level builder calls per group.
    let payloads: Vec<Vec<u8>> = (0..8).map(|i| message(45 + i, 3000 + i as u64)).collect();
    let msgs8: [(&[u8], &[u8]); 8] = core::array::from_fn(|l| (payloads[l].as_slice(), &[][..]));
    let msgs4: [(&[u8], &[u8]); 4] = core::array::from_fn(|l| (payloads[l].as_slice(), &[][..]));
    let got8 = Sha256::digest_lanes_8(&msgs8);
    let got4 = Md5::digest_lanes_4(&msgs4);
    for l in 0..8 {
        assert_eq!(got8[l], Sha256::digest(&payloads[l]), "sha256 lane {l}");
    }
    for l in 0..4 {
        assert_eq!(got4[l], Md5::digest(&payloads[l]), "md5 lane {l}");
    }
}
