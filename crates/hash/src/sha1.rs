//! SHA-1 (FIPS 180-4), implemented from the specification.
//!
//! Included because the paper names "MD5 or SHA" as the Merkle-tree hash;
//! SHA-1 sits between MD5 and SHA-256 in the cost model. Like MD5 it is
//! broken for collision resistance and kept here for fidelity and
//! benchmarking, not for new designs.

use crate::HashFunction;

/// FIPS 180-4 initial hash value (shared with the transposed lane
/// kernels in `crate::lanes`).
pub(crate) const IV: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// One SHA-1 compression round over a single 64-byte block.
pub(crate) fn compress(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *h;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i / 20 {
            0 => ((b & c) | (!b & d), 0x5a82_7999),
            1 => (b ^ c ^ d, 0x6ed9_eba1),
            2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Multi-block compression kernel: feeds every full 64-byte block of
/// `data` to [`compress`] directly from the input slice — no per-block
/// staging copy, one dispatch for the whole run — and returns the
/// unconsumed tail (`< 64` bytes).
fn compress_blocks<'a>(h: &mut [u32; 5], data: &'a [u8]) -> &'a [u8] {
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(h, block.try_into().expect("64-byte block"));
    }
    blocks.remainder()
}

/// Serialises the working state into the big-endian digest.
pub(crate) fn digest_from_words(h: &[u32; 5]) -> [u8; 20] {
    let mut out = [0u8; 20];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Streaming SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1State {
    h: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1State {
    fn default() -> Self {
        Sha1State {
            h: IV,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Sha1State {
    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.h, block);
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        data = compress_blocks(&mut self.h, data);
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn complete(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = 1 + ((55u64.wrapping_sub(self.len)) % 64) as usize;
        self.absorb(&pad[..pad_len]);
        self.absorb(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        digest_from_words(&self.h)
    }
}

/// The SHA-1 hash function (FIPS 180-4).
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashFunction, Sha1, hex};
///
/// assert_eq!(
///     hex::encode(Sha1::digest(b"abc").as_ref()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sha1;

impl HashFunction for Sha1 {
    type Digest = [u8; 20];
    type State = Sha1State;

    const DIGEST_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "SHA-1";

    fn new_state() -> Sha1State {
        Sha1State::default()
    }

    fn digest_from_bytes(bytes: &[u8]) -> Option<[u8; 20]> {
        bytes.try_into().ok()
    }

    fn update(state: &mut Sha1State, data: &[u8]) {
        state.absorb(data);
    }

    fn finalize(state: Sha1State) -> [u8; 20] {
        state.complete()
    }

    /// One-shot multi-block fast path: every full block is compressed
    /// straight out of `data` (no streaming-state staging copy) and the
    /// padded tail — at most two blocks — is assembled on the stack.
    fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = IV;
        let tail = compress_blocks(&mut h, data);
        let mut buf = [0u8; 128];
        buf[..tail.len()].copy_from_slice(tail);
        buf[tail.len()] = 0x80;
        let end = if tail.len() < 56 { 64 } else { 128 };
        let bit_len = (data.len() as u64).wrapping_mul(8);
        buf[end - 8..end].copy_from_slice(&bit_len.to_be_bytes());
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// Merkle inner-node fast path; see [`Sha256::digest_pair`](crate::Sha256)
    /// — identical layout with SHA-1's compression and IV.
    fn digest_pair(a: &[u8], b: &[u8]) -> [u8; 20] {
        let total = a.len() + b.len();
        if total > 119 {
            return crate::streaming_digest_pair::<Self>(a, b);
        }
        let mut buf = [0u8; 128];
        buf[..a.len()].copy_from_slice(a);
        buf[a.len()..total].copy_from_slice(b);
        buf[total] = 0x80;
        let end = if total < 56 { 64 } else { 128 };
        buf[end - 8..end].copy_from_slice(&((total as u64) * 8).to_be_bytes());
        let mut h = IV;
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// `g = H^k` fast path reusing one stack block across iterations (a
    /// 20-byte digest always re-hashes as a single padded block).
    fn digest_iterated(input: &[u8], iterations: u64) -> [u8; 20] {
        assert!(
            iterations > 0,
            "digest_iterated requires at least 1 iteration"
        );
        let mut digest = Self::digest(input);
        if iterations == 1 {
            return digest;
        }
        let mut block = [0u8; 64];
        block[20] = 0x80;
        block[56..].copy_from_slice(&160u64.to_be_bytes());
        for _ in 1..iterations {
            block[..20].copy_from_slice(&digest);
            let mut h = IV;
            compress(&mut h, &block);
            digest = digest_from_words(&h);
        }
        digest
    }

    /// Four-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_4(msgs: &[(&[u8], &[u8]); 4]) -> [[u8; 20]; 4] {
        crate::lanes::sha1_digest_lanes(msgs)
    }

    /// Eight-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_8(msgs: &[(&[u8], &[u8]); 8]) -> [[u8; 20]; 8] {
        crate::lanes::sha1_digest_lanes(msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn sha1_hex(input: &[u8]) -> String {
        hex::encode(Sha1::digest(input).as_ref())
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1_hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(777).collect();
        for chunk in [1usize, 7, 64, 100] {
            let mut st = Sha1::new_state();
            for piece in data.chunks(chunk) {
                Sha1::update(&mut st, piece);
            }
            assert_eq!(
                Sha1::finalize(st),
                Sha1::digest(&data),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 128] {
            let data = vec![0x5Au8; len];
            let mut st = Sha1::new_state();
            Sha1::update(&mut st, &data[..len / 3]);
            Sha1::update(&mut st, &data[len / 3..]);
            assert_eq!(Sha1::finalize(st), Sha1::digest(&data), "len {len}");
        }
    }

    #[test]
    fn multi_block_oneshot_matches_streaming_state() {
        for len in (0usize..=260).chain([1000, 4096, 65537]) {
            let data: Vec<u8> = (0..len).map(|i| (i * 29 % 253) as u8).collect();
            let mut st = Sha1::new_state();
            for piece in data.chunks(61) {
                Sha1::update(&mut st, piece);
            }
            assert_eq!(Sha1::finalize(st), Sha1::digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_pair_is_concatenation() {
        assert_eq!(
            Sha1::digest_pair(b"grid", b"work"),
            Sha1::digest(b"gridwork")
        );
    }

    #[test]
    fn digest_pair_fast_path_boundaries() {
        for (la, lb) in [(0, 0), (20, 20), (27, 28), (28, 28), (60, 59), (64, 64)] {
            let a = vec![0x11u8; la];
            let b = vec![0x22u8; lb];
            let concat: Vec<u8> = [a.as_slice(), b.as_slice()].concat();
            assert_eq!(
                Sha1::digest_pair(&a, &b),
                Sha1::digest(&concat),
                "la={la} lb={lb}"
            );
        }
    }

    #[test]
    fn digest_iterated_matches_loop() {
        for k in [1u64, 2, 9] {
            assert_eq!(
                Sha1::digest_iterated(b"seed", k),
                crate::streaming_digest_iterated::<Sha1>(b"seed", k),
                "k={k}"
            );
        }
    }
}
