//! Iterated ("hardened") one-way functions, Section 4.2 of the paper.
//!
//! The non-interactive CBS scheme derives sample indices from the Merkle
//! root via a one-way function `g`. To price out the *retry attack* — where
//! a cheater keeps re-rolling uncommitted leaves until the derived samples
//! all land in its honestly-computed subset — the paper makes `g` expensive
//! by defining `g ≡ (MD5)^k`: MD5 applied `k` times. [`IteratedHash`]
//! implements that construction for any [`HashFunction`], and [`HashChain`]
//! implements the `g^k(Φ(R))` chaining of Eq. (4) used by sample derivation.

use crate::HashFunction;

/// The hardened one-way function `g = H^k` from Section 4.2.
///
/// `k = 1` is the plain hash. Larger `k` multiplies the cost `C_g`
/// linearly, which is exactly the knob Eq. (5) of the paper tunes so that
/// `(1/r^m) · m · C_g ≥ n · C_f`.
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashFunction, IteratedHash, Md5};
///
/// let g1 = IteratedHash::<Md5>::new(1);
/// assert_eq!(g1.apply(b"seed").as_ref(), Md5::digest(b"seed").as_ref());
///
/// let g3 = IteratedHash::<Md5>::new(3);
/// let manual = Md5::digest(Md5::digest(Md5::digest(b"seed").as_ref()).as_ref());
/// assert_eq!(g3.apply(b"seed"), manual);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct IteratedHash<H> {
    iterations: u64,
    _marker: core::marker::PhantomData<H>,
}

// Manual impls: `IteratedHash` is a value regardless of whether `H` itself
// is `Copy` (derive would wrongly bound `H: Copy`).
impl<H> Clone for IteratedHash<H> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<H> Copy for IteratedHash<H> {}

impl<H: HashFunction> IteratedHash<H> {
    /// Creates `g = H^iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`: `H^0` would be the identity function,
    /// which is not one-way.
    #[must_use]
    pub fn new(iterations: u64) -> Self {
        assert!(iterations > 0, "IteratedHash requires at least 1 iteration");
        IteratedHash {
            iterations,
            _marker: core::marker::PhantomData,
        }
    }

    /// Number of underlying hash applications per [`apply`](Self::apply).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Applies `g` to `input`: hashes once, then re-hashes the digest
    /// `iterations - 1` more times.
    ///
    /// Routed through [`HashFunction::digest_iterated`], whose per-algorithm
    /// overrides run the re-hash loop in place on a reused stack block —
    /// the hot path of NI-CBS sample derivation.
    #[must_use]
    pub fn apply(&self, input: &[u8]) -> H::Digest {
        H::digest_iterated(input, self.iterations)
    }
}

/// The hash chain `g^k(seed)` of Eq. (4): `g^1 = g(seed)`,
/// `g^k = g(g^{k-1}(seed))`.
///
/// NI-CBS derives the `k`-th sample index from the `k`-th chain element.
/// The iterator yields `g^1(seed), g^2(seed), …`.
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashChain, HashFunction, IteratedHash, Sha256};
///
/// let g = IteratedHash::<Sha256>::new(1);
/// let mut chain = HashChain::new(g, b"root");
/// let first = chain.next().unwrap();
/// assert_eq!(first, Sha256::digest(b"root"));
/// let second = chain.next().unwrap();
/// assert_eq!(second, Sha256::digest(first.as_ref()));
/// ```
#[derive(Debug, Clone)]
pub struct HashChain<H: HashFunction> {
    g: IteratedHash<H>,
    state: ChainState<H::Digest>,
}

#[derive(Debug, Clone)]
enum ChainState<D> {
    /// Chain not started: holds the seed bytes.
    Seed(Vec<u8>),
    /// Chain in progress: holds `g^k(seed)` for the last emitted `k`.
    Running(D),
}

impl<H: HashFunction> HashChain<H> {
    /// Starts the chain `g^k(seed)` for `k = 1, 2, …`.
    #[must_use]
    pub fn new(g: IteratedHash<H>, seed: &[u8]) -> Self {
        HashChain {
            g,
            state: ChainState::Seed(seed.to_vec()),
        }
    }

    /// Total underlying hash invocations needed to emit `m` chain elements.
    ///
    /// This is the honest participant's (and supervisor's) sample-derivation
    /// cost `m · C_g`, measured in unit hashes.
    #[must_use]
    pub fn cost_of(g: &IteratedHash<H>, m: u64) -> u64 {
        m.saturating_mul(g.iterations())
    }
}

impl<H: HashFunction> Iterator for HashChain<H> {
    type Item = H::Digest;

    fn next(&mut self) -> Option<H::Digest> {
        let next = match &self.state {
            ChainState::Seed(seed) => self.g.apply(seed),
            ChainState::Running(digest) => self.g.apply(digest.as_ref()),
        };
        self.state = ChainState::Running(next);
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Md5, Sha256};

    #[test]
    fn one_iteration_is_plain_hash() {
        let g = IteratedHash::<Sha256>::new(1);
        assert_eq!(g.apply(b"data"), Sha256::digest(b"data"));
    }

    #[test]
    fn k_iterations_compose() {
        let g5 = IteratedHash::<Md5>::new(5);
        let mut manual = Md5::digest(b"x");
        for _ in 0..4 {
            manual = Md5::digest(manual.as_ref());
        }
        assert_eq!(g5.apply(b"x"), manual);
    }

    #[test]
    #[should_panic(expected = "at least 1 iteration")]
    fn zero_iterations_rejected() {
        let _ = IteratedHash::<Md5>::new(0);
    }

    #[test]
    fn chain_matches_eq4_recurrence() {
        // Eq. (4): g^1 = g(seed); g^k = g(g^{k-1}).
        let g = IteratedHash::<Sha256>::new(2);
        let chain: Vec<_> = HashChain::new(g, b"PhiR").take(4).collect();
        let g1 = g.apply(b"PhiR");
        let g2 = g.apply(g1.as_ref());
        let g3 = g.apply(g2.as_ref());
        let g4 = g.apply(g3.as_ref());
        assert_eq!(chain, vec![g1, g2, g3, g4]);
    }

    #[test]
    fn chain_elements_distinct() {
        let g = IteratedHash::<Sha256>::new(1);
        let elems: Vec<_> = HashChain::new(g, b"seed").take(64).collect();
        for i in 0..elems.len() {
            for j in (i + 1)..elems.len() {
                assert_ne!(elems[i], elems[j], "chain collided at {i},{j}");
            }
        }
    }

    #[test]
    fn chain_is_deterministic() {
        let g = IteratedHash::<Md5>::new(3);
        let a: Vec<_> = HashChain::new(g, b"s").take(8).collect();
        let b: Vec<_> = HashChain::new(g, b"s").take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let g = IteratedHash::<Md5>::new(1);
        let a: Vec<_> = HashChain::new(g, b"s1").take(4).collect();
        let b: Vec<_> = HashChain::new(g, b"s2").take(4).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn cost_model() {
        let g = IteratedHash::<Md5>::new(1000);
        assert_eq!(HashChain::cost_of(&g, 50), 50_000);
        let g1 = IteratedHash::<Md5>::new(1);
        assert_eq!(HashChain::cost_of(&g1, 50), 50);
    }
}
