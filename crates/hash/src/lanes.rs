//! Message-parallel multi-lane digest kernels ("SIMD within a register").
//!
//! The hash-bound paths of this reproduction — Merkle construction over
//! result leaves (Eq. 1 of the paper), ringer precomputation, iterated
//! `g = H^k` chains across independent seeds — hash many *small,
//! independent* messages. A single-message kernel leaves instruction-level
//! parallelism on the table: every 64-byte compression is one serial
//! dependency chain. Running 4 or 8 independent messages through a
//! *transposed* (struct-of-arrays) compression loop instead gives the
//! optimizer independent `u32` lanes to autovectorize — portable safe
//! Rust, no nightly intrinsics, `#![forbid(unsafe_code)]` preserved.
//!
//! Every message is presented as two segments `(a, b)` and hashed as the
//! concatenation `a ‖ b`: one shape serves both the Merkle inner-node
//! operation `hash(Φ(V_left) ‖ Φ(V_right))` and plain single messages
//! (`(msg, &[])`). Lanes are fully independent — per-lane lengths may
//! differ (shorter lanes finish in the transposed pass, longer lanes are
//! completed by the scalar kernel), and ragged batch sizes fall back to
//! scalar hashing for the tail — so every digest is bit-identical to the
//! scalar path by construction, which the replay/journal/wire-equivalence
//! contract depends on.

use crate::{md5, sha1, sha256, HashFunction, Md5, Sha1, Sha256};

/// How many independent messages the digest kernels run per dispatch.
///
/// This is an *execution* knob like `Parallelism`: it never changes a
/// digest, only how fast digests are produced. It is therefore excluded
/// from campaign-identity material (journal headers, params blobs).
///
/// # Examples
///
/// ```
/// use ugc_hash::LaneWidth;
///
/// assert_eq!(LaneWidth::default(), LaneWidth::X8);
/// assert_eq!(LaneWidth::X4.lanes(), 4);
/// assert_eq!(LaneWidth::parse("scalar"), Some(LaneWidth::Scalar));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LaneWidth {
    /// One message at a time — the reference scalar kernels.
    Scalar,
    /// Four messages per transposed compression pass.
    X4,
    /// Eight messages per transposed compression pass (the default).
    #[default]
    X8,
}

impl LaneWidth {
    /// All widths, for sweeps and equivalence tests.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::Scalar, LaneWidth::X4, LaneWidth::X8];

    /// Number of messages per kernel dispatch (1, 4 or 8).
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::Scalar => 1,
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
        }
    }

    /// The width's stable lowercase name (`"scalar"`, `"x4"`, `"x8"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LaneWidth::Scalar => "scalar",
            LaneWidth::X4 => "x4",
            LaneWidth::X8 => "x8",
        }
    }

    /// Parses a width name as produced by [`name`](Self::name).
    #[must_use]
    pub fn parse(s: &str) -> Option<LaneWidth> {
        match s {
            "scalar" => Some(LaneWidth::Scalar),
            "x4" => Some(LaneWidth::X4),
            "x8" => Some(LaneWidth::X8),
            _ => None,
        }
    }
}

impl core::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A hash function with transposed message-parallel kernels.
///
/// The single generic-width method lets each algorithm provide one
/// `const L` implementation that serves both the 4-wide and 8-wide
/// [`HashFunction::digest_lanes_4`]/[`HashFunction::digest_lanes_8`]
/// entry points. Implemented by [`Md5`], [`Sha1`] and [`Sha256`];
/// protocol code generic over plain [`HashFunction`] still gets lane
/// acceleration through the provided trait methods these overrides feed.
pub trait LaneKernel: HashFunction {
    /// Digests `L` independent two-segment messages (`a ‖ b` each) in one
    /// transposed compression pass. Bit-identical to `L` calls of
    /// [`HashFunction::digest_pair`].
    fn digest_lanes<const L: usize>(msgs: &[(&[u8], &[u8]); L]) -> [Self::Digest; L];
}

impl LaneKernel for Md5 {
    fn digest_lanes<const L: usize>(msgs: &[(&[u8], &[u8]); L]) -> [Self::Digest; L] {
        md5_digest_lanes(msgs)
    }
}

impl LaneKernel for Sha1 {
    fn digest_lanes<const L: usize>(msgs: &[(&[u8], &[u8]); L]) -> [Self::Digest; L] {
        sha1_digest_lanes(msgs)
    }
}

impl LaneKernel for Sha256 {
    fn digest_lanes<const L: usize>(msgs: &[(&[u8], &[u8]); L]) -> [Self::Digest; L] {
        sha256_digest_lanes(msgs)
    }
}

/// Number of 64-byte blocks in the padded message of `total` bytes:
/// content, the `0x80` marker, and the 8-byte bit length.
fn padded_blocks(total: usize) -> usize {
    (total + 72) / 64
}

/// Materialises block `block` (of `nb`) of the padded message `a ‖ b`
/// into `out`: content bytes, the `0x80` terminator, zero fill, and —
/// in the final block — the 8-byte bit length (little-endian for MD5,
/// big-endian for the SHA family).
fn fill_padded_block(
    a: &[u8],
    b: &[u8],
    total: usize,
    nb: usize,
    block: usize,
    le_length: bool,
    out: &mut [u8; 64],
) {
    let start = block * 64;
    let end = start + 64;
    out.fill(0);
    if start < a.len() {
        let take = (a.len() - start).min(64);
        out[..take].copy_from_slice(&a[start..start + take]);
    }
    if end > a.len() && start < total {
        let copy_start = start.max(a.len());
        let copy_end = end.min(total);
        if copy_end > copy_start {
            out[copy_start - start..copy_end - start]
                .copy_from_slice(&b[copy_start - a.len()..copy_end - a.len()]);
        }
    }
    if (start..end).contains(&total) {
        out[total - start] = 0x80;
    }
    if block + 1 == nb {
        let bits = 8 * total as u64;
        let len_bytes = if le_length {
            bits.to_le_bytes()
        } else {
            bits.to_be_bytes()
        };
        out[56..].copy_from_slice(&len_bytes);
    }
}

/// Loads the sixteen 32-bit message words of each lane's block into
/// transposed `[word][lane]` layout.
fn load_words<const L: usize, const W: usize>(blocks: &[[u8; 64]; L], le: bool) -> [[u32; L]; W] {
    let mut m = [[0u32; L]; W];
    for (w, row) in m.iter_mut().enumerate().take(16) {
        for (l, slot) in row.iter_mut().enumerate() {
            let bytes: [u8; 4] = blocks[l][4 * w..4 * w + 4]
                .try_into()
                .expect("4-byte message word");
            *slot = if le {
                u32::from_le_bytes(bytes)
            } else {
                u32::from_be_bytes(bytes)
            };
        }
    }
    m
}

/// One transposed MD5 compression pass: `L` independent lanes, state in
/// `[word][lane]` layout. Same round structure as the scalar
/// `md5::compress`, with every scalar `u32` widened to a `[u32; L]` row.
fn md5_compress_lanes<const L: usize>(h: &mut [[u32; L]; 4], blocks: &[[u8; 64]; L]) {
    let m: [[u32; L]; 16] = load_words(blocks, true);
    let mut a = h[0];
    let mut b = h[1];
    let mut c = h[2];
    let mut d = h[3];
    for i in 0..64 {
        let mut f = [0u32; L];
        let g = match i / 16 {
            0 => i,
            1 => (5 * i + 1) % 16,
            2 => (3 * i + 5) % 16,
            _ => (7 * i) % 16,
        };
        match i / 16 {
            0 => {
                for l in 0..L {
                    f[l] = (b[l] & c[l]) | (!b[l] & d[l]);
                }
            }
            1 => {
                for l in 0..L {
                    f[l] = (d[l] & b[l]) | (!d[l] & c[l]);
                }
            }
            2 => {
                for l in 0..L {
                    f[l] = b[l] ^ c[l] ^ d[l];
                }
            }
            _ => {
                for l in 0..L {
                    f[l] = c[l] ^ (b[l] | !d[l]);
                }
            }
        }
        let tmp = d;
        d = c;
        c = b;
        for l in 0..L {
            b[l] = b[l].wrapping_add(
                a[l].wrapping_add(f[l])
                    .wrapping_add(md5::K[i])
                    .wrapping_add(m[g][l])
                    .rotate_left(md5::S[i]),
            );
        }
        a = tmp;
    }
    for l in 0..L {
        h[0][l] = h[0][l].wrapping_add(a[l]);
        h[1][l] = h[1][l].wrapping_add(b[l]);
        h[2][l] = h[2][l].wrapping_add(c[l]);
        h[3][l] = h[3][l].wrapping_add(d[l]);
    }
}

/// One transposed SHA-1 compression pass (see [`md5_compress_lanes`]).
fn sha1_compress_lanes<const L: usize>(h: &mut [[u32; L]; 5], blocks: &[[u8; 64]; L]) {
    let mut w: [[u32; L]; 80] = load_words(blocks, false);
    for i in 16..80 {
        let (prev, rest) = w.split_at_mut(i);
        for (l, slot) in rest[0].iter_mut().enumerate() {
            *slot = (prev[i - 3][l] ^ prev[i - 8][l] ^ prev[i - 14][l] ^ prev[i - 16][l])
                .rotate_left(1);
        }
    }
    let mut a = h[0];
    let mut b = h[1];
    let mut c = h[2];
    let mut d = h[3];
    let mut e = h[4];
    for (i, wi) in w.iter().enumerate() {
        let mut f = [0u32; L];
        let k: u32 = match i / 20 {
            0 => 0x5a82_7999,
            1 => 0x6ed9_eba1,
            2 => 0x8f1b_bcdc,
            _ => 0xca62_c1d6,
        };
        match i / 20 {
            0 => {
                for l in 0..L {
                    f[l] = (b[l] & c[l]) | (!b[l] & d[l]);
                }
            }
            2 => {
                for l in 0..L {
                    f[l] = (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]);
                }
            }
            _ => {
                for l in 0..L {
                    f[l] = b[l] ^ c[l] ^ d[l];
                }
            }
        }
        let mut tmp = [0u32; L];
        for l in 0..L {
            tmp[l] = a[l]
                .rotate_left(5)
                .wrapping_add(f[l])
                .wrapping_add(e[l])
                .wrapping_add(k)
                .wrapping_add(wi[l]);
        }
        e = d;
        d = c;
        for l in 0..L {
            c[l] = b[l].rotate_left(30);
        }
        b = a;
        a = tmp;
    }
    for l in 0..L {
        h[0][l] = h[0][l].wrapping_add(a[l]);
        h[1][l] = h[1][l].wrapping_add(b[l]);
        h[2][l] = h[2][l].wrapping_add(c[l]);
        h[3][l] = h[3][l].wrapping_add(d[l]);
        h[4][l] = h[4][l].wrapping_add(e[l]);
    }
}

/// One transposed SHA-256 compression pass (see [`md5_compress_lanes`]).
fn sha256_compress_lanes<const L: usize>(h: &mut [[u32; L]; 8], blocks: &[[u8; 64]; L]) {
    let mut w: [[u32; L]; 64] = load_words(blocks, false);
    for i in 16..64 {
        let (prev, rest) = w.split_at_mut(i);
        for (l, slot) in rest[0].iter_mut().enumerate() {
            let s0 = prev[i - 15][l].rotate_right(7)
                ^ prev[i - 15][l].rotate_right(18)
                ^ (prev[i - 15][l] >> 3);
            let s1 = prev[i - 2][l].rotate_right(17)
                ^ prev[i - 2][l].rotate_right(19)
                ^ (prev[i - 2][l] >> 10);
            *slot = prev[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(prev[i - 7][l])
                .wrapping_add(s1);
        }
    }
    let mut a = h[0];
    let mut b = h[1];
    let mut c = h[2];
    let mut d = h[3];
    let mut e = h[4];
    let mut f = h[5];
    let mut g = h[6];
    let mut hh = h[7];
    for (i, wi) in w.iter().enumerate() {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = hh[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(sha256::K[i])
                .wrapping_add(wi[l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = s0.wrapping_add(maj);
        }
        hh = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }
    let rows = [a, b, c, d, e, f, g, hh];
    for (row, add) in h.iter_mut().zip(rows.iter()) {
        for l in 0..L {
            row[l] = row[l].wrapping_add(add[l]);
        }
    }
}

/// Generates the per-algorithm lane digest driver: transposed compression
/// over the blocks every lane still needs, then a scalar finish for lanes
/// whose (longer) messages have blocks remaining — so mixed per-lane
/// lengths stay bit-identical to the scalar kernels.
macro_rules! lane_digest_driver {
    (
        $(#[$doc:meta])*
        $fn_name:ident, $alg:ident, $state_words:expr, $digest_len:expr,
        $compress_lanes:ident, $le:expr
    ) => {
        $(#[$doc])*
        pub(crate) fn $fn_name<const L: usize>(
            msgs: &[(&[u8], &[u8]); L],
        ) -> [[u8; $digest_len]; L] {
            let mut totals = [0usize; L];
            let mut nbs = [0usize; L];
            for l in 0..L {
                totals[l] = msgs[l].0.len() + msgs[l].1.len();
                nbs[l] = padded_blocks(totals[l]);
            }
            let common = nbs.iter().copied().min().unwrap_or(0);
            let mut h = [[0u32; L]; $state_words];
            for (row, iv) in h.iter_mut().zip($alg::IV.iter()) {
                row.fill(*iv);
            }
            let mut blocks = [[0u8; 64]; L];
            for b in 0..common {
                for l in 0..L {
                    fill_padded_block(msgs[l].0, msgs[l].1, totals[l], nbs[l], b, $le, &mut blocks[l]);
                }
                $compress_lanes(&mut h, &blocks);
            }
            let mut out = [[0u8; $digest_len]; L];
            for l in 0..L {
                let mut state = [0u32; $state_words];
                for (word, row) in state.iter_mut().zip(h.iter()) {
                    *word = row[l];
                }
                for b in common..nbs[l] {
                    fill_padded_block(msgs[l].0, msgs[l].1, totals[l], nbs[l], b, $le, &mut blocks[l]);
                    $alg::compress(&mut state, &blocks[l]);
                }
                out[l] = $alg::digest_from_words(&state);
            }
            out
        }
    };
}

lane_digest_driver!(
    /// `L`-lane MD5 of `L` two-segment messages.
    md5_digest_lanes, md5, 4, 16, md5_compress_lanes, true
);
lane_digest_driver!(
    /// `L`-lane SHA-1 of `L` two-segment messages.
    sha1_digest_lanes, sha1, 5, 20, sha1_compress_lanes, false
);
lane_digest_driver!(
    /// `L`-lane SHA-256 of `L` two-segment messages.
    sha256_digest_lanes, sha256, 8, 32, sha256_compress_lanes, false
);

/// Digests a batch of two-segment messages (`a ‖ b` each) at the given
/// lane width: full groups of 8 (then 4) go through the transposed
/// kernels, the ragged tail through the scalar `digest_pair` fast path.
/// Bit-identical to scalar hashing at every width.
///
/// # Examples
///
/// ```
/// use ugc_hash::{digest_pairs, HashFunction, LaneWidth, Sha256};
///
/// let pairs: Vec<(&[u8], &[u8])> = (0..11).map(|_| (b"a".as_ref(), b"b".as_ref())).collect();
/// let lanes = digest_pairs::<Sha256>(&pairs, LaneWidth::X8);
/// assert!(lanes.iter().all(|d| *d == Sha256::digest_pair(b"a", b"b")));
/// ```
#[must_use]
pub fn digest_pairs<H: HashFunction>(pairs: &[(&[u8], &[u8])], width: LaneWidth) -> Vec<H::Digest> {
    let mut out = Vec::with_capacity(pairs.len());
    let mut rest = pairs;
    if width.lanes() >= 8 {
        while rest.len() >= 8 {
            let msgs: [(&[u8], &[u8]); 8] = rest[..8].try_into().expect("8 message pairs");
            out.extend_from_slice(&H::digest_lanes_8(&msgs));
            rest = &rest[8..];
        }
    }
    if width.lanes() >= 4 {
        while rest.len() >= 4 {
            let msgs: [(&[u8], &[u8]); 4] = rest[..4].try_into().expect("4 message pairs");
            out.extend_from_slice(&H::digest_lanes_4(&msgs));
            rest = &rest[4..];
        }
    }
    for &(a, b) in rest {
        out.push(H::digest_pair(a, b));
    }
    out
}

/// Digests a batch of single-segment messages at the given lane width;
/// see [`digest_pairs`].
#[must_use]
pub fn digest_batch<H: HashFunction>(msgs: &[&[u8]], width: LaneWidth) -> Vec<H::Digest> {
    let pairs: Vec<(&[u8], &[u8])> = msgs.iter().map(|m| (*m, &[][..])).collect();
    digest_pairs::<H>(&pairs, width)
}

/// Applies `H` `iterations` times to each seed independently
/// (`H(H(…H(seed)…))`), stepping all chains in lockstep through the lane
/// kernels — the message-parallel form of
/// [`HashFunction::digest_iterated`] across independent seeds.
///
/// # Panics
///
/// Panics if `iterations == 0` (`H^0` would be the identity).
#[must_use]
pub fn digest_iterated_batch<H: HashFunction>(
    seeds: &[&[u8]],
    iterations: u64,
    width: LaneWidth,
) -> Vec<H::Digest> {
    assert!(
        iterations > 0,
        "digest_iterated requires at least 1 iteration"
    );
    let mut digests = digest_batch::<H>(seeds, width);
    for _ in 1..iterations {
        let next = {
            let refs: Vec<&[u8]> = digests.iter().map(|d| d.as_ref()).collect();
            digest_batch::<H>(&refs, width)
        };
        digests = next;
    }
    digests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(len: usize, tag: u8) -> Vec<u8> {
        (0..len)
            .map(|i| u8::try_from(i % 251).expect("residue < 251") ^ tag)
            .collect()
    }

    #[test]
    fn lane_width_knob() {
        assert_eq!(LaneWidth::default(), LaneWidth::X8);
        assert_eq!(LaneWidth::Scalar.lanes(), 1);
        assert_eq!(LaneWidth::X4.lanes(), 4);
        assert_eq!(LaneWidth::X8.lanes(), 8);
        for w in LaneWidth::ALL {
            assert_eq!(LaneWidth::parse(w.name()), Some(w));
            assert_eq!(w.to_string(), w.name());
        }
        assert_eq!(LaneWidth::parse("x16"), None);
    }

    #[test]
    fn padded_block_counts() {
        for (total, nb) in [
            (0usize, 1usize),
            (1, 1),
            (55, 1),
            (56, 2),
            (63, 2),
            (64, 2),
            (119, 2),
            (120, 3),
            (128, 3),
        ] {
            assert_eq!(padded_blocks(total), nb, "total={total}");
        }
    }

    #[test]
    fn uniform_lanes_match_scalar() {
        let a = message(40, 1);
        let b = message(40, 2);
        let msgs: [(&[u8], &[u8]); 4] = [(&a, &b); 4];
        assert_eq!(Md5::digest_lanes(&msgs), [Md5::digest_pair(&a, &b); 4]);
        assert_eq!(Sha1::digest_lanes(&msgs), [Sha1::digest_pair(&a, &b); 4]);
        assert_eq!(
            Sha256::digest_lanes(&msgs),
            [Sha256::digest_pair(&a, &b); 4]
        );
    }

    #[test]
    fn mixed_lengths_match_scalar() {
        // Lanes that span 1, 2 and 3 padded blocks in the same dispatch.
        let lens = [0usize, 55, 56, 63, 64, 65, 119, 120];
        let payloads: Vec<Vec<u8>> = lens.iter().map(|&n| message(n, 7)).collect();
        let msgs: [(&[u8], &[u8]); 8] = core::array::from_fn(|l| (payloads[l].as_slice(), &[][..]));
        let lanes = Sha256::digest_lanes(&msgs);
        for (l, payload) in payloads.iter().enumerate() {
            assert_eq!(lanes[l], Sha256::digest(payload), "lane {l}");
        }
    }

    #[test]
    fn ragged_batches_match_scalar() {
        for n in 1..=9usize {
            let payloads: Vec<Vec<u8>> = (0..n).map(|i| message(8 + i, 3)).collect();
            let pairs: Vec<(&[u8], &[u8])> =
                payloads.iter().map(|p| (p.as_slice(), &[][..])).collect();
            for width in LaneWidth::ALL {
                let got = digest_pairs::<Md5>(&pairs, width);
                let want: Vec<_> = payloads.iter().map(|p| Md5::digest(p)).collect();
                assert_eq!(got, want, "n={n} width={width}");
            }
        }
    }

    #[test]
    fn iterated_batch_matches_scalar_chains() {
        let seeds: Vec<Vec<u8>> = (0..6).map(|i| message(16, i)).collect();
        let refs: Vec<&[u8]> = seeds.iter().map(|s| s.as_slice()).collect();
        for width in LaneWidth::ALL {
            let got = digest_iterated_batch::<Sha1>(&refs, 5, width);
            let want: Vec<_> = seeds.iter().map(|s| Sha1::digest_iterated(s, 5)).collect();
            assert_eq!(got, want, "width={width}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 iteration")]
    fn iterated_batch_rejects_zero_iterations() {
        let _ = digest_iterated_batch::<Md5>(&[b"x"], 0, LaneWidth::X8);
    }
}
