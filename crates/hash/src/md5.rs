//! MD5 message digest (RFC 1321), implemented from the specification.
//!
//! MD5 is cryptographically broken for collision resistance, but it is the
//! hash the paper names for both the Merkle tree and the hardened sample
//! generator `g = (MD5)^k`, and its low cost makes it the right choice for
//! cost-model experiments. Do not use it for new security designs.

use crate::HashFunction;

/// RFC 1321 per-round left-rotation amounts (shared with the transposed
/// lane kernels in `crate::lanes`).
pub(crate) const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// RFC 1321 sine-derived round constants.
#[rustfmt::skip]
pub(crate) const K: [u32; 64] = [
    0xd76a_a478, 0xe8c7_b756, 0x2420_70db, 0xc1bd_ceee,
    0xf57c_0faf, 0x4787_c62a, 0xa830_4613, 0xfd46_9501,
    0x6980_98d8, 0x8b44_f7af, 0xffff_5bb1, 0x895c_d7be,
    0x6b90_1122, 0xfd98_7193, 0xa679_438e, 0x49b4_0821,
    0xf61e_2562, 0xc040_b340, 0x265e_5a51, 0xe9b6_c7aa,
    0xd62f_105d, 0x0244_1453, 0xd8a1_e681, 0xe7d3_fbc8,
    0x21e1_cde6, 0xc337_07d6, 0xf4d5_0d87, 0x455a_14ed,
    0xa9e3_e905, 0xfcef_a3f8, 0x676f_02d9, 0x8d2a_4c8a,
    0xfffa_3942, 0x8771_f681, 0x6d9d_6122, 0xfde5_380c,
    0xa4be_ea44, 0x4bde_cfa9, 0xf6bb_4b60, 0xbebf_bc70,
    0x289b_7ec6, 0xeaa1_27fa, 0xd4ef_3085, 0x0488_1d05,
    0xd9d4_d039, 0xe6db_99e5, 0x1fa2_7cf8, 0xc4ac_5665,
    0xf429_2244, 0x432a_ff97, 0xab94_23a7, 0xfc93_a039,
    0x655b_59c3, 0x8f0c_cc92, 0xffef_f47d, 0x8584_5dd1,
    0x6fa8_7e4f, 0xfe2c_e6e0, 0xa301_4314, 0x4e08_11a1,
    0xf753_7e82, 0xbd3a_f235, 0x2ad7_d2bb, 0xeb86_d391,
];

/// RFC 1321 initial state.
pub(crate) const IV: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// One MD5 compression round over a single 64-byte block.
pub(crate) fn compress(h: &mut [u32; 4], block: &[u8; 64]) {
    let mut m = [0u32; 16];
    for (i, word) in m.iter_mut().enumerate() {
        *word = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    let [mut a, mut b, mut c, mut d] = *h;
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
}

/// Multi-block compression kernel: feeds every full 64-byte block of
/// `data` to [`compress`] directly from the input slice — no per-block
/// staging copy, one dispatch for the whole run — and returns the
/// unconsumed tail (`< 64` bytes).
fn compress_blocks<'a>(h: &mut [u32; 4], data: &'a [u8]) -> &'a [u8] {
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(h, block.try_into().expect("64-byte block"));
    }
    blocks.remainder()
}

/// Serialises the working state into the little-endian digest.
pub(crate) fn digest_from_words(h: &[u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Streaming MD5 state.
#[derive(Debug, Clone)]
pub struct Md5State {
    h: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5State {
    fn default() -> Self {
        Md5State {
            h: IV,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Md5State {
    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.h, block);
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        data = compress_blocks(&mut self.h, data);
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn complete(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until length ≡ 56 (mod 64), then
        // the 64-bit little-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = 1 + ((55u64.wrapping_sub(self.len)) % 64) as usize;
        self.absorb(&pad[..pad_len]);
        self.absorb(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        digest_from_words(&self.h)
    }
}

/// The MD5 hash function (RFC 1321).
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashFunction, Md5, hex};
///
/// assert_eq!(
///     hex::encode(Md5::digest(b"abc").as_ref()),
///     "900150983cd24fb0d6963f7d28e17f72",
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Md5;

impl HashFunction for Md5 {
    type Digest = [u8; 16];
    type State = Md5State;

    const DIGEST_LEN: usize = 16;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "MD5";

    fn new_state() -> Md5State {
        Md5State::default()
    }

    fn digest_from_bytes(bytes: &[u8]) -> Option<[u8; 16]> {
        bytes.try_into().ok()
    }

    fn update(state: &mut Md5State, data: &[u8]) {
        state.absorb(data);
    }

    fn finalize(state: Md5State) -> [u8; 16] {
        state.complete()
    }

    /// One-shot multi-block fast path: every full block is compressed
    /// straight out of `data` (no streaming-state staging copy) and the
    /// padded tail — at most two blocks — is assembled on the stack.
    fn digest(data: &[u8]) -> [u8; 16] {
        let mut h = IV;
        let tail = compress_blocks(&mut h, data);
        let mut buf = [0u8; 128];
        buf[..tail.len()].copy_from_slice(tail);
        buf[tail.len()] = 0x80;
        let end = if tail.len() < 56 { 64 } else { 128 };
        let bit_len = (data.len() as u64).wrapping_mul(8);
        buf[end - 8..end].copy_from_slice(&bit_len.to_le_bytes());
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// Merkle inner-node fast path; see [`Sha256::digest_pair`](crate::Sha256)
    /// — identical layout with MD5's compression, IV and little-endian
    /// length.
    fn digest_pair(a: &[u8], b: &[u8]) -> [u8; 16] {
        let total = a.len() + b.len();
        if total > 119 {
            return crate::streaming_digest_pair::<Self>(a, b);
        }
        let mut buf = [0u8; 128];
        buf[..a.len()].copy_from_slice(a);
        buf[a.len()..total].copy_from_slice(b);
        buf[total] = 0x80;
        let end = if total < 56 { 64 } else { 128 };
        buf[end - 8..end].copy_from_slice(&((total as u64) * 8).to_le_bytes());
        let mut h = IV;
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// `g = (MD5)^k` fast path — the paper's hardened sample generator —
    /// reusing one stack block across iterations (a 16-byte digest always
    /// re-hashes as a single padded block).
    fn digest_iterated(input: &[u8], iterations: u64) -> [u8; 16] {
        assert!(
            iterations > 0,
            "digest_iterated requires at least 1 iteration"
        );
        let mut digest = Self::digest(input);
        if iterations == 1 {
            return digest;
        }
        let mut block = [0u8; 64];
        block[16] = 0x80;
        block[56..].copy_from_slice(&128u64.to_le_bytes());
        for _ in 1..iterations {
            block[..16].copy_from_slice(&digest);
            let mut h = IV;
            compress(&mut h, &block);
            digest = digest_from_words(&h);
        }
        digest
    }

    /// Four-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_4(msgs: &[(&[u8], &[u8]); 4]) -> [[u8; 16]; 4] {
        crate::lanes::md5_digest_lanes(msgs)
    }

    /// Eight-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_8(msgs: &[(&[u8], &[u8]); 8]) -> [[u8; 16]; 8] {
        crate::lanes::md5_digest_lanes(msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn md5_hex(input: &[u8]) -> String {
        hex::encode(Md5::digest(input).as_ref())
    }

    /// The full RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            md5_hex(b"message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            md5_hex(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            md5_hex(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            md5_hex(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for chunk in [1usize, 3, 63, 64, 65, 127, 1000] {
            let mut st = Md5::new_state();
            for piece in data.chunks(chunk) {
                Md5::update(&mut st, piece);
            }
            assert_eq!(Md5::finalize(st), Md5::digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths straddling the 56-byte padding boundary and block edges.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 128] {
            let data = vec![0xABu8; len];
            let mut st = Md5::new_state();
            Md5::update(&mut st, &data[..len / 2]);
            Md5::update(&mut st, &data[len / 2..]);
            assert_eq!(Md5::finalize(st), Md5::digest(&data), "len {len}");
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(md5_hex(&data), "7707d6ae4e027c70eea2a935c2296f21");
    }

    #[test]
    fn multi_block_oneshot_matches_streaming_state() {
        for len in (0usize..=260).chain([1000, 4096, 65537]) {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 249) as u8).collect();
            let mut st = Md5::new_state();
            for piece in data.chunks(61) {
                Md5::update(&mut st, piece);
            }
            assert_eq!(Md5::finalize(st), Md5::digest(&data), "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Md5::digest(b"x"), Md5::digest(b"y"));
        assert_ne!(Md5::digest(b"ab"), Md5::digest(b"ba"));
    }

    #[test]
    fn digest_pair_is_concatenation() {
        assert_eq!(Md5::digest_pair(b"foo", b"bar"), Md5::digest(b"foobar"));
    }

    #[test]
    fn digest_pair_fast_path_boundaries() {
        for (la, lb) in [(0, 0), (16, 16), (27, 28), (28, 28), (60, 59), (64, 64)] {
            let a = vec![0x7Eu8; la];
            let b = vec![0xE7u8; lb];
            let concat: Vec<u8> = [a.as_slice(), b.as_slice()].concat();
            assert_eq!(
                Md5::digest_pair(&a, &b),
                Md5::digest(&concat),
                "la={la} lb={lb}"
            );
        }
    }

    #[test]
    fn digest_iterated_matches_loop() {
        for k in [1u64, 2, 100] {
            assert_eq!(
                Md5::digest_iterated(b"seed", k),
                crate::streaming_digest_iterated::<Md5>(b"seed", k),
                "k={k}"
            );
        }
    }
}
