//! Dependency-free hexadecimal encoding and decoding.
//!
//! Used for test vectors, digest display and experiment reports.
//!
//! # Examples
//!
//! ```
//! let bytes = ugc_hash::hex::decode("deadbeef")?;
//! assert_eq!(bytes, vec![0xde, 0xad, 0xbe, 0xef]);
//! assert_eq!(ugc_hash::hex::encode(&bytes), "deadbeef");
//! # Ok::<(), ugc_hash::hex::DecodeHexError>(())
//! ```

use core::fmt;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as lowercase hex.
#[must_use]
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[usize::from(b >> 4)] as char);
        out.push(ALPHABET[usize::from(b & 0x0f)] as char);
    }
    out
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length is odd, so it cannot encode whole bytes.
    OddLength {
        /// Length of the offending input.
        len: usize,
    },
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidChar {
        /// The offending character.
        ch: char,
        /// Byte offset of the character.
        index: usize,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeHexError::OddLength { len } => {
                write!(f, "hex string has odd length {len}")
            }
            DecodeHexError::InvalidChar { ch, index } => {
                write!(f, "invalid hex character {ch:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

fn nibble(ch: u8, index: usize) -> Result<u8, DecodeHexError> {
    match ch {
        b'0'..=b'9' => Ok(ch - b'0'),
        b'a'..=b'f' => Ok(ch - b'a' + 10),
        b'A'..=b'F' => Ok(ch - b'A' + 10),
        other => Err(DecodeHexError::InvalidChar {
            ch: other as char,
            index,
        }),
    }
}

/// Decodes a hex string (either case) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError::OddLength`] if the input length is odd and
/// [`DecodeHexError::InvalidChar`] on the first non-hex character.
pub fn decode(hex: &str) -> Result<Vec<u8>, DecodeHexError> {
    let raw = hex.as_bytes();
    if raw.len() % 2 != 0 {
        return Err(DecodeHexError::OddLength { len: raw.len() });
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for (i, pair) in raw.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0], 2 * i)?;
        let lo = nibble(pair[1], 2 * i + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0x01, 0xfe, 0xff]), "0001feff");
    }

    #[test]
    fn decode_known() {
        assert_eq!(decode("0001feff").unwrap(), vec![0x00, 0x01, 0xfe, 0xff]);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(decode("aBcD").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn decode_odd_length_fails() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength { len: 3 }));
    }

    #[test]
    fn decode_invalid_char_fails_with_position() {
        assert_eq!(
            decode("ab0g"),
            Err(DecodeHexError::InvalidChar { ch: 'g', index: 3 })
        );
    }

    #[test]
    fn roundtrip_all_bytes() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn error_display() {
        let err = DecodeHexError::InvalidChar { ch: 'z', index: 7 };
        assert_eq!(err.to_string(), "invalid hex character 'z' at index 7");
        let err = DecodeHexError::OddLength { len: 5 };
        assert_eq!(err.to_string(), "hex string has odd length 5");
    }
}
