//! From-scratch cryptographic hash primitives for uncheatable grid computing.
//!
//! The commitment-based sampling (CBS) scheme of Du et al. (ICDCS 2004) builds
//! Merkle trees over computation results using "a one-way hash function such as
//! MD5 or SHA" (Eq. 1 of the paper), and its non-interactive variant derives
//! sample indices from an *iterated* one-way function `g = H^k` whose cost can
//! be tuned (Section 4.2). This crate provides exactly those primitives,
//! implemented from the specifications (RFC 1321, FIPS 180-4) with no external
//! dependencies:
//!
//! * [`Md5`], [`Sha1`], [`Sha256`] — streaming hashers validated against the
//!   official test vectors.
//! * [`HashFunction`] — the compile-time interface the Merkle tree and the
//!   CBS protocol are generic over.
//! * [`Algorithm`] / [`DigestBytes`] — a runtime-selectable facade used by
//!   experiment harnesses that sweep over hash functions.
//! * [`IteratedHash`] and [`HashChain`] — the hardened `g = H^k` construction
//!   from Section 4.2 of the paper.
//! * [`hex`] — dependency-free hex encoding/decoding for vectors and display.
//!
//! # Examples
//!
//! ```
//! use ugc_hash::{HashFunction, Sha256, hex};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex::encode(digest.as_ref()),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
mod iterated;
mod lanes;
mod md5;
mod sha1;
mod sha256;

pub use iterated::{HashChain, IteratedHash};
pub use lanes::{digest_batch, digest_iterated_batch, digest_pairs, LaneKernel, LaneWidth};
pub use md5::Md5;
pub use sha1::Sha1;
pub use sha256::Sha256;

use core::fmt;

/// A cryptographic hash function usable for Merkle commitments.
///
/// Implementations are *stateless at the type level*: hashing is exposed as
/// associated functions so that protocol code can be generic over the
/// algorithm without carrying values around. Streaming is available through
/// the paired [`HashFunction::State`] type.
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashFunction, Md5};
///
/// // One-shot.
/// let d1 = Md5::digest(b"hello world");
/// // Streaming, in two chunks.
/// let mut st = Md5::new_state();
/// Md5::update(&mut st, b"hello ");
/// Md5::update(&mut st, b"world");
/// let d2 = Md5::finalize(st);
/// assert_eq!(d1, d2);
/// ```
pub trait HashFunction: Clone + Send + Sync + 'static {
    /// Fixed-size digest produced by this algorithm.
    type Digest: Copy
        + Clone
        + Eq
        + PartialEq
        + Ord
        + PartialOrd
        + core::hash::Hash
        + AsRef<[u8]>
        + fmt::Debug
        + Send
        + Sync
        + 'static;

    /// Streaming hasher state.
    type State: Clone + Send + Sync;

    /// Digest length in bytes.
    const DIGEST_LEN: usize;

    /// Internal block length in bytes (64 for MD5/SHA-1/SHA-256).
    const BLOCK_LEN: usize;

    /// Human-readable algorithm name (e.g. `"SHA-256"`).
    const NAME: &'static str;

    /// Creates a fresh streaming state.
    fn new_state() -> Self::State;

    /// Reconstructs a digest from raw bytes (e.g. received off the wire).
    ///
    /// Returns `None` unless `bytes` is exactly [`DIGEST_LEN`](Self::DIGEST_LEN)
    /// bytes long.
    fn digest_from_bytes(bytes: &[u8]) -> Option<Self::Digest>;

    /// Absorbs `data` into the streaming state.
    fn update(state: &mut Self::State, data: &[u8]);

    /// Consumes the state and produces the digest.
    fn finalize(state: Self::State) -> Self::Digest;

    /// Hashes a single byte string.
    ///
    /// [`Md5`], [`Sha1`] and [`Sha256`] override the default streaming
    /// implementation with a multi-block kernel that compresses every
    /// full block straight out of `data` (no staging copy) and pads the
    /// tail on the stack.
    fn digest(data: &[u8]) -> Self::Digest {
        let mut st = Self::new_state();
        Self::update(&mut st, data);
        Self::finalize(st)
    }

    /// Hashes the concatenation `a || b` without materialising it.
    ///
    /// This is the Merkle-tree inner-node operation
    /// `Φ(V) = hash(Φ(V_left) || Φ(V_right))` from Eq. (1) of the paper.
    /// [`Md5`], [`Sha1`] and [`Sha256`] override the default streaming
    /// implementation with a zero-copy fast path that assembles the padded
    /// final block(s) on the stack — inner nodes hash exactly two digests,
    /// so the padding layout is known up front and no streaming-state
    /// buffer shuffling (or heap allocation) is needed.
    fn digest_pair(a: &[u8], b: &[u8]) -> Self::Digest {
        streaming_digest_pair::<Self>(a, b)
    }

    /// Applies the hash `iterations` times: `H(H(…H(input)…))`.
    ///
    /// This is the inner loop of the hardened sample generator
    /// `g = H^k` (Section 4.2 of the paper). [`Md5`], [`Sha1`] and
    /// [`Sha256`] override the default with an in-place loop that reuses
    /// one stack block across iterations: a digest always re-hashes as a
    /// single padded block whose padding bytes never change.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` (`H^0` would be the identity).
    fn digest_iterated(input: &[u8], iterations: u64) -> Self::Digest {
        streaming_digest_iterated::<Self>(input, iterations)
    }

    /// Digests four independent two-segment messages (`a ‖ b` each) in
    /// one dispatch.
    ///
    /// [`Md5`], [`Sha1`] and [`Sha256`] override the default scalar loop
    /// with transposed message-parallel kernels (see [`LaneKernel`]);
    /// results are bit-identical to four [`digest_pair`](Self::digest_pair)
    /// calls at any width.
    fn digest_lanes_4(msgs: &[(&[u8], &[u8]); 4]) -> [Self::Digest; 4] {
        core::array::from_fn(|l| Self::digest_pair(msgs[l].0, msgs[l].1))
    }

    /// Digests eight independent two-segment messages in one dispatch;
    /// see [`digest_lanes_4`](Self::digest_lanes_4).
    fn digest_lanes_8(msgs: &[(&[u8], &[u8]); 8]) -> [Self::Digest; 8] {
        core::array::from_fn(|l| Self::digest_pair(msgs[l].0, msgs[l].1))
    }

    /// Converts a digest into a `u64` by reading its first 8 bytes
    /// little-endian.
    ///
    /// The NI-CBS sample derivation (Eq. 4 of the paper) interprets hash
    /// outputs as integers modulo the domain size; this is the canonical
    /// integer interpretation used throughout this reproduction.
    fn digest_to_u64(digest: &Self::Digest) -> u64 {
        let bytes = digest.as_ref();
        let mut buf = [0u8; 8];
        let take = bytes.len().min(8);
        buf[..take].copy_from_slice(&bytes[..take]);
        u64::from_le_bytes(buf)
    }
}

/// Reference implementation of [`HashFunction::digest_pair`] through the
/// generic streaming state.
///
/// The concrete algorithms override `digest_pair` with stack-assembled
/// fast paths; this function keeps the unspecialised path callable so
/// tests and benchmarks can compare the two.
///
/// # Examples
///
/// ```
/// use ugc_hash::{streaming_digest_pair, HashFunction, Sha256};
///
/// assert_eq!(
///     streaming_digest_pair::<Sha256>(b"ab", b"c"),
///     Sha256::digest_pair(b"ab", b"c"),
/// );
/// ```
pub fn streaming_digest_pair<H: HashFunction>(a: &[u8], b: &[u8]) -> H::Digest {
    let mut st = H::new_state();
    H::update(&mut st, a);
    H::update(&mut st, b);
    H::finalize(st)
}

/// Reference implementation of [`HashFunction::digest_iterated`] as a
/// plain re-digest loop, kept callable for tests and benchmarks (see
/// [`streaming_digest_pair`]).
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn streaming_digest_iterated<H: HashFunction>(input: &[u8], iterations: u64) -> H::Digest {
    assert!(
        iterations > 0,
        "digest_iterated requires at least 1 iteration"
    );
    let mut digest = H::digest(input);
    for _ in 1..iterations {
        digest = H::digest(digest.as_ref());
    }
    digest
}

/// Runtime-selectable hash algorithm.
///
/// Protocol code is generic over [`HashFunction`]; experiment harnesses that
/// sweep over algorithms use this enum instead.
///
/// # Examples
///
/// ```
/// use ugc_hash::Algorithm;
///
/// let d = Algorithm::Md5.digest(b"abc");
/// assert_eq!(d.len(), 16);
/// assert_eq!(Algorithm::Sha256.digest_len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Algorithm {
    /// MD5 (RFC 1321), 128-bit digest. The paper's running example.
    Md5,
    /// SHA-1 (FIPS 180-4), 160-bit digest.
    Sha1,
    /// SHA-256 (FIPS 180-4), 256-bit digest. The modern default.
    Sha256,
}

impl Algorithm {
    /// All supported algorithms, for sweeps.
    pub const ALL: [Algorithm; 3] = [Algorithm::Md5, Algorithm::Sha1, Algorithm::Sha256];

    /// Digest length in bytes.
    #[must_use]
    pub fn digest_len(self) -> usize {
        match self {
            Algorithm::Md5 => Md5::DIGEST_LEN,
            Algorithm::Sha1 => Sha1::DIGEST_LEN,
            Algorithm::Sha256 => Sha256::DIGEST_LEN,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Md5 => Md5::NAME,
            Algorithm::Sha1 => Sha1::NAME,
            Algorithm::Sha256 => Sha256::NAME,
        }
    }

    /// Hashes `data` with the selected algorithm.
    #[must_use]
    pub fn digest(self, data: &[u8]) -> DigestBytes {
        match self {
            Algorithm::Md5 => DigestBytes::from_slice(Md5::digest(data).as_ref()),
            Algorithm::Sha1 => DigestBytes::from_slice(Sha1::digest(data).as_ref()),
            Algorithm::Sha256 => DigestBytes::from_slice(Sha256::digest(data).as_ref()),
        }
    }

    /// Hashes the concatenation `a || b` with the selected algorithm.
    #[must_use]
    pub fn digest_pair(self, a: &[u8], b: &[u8]) -> DigestBytes {
        match self {
            Algorithm::Md5 => DigestBytes::from_slice(Md5::digest_pair(a, b).as_ref()),
            Algorithm::Sha1 => DigestBytes::from_slice(Sha1::digest_pair(a, b).as_ref()),
            Algorithm::Sha256 => DigestBytes::from_slice(Sha256::digest_pair(a, b).as_ref()),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maximum digest length supported by [`DigestBytes`] (SHA-256).
pub const MAX_DIGEST_LEN: usize = 32;

/// An inline, variable-length digest value (up to [`MAX_DIGEST_LEN`] bytes).
///
/// Used by the runtime-selectable [`Algorithm`] facade; avoids heap
/// allocation in hash-heavy experiment loops.
///
/// # Examples
///
/// ```
/// use ugc_hash::{Algorithm, DigestBytes};
///
/// let d: DigestBytes = Algorithm::Sha1.digest(b"x");
/// assert_eq!(d.len(), 20);
/// assert_eq!(d, DigestBytes::from_slice(d.as_ref()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DigestBytes {
    len: u8,
    buf: [u8; MAX_DIGEST_LEN],
}

impl DigestBytes {
    /// Wraps a raw digest.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than [`MAX_DIGEST_LEN`].
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= MAX_DIGEST_LEN,
            "digest of {} bytes exceeds MAX_DIGEST_LEN",
            bytes.len()
        );
        let mut buf = [0u8; MAX_DIGEST_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        DigestBytes {
            len: bytes.len() as u8,
            buf,
        }
    }

    /// Digest length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the digest is empty (zero-length).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hex rendering of the digest.
    #[must_use]
    pub fn to_hex(&self) -> String {
        hex::encode(self.as_ref())
    }
}

impl AsRef<[u8]> for DigestBytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf[..self.len()]
    }
}

impl fmt::Display for DigestBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_digest_lengths() {
        assert_eq!(Algorithm::Md5.digest_len(), 16);
        assert_eq!(Algorithm::Sha1.digest_len(), 20);
        assert_eq!(Algorithm::Sha256.digest_len(), 32);
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["MD5", "SHA-1", "SHA-256"]);
    }

    #[test]
    fn algorithm_display_matches_name() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.to_string(), alg.name());
        }
    }

    #[test]
    fn digest_bytes_roundtrip() {
        let d = Algorithm::Sha256.digest(b"roundtrip");
        let d2 = DigestBytes::from_slice(d.as_ref());
        assert_eq!(d, d2);
        assert_eq!(d.len(), 32);
        assert!(!d.is_empty());
    }

    #[test]
    fn digest_bytes_display_is_hex() {
        let d = Algorithm::Md5.digest(b"");
        assert_eq!(d.to_string(), "d41d8cd98f00b204e9800998ecf8427e");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIGEST_LEN")]
    fn digest_bytes_rejects_oversize() {
        let _ = DigestBytes::from_slice(&[0u8; 33]);
    }

    #[test]
    fn digest_pair_matches_concatenation() {
        for alg in Algorithm::ALL {
            let concat: Vec<u8> = [b"left".as_ref(), b"right".as_ref()].concat();
            assert_eq!(alg.digest_pair(b"left", b"right"), alg.digest(&concat));
        }
    }

    #[test]
    fn digest_to_u64_reads_first_bytes_le() {
        let d = Sha256::digest(b"int");
        let v = Sha256::digest_to_u64(&d);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&d.as_ref()[..8]);
        assert_eq!(v, u64::from_le_bytes(buf));
    }

    #[test]
    fn empty_digest_bytes() {
        let d = DigestBytes::from_slice(&[]);
        assert!(d.is_empty());
        assert_eq!(d.to_hex(), "");
    }

    #[test]
    fn digest_from_bytes_roundtrip() {
        let d = Sha256::digest(b"wire");
        assert_eq!(Sha256::digest_from_bytes(d.as_ref()), Some(d));
        assert_eq!(Sha256::digest_from_bytes(&d.as_ref()[..31]), None);
        let d = Md5::digest(b"wire");
        assert_eq!(Md5::digest_from_bytes(d.as_ref()), Some(d));
        let d = Sha1::digest(b"wire");
        assert_eq!(Sha1::digest_from_bytes(d.as_ref()), Some(d));
        assert_eq!(Sha1::digest_from_bytes(&[]), None);
    }
}
