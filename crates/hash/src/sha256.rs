//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! The default Merkle-tree hash in this reproduction: collision-resistant,
//! so Theorem 2 of the paper (uncheatability of the commitment) holds with
//! today's knowledge, unlike MD5.

use crate::HashFunction;

/// FIPS 180-4 round constants (shared with the transposed lane kernels
/// in `crate::lanes`).
#[rustfmt::skip]
pub(crate) const K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5,
    0x3956_c25b, 0x59f1_11f1, 0x923f_82a4, 0xab1c_5ed5,
    0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3,
    0x72be_5d74, 0x80de_b1fe, 0x9bdc_06a7, 0xc19b_f174,
    0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc,
    0x2de9_2c6f, 0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da,
    0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7,
    0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967,
    0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc, 0x5338_0d13,
    0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85,
    0xa2bf_e8a1, 0xa81a_664b, 0xc24b_8b70, 0xc76c_51a3,
    0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070,
    0x19a4_c116, 0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5,
    0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208,
    0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7, 0xc671_78f2,
];

/// FIPS 180-4 initial hash value.
pub(crate) const IV: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// One SHA-256 compression round over a single 64-byte block.
pub(crate) fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

/// Multi-block compression kernel: feeds every full 64-byte block of
/// `data` to [`compress`] directly from the input slice — no per-block
/// staging copy, one dispatch for the whole run — and returns the
/// unconsumed tail (`< 64` bytes).
fn compress_blocks<'a>(h: &mut [u32; 8], data: &'a [u8]) -> &'a [u8] {
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(h, block.try_into().expect("64-byte block"));
    }
    blocks.remainder()
}

/// Serialises the working state into the big-endian digest.
pub(crate) fn digest_from_words(h: &[u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Streaming SHA-256 state.
#[derive(Debug, Clone)]
pub struct Sha256State {
    h: [u32; 8],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256State {
    fn default() -> Self {
        Sha256State {
            h: IV,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Sha256State {
    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.h, block);
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        data = compress_blocks(&mut self.h, data);
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn complete(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = 1 + ((55u64.wrapping_sub(self.len)) % 64) as usize;
        self.absorb(&pad[..pad_len]);
        self.absorb(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        digest_from_words(&self.h)
    }
}

/// The SHA-256 hash function (FIPS 180-4).
///
/// # Examples
///
/// ```
/// use ugc_hash::{HashFunction, Sha256, hex};
///
/// assert_eq!(
///     hex::encode(Sha256::digest(b"abc").as_ref()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sha256;

impl HashFunction for Sha256 {
    type Digest = [u8; 32];
    type State = Sha256State;

    const DIGEST_LEN: usize = 32;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "SHA-256";

    fn new_state() -> Sha256State {
        Sha256State::default()
    }

    fn digest_from_bytes(bytes: &[u8]) -> Option<[u8; 32]> {
        bytes.try_into().ok()
    }

    fn update(state: &mut Sha256State, data: &[u8]) {
        state.absorb(data);
    }

    fn finalize(state: Sha256State) -> [u8; 32] {
        state.complete()
    }

    /// One-shot multi-block fast path: every full block is compressed
    /// straight out of `data` (no streaming-state staging copy) and the
    /// padded tail — at most two blocks — is assembled on the stack.
    fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = IV;
        let tail = compress_blocks(&mut h, data);
        let mut buf = [0u8; 128];
        buf[..tail.len()].copy_from_slice(tail);
        buf[tail.len()] = 0x80;
        let end = if tail.len() < 56 { 64 } else { 128 };
        let bit_len = (data.len() as u64).wrapping_mul(8);
        buf[end - 8..end].copy_from_slice(&bit_len.to_be_bytes());
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// Merkle inner-node fast path: `a || b` plus its padding is assembled
    /// directly on the stack (at most two blocks for a total of ≤ 119
    /// bytes), skipping the streaming state entirely.
    fn digest_pair(a: &[u8], b: &[u8]) -> [u8; 32] {
        let total = a.len() + b.len();
        if total > 119 {
            // total + 0x80 + 8-byte length no longer fits two blocks.
            return crate::streaming_digest_pair::<Self>(a, b);
        }
        let mut buf = [0u8; 128];
        buf[..a.len()].copy_from_slice(a);
        buf[a.len()..total].copy_from_slice(b);
        buf[total] = 0x80;
        let end = if total < 56 { 64 } else { 128 };
        buf[end - 8..end].copy_from_slice(&((total as u64) * 8).to_be_bytes());
        let mut h = IV;
        compress_blocks(&mut h, &buf[..end]);
        digest_from_words(&h)
    }

    /// `g = H^k` fast path: a 32-byte digest always re-hashes as a single
    /// padded block whose padding bytes never change, so one stack block
    /// is reused across all iterations.
    fn digest_iterated(input: &[u8], iterations: u64) -> [u8; 32] {
        assert!(
            iterations > 0,
            "digest_iterated requires at least 1 iteration"
        );
        let mut digest = Self::digest(input);
        if iterations == 1 {
            return digest;
        }
        let mut block = [0u8; 64];
        block[32] = 0x80;
        block[56..].copy_from_slice(&256u64.to_be_bytes());
        for _ in 1..iterations {
            block[..32].copy_from_slice(&digest);
            let mut h = IV;
            compress(&mut h, &block);
            digest = digest_from_words(&h);
        }
        digest
    }

    /// Four-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_4(msgs: &[(&[u8], &[u8]); 4]) -> [[u8; 32]; 4] {
        crate::lanes::sha256_digest_lanes(msgs)
    }

    /// Eight-message transposed lane kernel; see [`crate::LaneKernel`].
    fn digest_lanes_8(msgs: &[(&[u8], &[u8]); 8]) -> [[u8; 32]; 8] {
        crate::lanes::sha256_digest_lanes(msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn sha256_hex(input: &[u8]) -> String {
        hex::encode(Sha256::digest(input).as_ref())
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1234).collect();
        for chunk in [1usize, 13, 64, 200] {
            let mut st = Sha256::new_state();
            for piece in data.chunks(chunk) {
                Sha256::update(&mut st, piece);
            }
            assert_eq!(
                Sha256::finalize(st),
                Sha256::digest(&data),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 128, 129] {
            let data = vec![0xC3u8; len];
            let mut st = Sha256::new_state();
            for b in &data {
                Sha256::update(&mut st, core::slice::from_ref(b));
            }
            assert_eq!(Sha256::finalize(st), Sha256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_pair_is_concatenation() {
        assert_eq!(Sha256::digest_pair(b"a", b"bc"), Sha256::digest(b"abc"));
    }

    #[test]
    fn multi_block_oneshot_matches_streaming_state() {
        // The one-shot digest compresses whole blocks straight from the
        // input; the streaming state buffers unaligned pieces. Both must
        // agree at every length around the block and padding boundaries
        // and far beyond them.
        for len in (0usize..=260).chain([1000, 4096, 65536, 65537]) {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut st = Sha256::new_state();
            for piece in data.chunks(61) {
                Sha256::update(&mut st, piece);
            }
            assert_eq!(Sha256::finalize(st), Sha256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_pair_fast_path_boundaries() {
        // One-block (< 56), two-block (56..=119) and streaming-fallback
        // (> 119) totals, including the exact cut-overs.
        for (la, lb) in [
            (0, 0),
            (32, 32),
            (16, 16),
            (27, 28), // 55: largest single block
            (28, 28), // 56: smallest two-block
            (60, 59), // 119: largest two-block
            (60, 60), // 120: fallback
            (100, 100),
        ] {
            let a = vec![0x3Cu8; la];
            let b = vec![0xC3u8; lb];
            let concat: Vec<u8> = [a.as_slice(), b.as_slice()].concat();
            assert_eq!(
                Sha256::digest_pair(&a, &b),
                Sha256::digest(&concat),
                "la={la} lb={lb}"
            );
            assert_eq!(
                Sha256::digest_pair(&a, &b),
                crate::streaming_digest_pair::<Sha256>(&a, &b),
                "la={la} lb={lb}"
            );
        }
    }

    #[test]
    fn digest_iterated_matches_loop() {
        for k in [1u64, 2, 3, 17] {
            assert_eq!(
                Sha256::digest_iterated(b"seed", k),
                crate::streaming_digest_iterated::<Sha256>(b"seed", k),
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 iteration")]
    fn digest_iterated_rejects_zero() {
        let _ = Sha256::digest_iterated(b"x", 0);
    }

    #[test]
    fn avalanche_on_single_bit() {
        let d1 = Sha256::digest(&[0b0000_0000]);
        let d2 = Sha256::digest(&[0b0000_0001]);
        let differing: u32 = d1
            .iter()
            .zip(d2.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        // Expect roughly half of 256 bits to flip; use a loose band.
        assert!(
            (80..=176).contains(&differing),
            "only {differing} bits differ"
        );
    }
}
