//! `ugc-journal` — the crash-durable write-ahead campaign journal.
//!
//! A campaign that runs for days *will* lose its supervisor process
//! mid-flight; the journal is what makes that survivable without
//! sacrificing the replay invariant. It is a deliberately small format:
//! an append-only file of length-framed, CRC-checked records (the same
//! codec discipline as `ugc_grid::codec`), plus a chained SHA-256
//! attestation digest over every payload, so a resumed supervisor can
//! prove the journal it replayed is exactly the journal the dead
//! process wrote.
//!
//! On-disk layout:
//!
//! ```text
//! [8-byte magic "UGCJRNL1"][u32 version]            file header
//! [u32 len][u32 crc32(payload)][payload]            frame, repeated
//! [u32 len][u32 crc32][ "UGCSEAL\0" u64 n  d32 ]    optional seal frame
//! ```
//!
//! All integers are little-endian. The chain digest is
//! `d_0 = SHA-256(magic || version)`, `d_i = SHA-256(d_{i-1} || payload_i)`
//! over the non-seal records in order; the seal frame pins the record
//! count and final digest, and [`verify_journal`] recomputes the chain
//! and checks it. A torn tail — a partial frame from a crash mid-write —
//! is never an error on read: [`read_journal`] stops at the first
//! malformed frame and reports it as [`TailStatus::Torn`], and
//! [`JournalWriter::resume`] truncates it away.
//!
//! Crashes are injected deterministically: a [`CrashPlan`] (the journal
//! sibling of `ugc_grid`'s `FaultPlan`) refuses the Nth armed append
//! with [`JournalError::KillPoint`] and poisons the writer, so a test or
//! CI job can kill a campaign at an exact, seed-reproducible record
//! boundary and prove the resumed run bit-identical.
//!
//! # Example
//!
//! ```
//! use ugc_journal::{read_journal, CrashPlan, JournalWriter, TailStatus};
//!
//! let path = std::env::temp_dir().join("ugc-journal-doc.wal");
//! let mut writer = JournalWriter::create(&path).unwrap();
//! writer.append(b"\x01hello").unwrap();
//! writer.append(b"\x02world").unwrap();
//! let digest = writer.seal().unwrap();
//!
//! let journal = read_journal(&path).unwrap();
//! assert_eq!(journal.records.len(), 2);
//! assert_eq!(journal.tail, TailStatus::Clean);
//! assert_eq!(journal.seal.unwrap().digest, digest);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

pub use wire::{
    read_journal, verify_journal, JournalWriter, RawRecord, ReadJournal, Seal, TailStatus,
    FRAME_HEADER_BYTES, MAGIC, MAX_RECORD_LEN, VERSION,
};

use std::fmt;

/// Everything that can go wrong writing, reading or verifying a journal.
///
/// Torn tails are deliberately *not* here: a partial last record is the
/// expected aftermath of a crash and surfaces as [`TailStatus::Torn`],
/// not as an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O failure (open, write, flush, truncate).
    Io {
        /// What the journal was doing when the OS said no.
        context: &'static str,
        /// The OS error, stringified.
        reason: String,
    },
    /// The file is not a journal (bad magic) or a version this build
    /// cannot read.
    NotAJournal {
        /// Why the header was rejected.
        reason: String,
    },
    /// The journal body is structurally invalid in a way torn-tail
    /// recovery must not paper over (e.g. fewer intact records than a
    /// resume was told to keep).
    Corrupt {
        /// Byte offset of the problem.
        offset: u64,
        /// What was wrong there.
        reason: String,
    },
    /// A record payload exceeded [`MAX_RECORD_LEN`].
    TooLarge {
        /// The offending payload length.
        declared: u64,
    },
    /// The armed [`CrashPlan`] killed the writer at this (1-based) armed
    /// append. Every later append fails the same way: a killed campaign
    /// stays killed until it is resumed from disk.
    KillPoint {
        /// Which armed append was refused.
        record: u64,
    },
    /// An append was attempted after [`JournalWriter::seal`].
    Sealed,
    /// Verification requires a seal and the journal has none.
    Unsealed,
    /// The seal does not match the journal contents.
    AttestationMismatch {
        /// Which part of the attestation disagreed.
        reason: String,
    },
    /// The payload handed to [`JournalWriter::append`] is not a legal
    /// record (empty, or it impersonates the seal frame).
    InvalidRecord {
        /// Why the payload was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, reason } => write!(f, "journal I/O failed ({context}): {reason}"),
            Self::NotAJournal { reason } => write!(f, "not a ugc journal: {reason}"),
            Self::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            Self::TooLarge { declared } => write!(
                f,
                "record of {declared} bytes exceeds the {MAX_RECORD_LEN}-byte limit"
            ),
            Self::KillPoint { record } => {
                write!(f, "killed at journal record {record} (injected kill point)")
            }
            Self::Sealed => write!(f, "journal is sealed; no further records may be appended"),
            Self::Unsealed => write!(f, "journal has no attestation seal"),
            Self::AttestationMismatch { reason } => {
                write!(f, "journal attestation mismatch: {reason}")
            }
            Self::InvalidRecord { reason } => write!(f, "invalid journal record: {reason}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// SplitMix64 — the same seed-expansion mix as `ugc_grid`'s fault
/// machinery, duplicated here so the journal crate stays dependency-light.
const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic kill schedule for the journal writer — the crash
/// sibling of `ugc_grid::runtime::FaultPlan`.
///
/// Once a plan is armed on a [`JournalWriter`], the Nth armed append
/// (1-based) is refused with [`JournalError::KillPoint`] before any
/// bytes reach the file, and the writer is poisoned: the campaign loop
/// sees the failure at a byte-exact, seed-reproducible record boundary.
///
/// ```
/// use ugc_journal::CrashPlan;
///
/// assert_eq!(CrashPlan::never().kill_record(), None);
/// assert_eq!(CrashPlan::at(3).kill_record(), Some(3));
/// // Seeded plans land on a record in 1..=span, pure function of seed.
/// let plan = CrashPlan::seeded(42, 10);
/// assert_eq!(plan.kill_record(), CrashPlan::seeded(42, 10).kill_record());
/// assert!((1..=10).contains(&plan.kill_record().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    kill_at: u64,
}

impl CrashPlan {
    /// Never kill: the writer runs to completion.
    #[must_use]
    pub const fn never() -> Self {
        Self { kill_at: 0 }
    }

    /// Kill the `record`-th armed append (1-based). `at(0)` is
    /// [`CrashPlan::never`].
    #[must_use]
    pub const fn at(record: u64) -> Self {
        Self { kill_at: record }
    }

    /// A seeded kill point somewhere in `1..=span` — a pure function of
    /// `seed`, so the same seed reproduces the same crash.
    #[must_use]
    pub const fn seeded(seed: u64, span: u64) -> Self {
        let span = if span == 0 { 1 } else { span };
        Self {
            kill_at: 1 + mix64(seed) % span,
        }
    }

    /// The 1-based armed append this plan kills, if any.
    #[must_use]
    pub const fn kill_record(self) -> Option<u64> {
        match self.kill_at {
            0 => None,
            n => Some(n),
        }
    }

    /// Whether the `append_index`-th armed append (1-based) dies here.
    pub(crate) const fn kills(self, append_index: u64) -> bool {
        self.kill_at != 0 && append_index == self.kill_at
    }
}

impl Default for CrashPlan {
    fn default() -> Self {
        Self::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plan_never_kills_nothing() {
        let plan = CrashPlan::never();
        assert_eq!(plan.kill_record(), None);
        for i in 0..100 {
            assert!(!plan.kills(i));
        }
        assert_eq!(CrashPlan::default(), plan);
        assert_eq!(CrashPlan::at(0), plan);
    }

    #[test]
    fn crash_plan_at_kills_exactly_once() {
        let plan = CrashPlan::at(5);
        let killed: Vec<u64> = (1..=10).filter(|&i| plan.kills(i)).collect();
        assert_eq!(killed, vec![5]);
    }

    #[test]
    fn seeded_crash_plan_is_deterministic_and_in_span() {
        for seed in 0..64 {
            let a = CrashPlan::seeded(seed, 17);
            let b = CrashPlan::seeded(seed, 17);
            assert_eq!(a, b);
            let record = a.kill_record().expect("seeded plans always kill");
            assert!((1..=17).contains(&record), "record {record} out of span");
        }
    }

    #[test]
    fn seeded_crash_plan_spreads_across_span() {
        let hits: std::collections::BTreeSet<u64> = (0..256)
            .map(|seed| CrashPlan::seeded(seed, 8).kill_record().unwrap())
            .collect();
        assert_eq!(hits.len(), 8, "256 seeds must cover a span of 8");
    }

    #[test]
    fn seeded_zero_span_still_kills_first_record() {
        assert_eq!(CrashPlan::seeded(9, 0).kill_record(), Some(1));
    }
}
