//! Framing, checksums and file I/O for the write-ahead journal.
//!
//! This is a codec path in the `ugc-lint` sense: every byte written
//! here must be identical across platforms and runs, so all integers
//! are explicit little-endian and every narrowing conversion is a
//! checked `try_from`. The frame discipline mirrors
//! `ugc_grid::codec` (length-prefixed, bounded, validated before
//! trusted) with one addition: a CRC-32 per frame, because a journal —
//! unlike an in-memory link — survives process death and must detect
//! the half-written frame that death leaves behind.

use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::Path;

use ugc_hash::{hex, HashFunction, Sha256};

use crate::{CrashPlan, JournalError};

/// The 8-byte file magic every journal starts with.
pub const MAGIC: [u8; 8] = *b"UGCJRNL1";

/// The on-disk format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Bytes of file header: magic plus little-endian version.
pub const FILE_HEADER_BYTES: u64 = 12;

/// Bytes of frame header: `[u32 len][u32 crc32]`.
pub const FRAME_HEADER_BYTES: u64 = 8;

/// Largest accepted record payload — same ceiling as
/// `ugc_grid::codec::MAX_FIELD_LEN`, far above any real record, small
/// enough that a corrupt length field cannot provoke a huge allocation.
pub const MAX_RECORD_LEN: u64 = 1 << 30;

/// The 8-byte prefix that marks the attestation seal frame. Application
/// payloads must not start with it; [`JournalWriter::append`] rejects
/// impostors.
const SEAL_MAGIC: [u8; 8] = *b"UGCSEAL\0";

/// Total payload length of a seal frame: magic, record count, digest.
const SEAL_PAYLOAD_LEN: usize = 8 + 8 + 32;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xedb88320`), computed
/// bitwise — no lookup table, no dependencies, byte-order independent.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The chain-digest seed: a hash of the file header, so journals of
/// different versions can never share an attestation.
fn chain_start() -> [u8; 32] {
    let mut state = Sha256::new_state();
    Sha256::update(&mut state, &MAGIC);
    Sha256::update(&mut state, &VERSION.to_le_bytes());
    Sha256::finalize(state)
}

/// One chain step: `d' = SHA-256(d || payload)`.
fn chain_next(digest: &[u8; 32], payload: &[u8]) -> [u8; 32] {
    let mut state = Sha256::new_state();
    Sha256::update(&mut state, digest);
    Sha256::update(&mut state, payload);
    Sha256::finalize(state)
}

/// A record as read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// The record payload, exactly as appended.
    pub payload: Vec<u8>,
    /// Byte offset of the first byte *after* this record's frame — the
    /// truncation point that keeps this record and drops everything
    /// later.
    pub end_offset: u64,
}

/// What the end of the journal looked like on read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte parsed as a complete, checksummed frame.
    Clean,
    /// The journal ends in a partial or corrupt frame — the normal
    /// aftermath of a crash mid-append. Everything before `offset` is
    /// intact; recovery truncates from here.
    Torn {
        /// Byte offset where framing stopped making sense.
        offset: u64,
        /// What was wrong there.
        reason: String,
    },
}

/// The attestation seal: record count and chain digest pinned at
/// end-of-campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seal {
    /// How many records the sealed journal holds.
    pub records: u64,
    /// The chain digest over those records.
    pub digest: [u8; 32],
}

impl Seal {
    /// The attestation digest as lowercase hex.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        hex::encode(&self.digest)
    }
}

/// A fully scanned journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadJournal {
    /// Every intact record, in append order (the seal frame excluded).
    pub records: Vec<RawRecord>,
    /// The seal, if the journal was sealed.
    pub seal: Option<Seal>,
    /// Whether the file ended cleanly or in a torn frame.
    pub tail: TailStatus,
    /// The recomputed chain digest over `records`.
    pub digest: [u8; 32],
}

impl ReadJournal {
    /// The recomputed chain digest as lowercase hex.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        hex::encode(&self.digest)
    }
}

/// Parses a seal payload; `None` if the payload is an application
/// record.
fn parse_seal(payload: &[u8]) -> Option<Seal> {
    if payload.len() != SEAL_PAYLOAD_LEN || !payload.starts_with(&SEAL_MAGIC) {
        return None;
    }
    let mut count = [0u8; 8];
    count.copy_from_slice(&payload[8..16]);
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&payload[16..48]);
    Some(Seal {
        records: u64::from_le_bytes(count),
        digest,
    })
}

/// Scans a journal file: header, then every frame until end-of-file or
/// the first malformed frame.
///
/// A torn tail is **not** an error — it is the expected state after a
/// crash, reported via [`TailStatus::Torn`] with everything before it
/// intact. Errors are reserved for files that are not journals at all
/// or cannot be read.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be read;
/// [`JournalError::NotAJournal`] on bad magic or unsupported version.
pub fn read_journal(path: &Path) -> Result<ReadJournal, JournalError> {
    let bytes = std::fs::read(path).map_err(|e| JournalError::Io {
        context: "read journal",
        reason: e.to_string(),
    })?;
    if bytes.len() < 12 {
        return Err(JournalError::NotAJournal {
            reason: format!("file is {} bytes, shorter than the header", bytes.len()),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(JournalError::NotAJournal {
            reason: "bad magic".to_string(),
        });
    }
    let mut version = [0u8; 4];
    version.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(JournalError::NotAJournal {
            reason: format!("unsupported version {version} (this build reads {VERSION})"),
        });
    }

    let mut records = Vec::new();
    let mut digest = chain_start();
    let mut seal = None;
    let mut tail = TailStatus::Clean;
    let mut pos: usize = 12;
    loop {
        if pos == bytes.len() {
            break;
        }
        let torn = |reason: String| TailStatus::Torn {
            offset: pos as u64,
            reason,
        };
        let Some(header) = bytes.get(pos..pos + 8) else {
            tail = torn("truncated frame header".to_string());
            break;
        };
        let mut word = [0u8; 4];
        word.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(word);
        word.copy_from_slice(&header[4..8]);
        let crc = u32::from_le_bytes(word);
        if u64::from(len) > MAX_RECORD_LEN {
            tail = torn(format!("declared length {len} exceeds the record limit"));
            break;
        }
        let Ok(len) = usize::try_from(len) else {
            tail = torn(format!("declared length {len} exceeds this platform"));
            break;
        };
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            tail = torn(format!("truncated payload ({len} bytes declared)"));
            break;
        };
        if crc32(payload) != crc {
            tail = torn("frame checksum mismatch".to_string());
            break;
        }
        if seal.is_some() {
            tail = torn("frame after the attestation seal".to_string());
            break;
        }
        if payload.starts_with(&SEAL_MAGIC) {
            match parse_seal(payload) {
                Some(s) => {
                    pos += 8 + len;
                    seal = Some(s);
                    continue;
                }
                None => {
                    tail = torn("malformed seal frame".to_string());
                    break;
                }
            }
        }
        pos += 8 + len;
        digest = chain_next(&digest, payload);
        records.push(RawRecord {
            payload: payload.to_vec(),
            end_offset: pos as u64,
        });
    }

    Ok(ReadJournal {
        records,
        seal,
        tail,
        digest,
    })
}

/// Reads a journal and checks its attestation seal: the journal must be
/// clean (no torn tail), sealed, and the seal's record count and chain
/// digest must match what recomputation finds.
///
/// # Errors
///
/// Read errors propagate; a torn tail is [`JournalError::Corrupt`]
/// (an attested journal has no business being torn); a missing seal is
/// [`JournalError::Unsealed`]; a disagreeing seal is
/// [`JournalError::AttestationMismatch`].
pub fn verify_journal(path: &Path) -> Result<Seal, JournalError> {
    let journal = read_journal(path)?;
    if let TailStatus::Torn { offset, reason } = journal.tail {
        return Err(JournalError::Corrupt { offset, reason });
    }
    let Some(seal) = journal.seal else {
        return Err(JournalError::Unsealed);
    };
    let intact = journal.records.len() as u64;
    if seal.records != intact {
        return Err(JournalError::AttestationMismatch {
            reason: format!("seal pins {} records, journal holds {intact}", seal.records),
        });
    }
    if seal.digest != journal.digest {
        return Err(JournalError::AttestationMismatch {
            reason: format!(
                "seal digest {} != recomputed {}",
                hex::encode(&seal.digest),
                hex::encode(&journal.digest)
            ),
        });
    }
    Ok(seal)
}

/// The append-only journal writer.
///
/// Every append writes one complete frame and flushes it to the OS
/// before returning, so a crash between appends never loses an
/// acknowledged record and a crash *during* an append leaves exactly
/// the torn tail [`read_journal`] knows how to skip. An armed
/// [`CrashPlan`] turns the writer into its own fault injector: the Nth
/// armed append is refused before any bytes are written and the writer
/// poisons itself, which is how tests and CI kill a campaign at an
/// exact record boundary.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    records: u64,
    digest: [u8; 32],
    armed: Option<(CrashPlan, u64)>,
    killed: Option<u64>,
    sealed: bool,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path` and writes the file
    /// header. No crash plan is armed yet — [`JournalWriter::arm`] it
    /// after the records that must always survive (the campaign
    /// header) are down.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError::Io {
                context: "create journal",
                reason: e.to_string(),
            })?;
        file.write_all(&MAGIC)
            .and_then(|()| file.write_all(&VERSION.to_le_bytes()))
            .and_then(|()| file.flush())
            .map_err(|e| JournalError::Io {
                context: "write journal header",
                reason: e.to_string(),
            })?;
        Ok(Self {
            file,
            records: 0,
            digest: chain_start(),
            armed: None,
            killed: None,
            sealed: false,
        })
    }

    /// Reopens an existing, unsealed journal for appending: keeps the
    /// first `keep_records` intact records, truncates everything after
    /// them (torn tail included), and positions the writer at the new
    /// end with the chain digest recomputed.
    ///
    /// # Errors
    ///
    /// Read errors propagate; [`JournalError::Sealed`] if the journal
    /// already carries an attestation seal; [`JournalError::Corrupt`]
    /// if fewer than `keep_records` records survived on disk;
    /// [`JournalError::Io`] if truncation fails.
    pub fn resume(path: &Path, keep_records: u64) -> Result<Self, JournalError> {
        let journal = read_journal(path)?;
        if journal.seal.is_some() {
            return Err(JournalError::Sealed);
        }
        let intact = journal.records.len() as u64;
        if keep_records > intact {
            let offset = journal
                .records
                .last()
                .map_or(FILE_HEADER_BYTES, |r| r.end_offset);
            return Err(JournalError::Corrupt {
                offset,
                reason: format!("resume must keep {keep_records} records, only {intact} intact"),
            });
        }
        let Ok(keep) = usize::try_from(keep_records) else {
            return Err(JournalError::TooLarge {
                declared: keep_records,
            });
        };
        let truncate_at = if keep == 0 {
            FILE_HEADER_BYTES
        } else {
            journal.records[keep - 1].end_offset
        };
        let mut digest = chain_start();
        for record in &journal.records[..keep] {
            digest = chain_next(&digest, &record.payload);
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| JournalError::Io {
                context: "open journal for resume",
                reason: e.to_string(),
            })?;
        file.set_len(truncate_at)
            .and_then(|_| file.seek(SeekFrom::Start(truncate_at)))
            .map_err(|e| JournalError::Io {
                context: "truncate torn tail",
                reason: e.to_string(),
            })?;
        Ok(Self {
            file,
            records: keep_records,
            digest,
            armed: None,
            killed: None,
            sealed: false,
        })
    }

    /// Arms a [`CrashPlan`]: appends from now on count toward its kill
    /// point. Arming again restarts the count.
    pub fn arm(&mut self, plan: CrashPlan) {
        self.armed = Some((plan, 0));
    }

    /// Records appended so far (the seal frame is not a record).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The running chain digest over everything appended so far.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// The running chain digest as lowercase hex.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        hex::encode(&self.digest)
    }

    /// Whether the writer died at an injected kill point, and at which
    /// armed append.
    #[must_use]
    pub fn kill_record(&self) -> Option<u64> {
        self.killed
    }

    /// Counts this armed append and kills the writer if the plan says
    /// so — before any bytes are written.
    fn check_kill(&mut self) -> Result<(), JournalError> {
        if let Some((plan, count)) = &mut self.armed {
            *count += 1;
            if plan.kills(*count) {
                let record = *count;
                self.killed = Some(record);
                return Err(JournalError::KillPoint { record });
            }
        }
        Ok(())
    }

    /// Writes one complete frame and flushes it.
    fn write_frame(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        let Ok(len) = u32::try_from(payload.len()) else {
            return Err(JournalError::TooLarge {
                declared: payload.len() as u64,
            });
        };
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.flush())
            .map_err(|e| JournalError::Io {
                context: "append record",
                reason: e.to_string(),
            })
    }

    /// Appends one record: `[u32 len][u32 crc32][payload]`, flushed
    /// before returning. Returns the record's 1-based index.
    ///
    /// # Errors
    ///
    /// [`JournalError::KillPoint`] if the armed [`CrashPlan`] kills
    /// this append (the writer stays poisoned afterwards);
    /// [`JournalError::Sealed`] after [`JournalWriter::seal`];
    /// [`JournalError::InvalidRecord`] for an empty payload or one
    /// impersonating the seal frame; [`JournalError::TooLarge`] above
    /// [`MAX_RECORD_LEN`]; [`JournalError::Io`] on write failure.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, JournalError> {
        if let Some(record) = self.killed {
            return Err(JournalError::KillPoint { record });
        }
        if self.sealed {
            return Err(JournalError::Sealed);
        }
        if payload.is_empty() {
            return Err(JournalError::InvalidRecord {
                reason: "empty payload",
            });
        }
        if payload.starts_with(&SEAL_MAGIC) {
            return Err(JournalError::InvalidRecord {
                reason: "payload impersonates the seal frame",
            });
        }
        if payload.len() as u64 > MAX_RECORD_LEN {
            return Err(JournalError::TooLarge {
                declared: payload.len() as u64,
            });
        }
        self.check_kill()?;
        self.write_frame(payload)?;
        self.digest = chain_next(&self.digest, payload);
        self.records += 1;
        Ok(self.records)
    }

    /// Writes the attestation seal — record count plus chain digest —
    /// and closes the journal to further appends. Returns the sealed
    /// digest.
    ///
    /// The seal itself counts as an armed append for kill-point
    /// purposes: a campaign can be killed on its very last write.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`JournalWriter::append`].
    pub fn seal(&mut self) -> Result<[u8; 32], JournalError> {
        if let Some(record) = self.killed {
            return Err(JournalError::KillPoint { record });
        }
        if self.sealed {
            return Err(JournalError::Sealed);
        }
        self.check_kill()?;
        let mut payload = Vec::with_capacity(SEAL_PAYLOAD_LEN);
        payload.extend_from_slice(&SEAL_MAGIC);
        payload.extend_from_slice(&self.records.to_le_bytes());
        payload.extend_from_slice(&self.digest);
        self.write_frame(&payload)?;
        self.sealed = true;
        Ok(self.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, deterministic-per-process temp path — no ambient
    /// randomness, no wall clock.
    fn temp_journal(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ugc-journal-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn round_trips_records_and_digest() {
        let path = temp_journal("roundtrip");
        let mut writer = JournalWriter::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (1u8..=5).map(|i| vec![i; usize::from(i) * 3]).collect();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(writer.append(p).unwrap(), i as u64 + 1);
        }
        let live_digest = writer.digest();

        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.tail, TailStatus::Clean);
        assert_eq!(journal.seal, None);
        let read_back: Vec<Vec<u8>> = journal.records.iter().map(|r| r.payload.clone()).collect();
        assert_eq!(read_back, payloads);
        assert_eq!(journal.digest, live_digest);
        cleanup(&path);
    }

    #[test]
    fn seal_and_verify_round_trip() {
        let path = temp_journal("seal");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01one").unwrap();
        writer.append(b"\x02two").unwrap();
        let digest = writer.seal().unwrap();
        assert_eq!(writer.append(b"\x03"), Err(JournalError::Sealed));

        let seal = verify_journal(&path).unwrap();
        assert_eq!(seal.records, 2);
        assert_eq!(seal.digest, digest);
        cleanup(&path);
    }

    #[test]
    fn unsealed_journal_fails_verification() {
        let path = temp_journal("unsealed");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01").unwrap();
        assert_eq!(verify_journal(&path), Err(JournalError::Unsealed));
        cleanup(&path);
    }

    #[test]
    fn every_truncation_point_reads_back_a_clean_prefix() {
        // The torn-tail contract, exhaustively: chop the file at every
        // byte length and the reader must return some prefix of the
        // records without ever erroring or panicking.
        let path = temp_journal("torn");
        let mut writer = JournalWriter::create(&path).unwrap();
        for i in 1u8..=4 {
            writer.append(&vec![i; usize::from(i) * 5]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 12..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let journal = read_journal(&path).unwrap();
            for (i, record) in journal.records.iter().enumerate() {
                let i = u8::try_from(i).unwrap() + 1;
                assert_eq!(record.payload, vec![i; usize::from(i) * 5]);
            }
            if cut < full.len() {
                assert!(
                    matches!(journal.tail, TailStatus::Torn { .. }) || journal.records.len() < 4,
                    "cut at {cut} lost data silently"
                );
            }
        }
        cleanup(&path);
    }

    #[test]
    fn corrupted_payload_is_a_torn_tail_not_a_panic() {
        let path = temp_journal("bitflip");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01clean").unwrap();
        writer.append(b"\x02dirty").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.records.len(), 1, "first record must survive");
        match journal.tail {
            TailStatus::Torn { reason, .. } => assert!(reason.contains("checksum")),
            TailStatus::Clean => panic!("bit flip went undetected"),
        }
        cleanup(&path);
    }

    #[test]
    fn non_journals_are_rejected_not_misparsed() {
        let path = temp_journal("magic");
        std::fs::write(&path, b"definitely not a journal file").unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::NotAJournal { .. })
        ));
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::NotAJournal { .. })
        ));
        cleanup(&path);
    }

    #[test]
    fn kill_point_refuses_the_nth_armed_append_and_poisons() {
        let path = temp_journal("kill");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01header-ish").unwrap();
        writer.arm(CrashPlan::at(3));
        assert!(writer.append(b"\x02a").is_ok());
        assert!(writer.append(b"\x03b").is_ok());
        assert_eq!(
            writer.append(b"\x04c"),
            Err(JournalError::KillPoint { record: 3 })
        );
        // Poisoned: the campaign stays dead.
        assert_eq!(
            writer.append(b"\x05d"),
            Err(JournalError::KillPoint { record: 3 })
        );
        assert_eq!(writer.seal(), Err(JournalError::KillPoint { record: 3 }));
        assert_eq!(writer.kill_record(), Some(3));

        // Nothing of the killed append reached the disk.
        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.tail, TailStatus::Clean);
        assert_eq!(journal.records.len(), 3);
        cleanup(&path);
    }

    #[test]
    fn seal_counts_as_an_armed_append_for_kill_points() {
        let path = temp_journal("killseal");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.arm(CrashPlan::at(2));
        writer.append(b"\x01only").unwrap();
        assert_eq!(writer.seal(), Err(JournalError::KillPoint { record: 2 }));
        assert_eq!(verify_journal(&path), Err(JournalError::Unsealed));
        cleanup(&path);
    }

    #[test]
    fn resume_truncates_torn_tail_and_continues_the_chain() {
        let path = temp_journal("resume");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01keep me").unwrap();
        writer.append(b"\x02keep me too").unwrap();
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x99, 0x00, 0x00, 0x00, 0xde, 0xad]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&path).unwrap().tail,
            TailStatus::Torn { .. }
        ));

        let mut resumed = JournalWriter::resume(&path, 2).unwrap();
        assert_eq!(resumed.records(), 2);
        resumed.append(b"\x03appended after resume").unwrap();
        let digest = resumed.seal().unwrap();

        // The resumed file is clean and its chain matches an
        // uninterrupted writer producing the same records.
        let seal = verify_journal(&path).unwrap();
        assert_eq!(seal.records, 3);
        let clean = temp_journal("resume-ref");
        let mut reference = JournalWriter::create(&clean).unwrap();
        reference.append(b"\x01keep me").unwrap();
        reference.append(b"\x02keep me too").unwrap();
        reference.append(b"\x03appended after resume").unwrap();
        assert_eq!(reference.seal().unwrap(), digest);
        cleanup(&path);
        cleanup(&clean);
    }

    #[test]
    fn resume_can_drop_intact_records_too() {
        // Round-atomic recovery keeps only committed rounds: resume may
        // be told to keep fewer records than are intact on disk.
        let path = temp_journal("resume-drop");
        let mut writer = JournalWriter::create(&path).unwrap();
        for i in 1u8..=5 {
            writer.append(&[i]).unwrap();
        }
        let resumed = JournalWriter::resume(&path, 2).unwrap();
        assert_eq!(resumed.records(), 2);
        drop(resumed);
        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.records.len(), 2);
        assert_eq!(journal.tail, TailStatus::Clean);
        cleanup(&path);
    }

    #[test]
    fn resume_refuses_sealed_journals_and_impossible_keeps() {
        let path = temp_journal("resume-guard");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01").unwrap();
        assert!(matches!(
            JournalWriter::resume(&path, 5),
            Err(JournalError::Corrupt { .. })
        ));
        writer.seal().unwrap();
        assert_eq!(
            JournalWriter::resume(&path, 1).map(|_| ()),
            Err(JournalError::Sealed)
        );
        cleanup(&path);
    }

    #[test]
    fn appends_validate_payloads() {
        let path = temp_journal("validate");
        let mut writer = JournalWriter::create(&path).unwrap();
        assert!(matches!(
            writer.append(b""),
            Err(JournalError::InvalidRecord { .. })
        ));
        let mut impostor = SEAL_MAGIC.to_vec();
        impostor.push(7);
        assert!(matches!(
            writer.append(&impostor),
            Err(JournalError::InvalidRecord { .. })
        ));
        cleanup(&path);
    }

    #[test]
    fn tampered_seal_fails_attestation() {
        let path = temp_journal("tamper");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(b"\x01attested").unwrap();
        writer.seal().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one digest byte inside the seal payload (the last byte),
        // recomputing the frame CRC so only the attestation can object.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let seal_start = bytes.len() - SEAL_PAYLOAD_LEN;
        let fixed_crc = crc32(&bytes[seal_start..]);
        bytes[seal_start - 4..seal_start].copy_from_slice(&fixed_crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            verify_journal(&path),
            Err(JournalError::AttestationMismatch { .. })
        ));
        cleanup(&path);
    }
}
