//! Merkle-tree construction cost vs domain size — the participant's
//! commitment overhead (Step 1 of CBS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ugc_hash::{Md5, Sha256};
use ugc_merkle::{MerkleTree, StreamingBuilder};

fn leaves(n: u64) -> Vec<[u8; 16]> {
    (0..n)
        .map(|x| {
            let mut leaf = [0u8; 16];
            leaf[..8].copy_from_slice(&x.to_le_bytes());
            leaf
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_build");
    group.sample_size(20);
    for bits in [10u32, 14, 18] {
        let n = 1u64 << bits;
        let data = leaves(n);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("sha256", n), &data, |b, d| {
            b.iter(|| black_box(MerkleTree::<Sha256>::build(d).unwrap().root()))
        });
        group.bench_with_input(BenchmarkId::new("md5", n), &data, |b, d| {
            b.iter(|| black_box(MerkleTree::<Md5>::build(d).unwrap().root()))
        });
        group.bench_with_input(BenchmarkId::new("streaming_sha256", n), &data, |b, d| {
            b.iter(|| {
                let mut builder: StreamingBuilder<Sha256> = StreamingBuilder::new();
                for leaf in d {
                    builder.push(leaf).unwrap();
                }
                black_box(builder.finalize().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
