//! The Fig. 3 micro-benchmark: per-sample proof cost of the
//! partial-storage tree as the unsaved-subtree height ℓ grows — the
//! `O(2^ℓ)` recomputation the paper trades against storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugc_hash::Sha256;
use ugc_merkle::PartialMerkleTree;
use ugc_task::workloads::PasswordSearch;
use ugc_task::ComputeTask;

fn bench_partial_prove(c: &mut Criterion) {
    const N: u64 = 1 << 14;
    let task = PasswordSearch::with_hidden_password(1, 2);
    let provider = |x: u64| task.compute(x);

    let mut group = c.benchmark_group("partial_tree_prove");
    for ell in [1u32, 4, 8, 12] {
        let tree: PartialMerkleTree<Sha256> =
            PartialMerkleTree::build(N, task.output_width(), ell, provider).unwrap();
        group.bench_with_input(BenchmarkId::new("ell", ell), &tree, |b, t| {
            b.iter(|| black_box(t.prove_with(N / 2, provider).unwrap()))
        });
    }
    group.finish();
}

fn bench_partial_build(c: &mut Criterion) {
    const N: u64 = 1 << 14;
    let task = PasswordSearch::with_hidden_password(1, 2);
    let provider = |x: u64| task.compute(x);
    let mut group = c.benchmark_group("partial_tree_build");
    group.sample_size(10);
    for ell in [1u32, 7, 14] {
        group.bench_with_input(BenchmarkId::new("ell", ell), &ell, |b, &l| {
            b.iter(|| {
                black_box(
                    PartialMerkleTree::<Sha256>::build(N, task.output_width(), l, provider)
                        .unwrap()
                        .root(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partial_prove, bench_partial_build);
criterion_main!(benches);
