//! Proof generation and verification — the per-sample cost of Steps 3–4
//! of CBS (`O(log n)` for both sides).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugc_hash::Sha256;
use ugc_merkle::MerkleTree;

fn bench_proofs(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_proofs");
    for bits in [10u32, 16, 20] {
        let n = 1u64 << bits;
        let tree: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(n, 16, |x| {
            let mut leaf = vec![0u8; 16];
            leaf[..8].copy_from_slice(&x.to_le_bytes());
            leaf
        })
        .unwrap();
        let root = tree.root();
        let index = n / 3;
        let leaf = tree.leaf(index).unwrap().to_vec();
        let proof = tree.prove(index).unwrap();
        group.bench_with_input(BenchmarkId::new("prove", n), &tree, |b, t| {
            b.iter(|| black_box(t.prove(index).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("verify", n), &proof, |b, p| {
            b.iter(|| {
                assert!(black_box(p.verify(&root, &leaf)));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proofs);
criterion_main!(benches);
