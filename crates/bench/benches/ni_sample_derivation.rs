//! Eq. (4) sample derivation cost vs the hardness `k` of `g = H^k` — the
//! knob Eq. (5) turns to price out the retry attack. Cost must be linear
//! in `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugc_core::sampling::derive_samples;
use ugc_grid::CostLedger;
use ugc_hash::{IteratedHash, Md5};

fn bench_derivation(c: &mut Criterion) {
    let root = [0xABu8; 16];
    let ledger = CostLedger::new();
    let mut group = c.benchmark_group("ni_sample_derivation");
    for k in [1u64, 10, 100, 1000] {
        let g = IteratedHash::<Md5>::new(k);
        group.bench_with_input(BenchmarkId::new("m50_k", k), &g, |b, g| {
            b.iter(|| black_box(derive_samples(g, &root, 50, 1 << 20, &ledger)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_derivation);
criterion_main!(benches);
