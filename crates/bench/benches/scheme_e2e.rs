//! End-to-end rounds: naive sampling vs CBS vs NI-CBS on the same
//! workload — the protocol-level cost comparison behind the paper's
//! headline claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugc_core::scheme::cbs::{run_cbs, CbsConfig};
use ugc_core::scheme::naive::{run_naive, NaiveConfig};
use ugc_core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use ugc_core::ParticipantStorage;
use ugc_grid::HonestWorker;
use ugc_hash::Sha256;
use ugc_task::workloads::PasswordSearch;
use ugc_task::Domain;

const N: u64 = 1 << 12;
const M: usize = 32;

fn bench_schemes(c: &mut Criterion) {
    let task = PasswordSearch::with_hidden_password(1, 7);
    let screener = task.match_screener();
    let domain = Domain::new(0, N);
    let mut group = c.benchmark_group("scheme_e2e");
    group.sample_size(10);

    group.bench_function("naive", |b| {
        b.iter(|| {
            black_box(
                run_naive(
                    &task,
                    &screener,
                    domain,
                    &HonestWorker,
                    &NaiveConfig {
                        task_id: 1,
                        samples: M,
                        seed: 2,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("cbs_full", |b| {
        b.iter(|| {
            black_box(
                run_cbs::<Sha256, _, _, _>(
                    &task,
                    &screener,
                    domain,
                    &HonestWorker,
                    ParticipantStorage::Full,
                    &CbsConfig {
                        task_id: 1,
                        samples: M,
                        seed: 2,
                        report_audit: 0,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("cbs_partial_l6", |b| {
        b.iter(|| {
            black_box(
                run_cbs::<Sha256, _, _, _>(
                    &task,
                    &screener,
                    domain,
                    &HonestWorker,
                    ParticipantStorage::Partial { subtree_height: 6 },
                    &CbsConfig {
                        task_id: 1,
                        samples: M,
                        seed: 2,
                        report_audit: 0,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("ni_cbs", |b| {
        b.iter(|| {
            black_box(
                run_ni_cbs::<Sha256, _, _, _>(
                    &task,
                    &screener,
                    domain,
                    &HonestWorker,
                    ParticipantStorage::Full,
                    &NiCbsConfig {
                        task_id: 1,
                        samples: M,
                        g_iterations: 1,
                        report_audit: 0,
                        audit_seed: 0,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
