//! Hash-function throughput: the unit cost behind every `C_g` and tree
//! figure in the paper (MD5 vs SHA-1 vs SHA-256 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ugc_hash::{HashFunction, Md5, Sha1, Sha256};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_throughput");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| black_box(Md5::digest(d)))
        });
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| black_box(Sha1::digest(d)))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(Sha256::digest(d)))
        });
    }
    group.finish();
}

fn bench_pair_digest(c: &mut Criterion) {
    // The Merkle inner-node operation: two digests in, one out.
    let left = [0x11u8; 32];
    let right = [0x22u8; 32];
    c.bench_function("merkle_node_sha256", |b| {
        b.iter(|| black_box(Sha256::digest_pair(&left, &right)))
    });
    c.bench_function("merkle_node_md5", |b| {
        b.iter(|| black_box(Md5::digest_pair(&left[..16], &right[..16])))
    });
}

criterion_group!(benches, bench_hashes, bench_pair_digest);
criterion_main!(benches);
