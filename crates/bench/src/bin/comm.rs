//! Regenerates the paper's **communication-cost comparison** (Sections 1
//! and 3): naive sampling ships `O(n)` result bytes, CBS ships
//! `O(m log n)`.
//!
//! Measured numbers come from the byte-counted transport — every frame a
//! real deployment would send, encoded and counted — then the closed forms
//! (validated against those measurements) extrapolate to the paper's
//! motivating example: a 64-bit key-search domain, where the naive upload
//! is "about 16 million terabytes" while CBS stays in kilobytes.
//!
//! Run: `cargo run --release -p ugc-bench --bin comm`

#![forbid(unsafe_code)]

use ugc_core::analysis::{cbs_traffic_bytes, naive_traffic_bytes};
use ugc_core::scheme::cbs::{run_cbs, CbsConfig};
use ugc_core::scheme::naive::{run_naive, NaiveConfig};
use ugc_core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use ugc_core::ParticipantStorage;
use ugc_grid::HonestWorker;
use ugc_hash::{HashFunction, Sha256};
use ugc_merkle::tree_height;
use ugc_sim::Table;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, Domain};

const M: usize = 50;

fn main() {
    println!("Communication cost — naive O(n) vs CBS/NI-CBS O(m log n), m = {M}\n");
    println!("Measured: participant→supervisor bytes over the byte-counted transport.");

    let task = PasswordSearch::with_hidden_password(1, 3);
    let screener = task.match_screener();

    let mut table = Table::new(["n", "naive bytes", "CBS bytes", "NI-CBS bytes", "naive/CBS"]);
    let mut widths = Vec::new();
    for bits in [10u32, 12, 14, 16] {
        let n = 1u64 << bits;
        let domain = Domain::new(0, n);
        let naive = run_naive(
            &task,
            &screener,
            domain,
            &HonestWorker,
            &NaiveConfig {
                task_id: 1,
                samples: M,
                seed: 5,
            },
        )
        .expect("naive round");
        let cbs = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            &CbsConfig {
                task_id: 1,
                samples: M,
                seed: 5,
                report_audit: 0,
            },
        )
        .expect("cbs round");
        let ni = run_ni_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            &NiCbsConfig {
                task_id: 1,
                samples: M,
                g_iterations: 1,
                report_audit: 0,
                audit_seed: 0,
            },
        )
        .expect("ni-cbs round");
        assert!(naive.accepted && cbs.accepted && ni.accepted);
        let naive_b = naive.supervisor_link.bytes_received;
        let cbs_b = cbs.supervisor_link.bytes_received;
        let ni_b = ni.supervisor_link.bytes_received;
        widths.push((n, naive_b, cbs_b));
        table.push([
            format!("2^{bits}"),
            naive_b.to_string(),
            cbs_b.to_string(),
            ni_b.to_string(),
            format!("{:.1}×", naive_b as f64 / cbs_b as f64),
        ]);
    }
    print!("{table}");

    // Sanity: measured values track the closed forms (payload + framing).
    let leaf_w = task.output_width() as u64;
    let digest = Sha256::DIGEST_LEN as u64;
    println!("\nClosed-form check (payload only, excludes framing/reports):");
    let mut check = Table::new([
        "n",
        "naive formula",
        "naive meas.",
        "CBS formula",
        "CBS meas.",
    ]);
    for (n, naive_b, cbs_b) in widths {
        check.push([
            format!("2^{}", n.trailing_zeros()),
            naive_traffic_bytes(n, leaf_w).to_string(),
            naive_b.to_string(),
            cbs_traffic_bytes(M as u64, tree_height(n), leaf_w, digest).to_string(),
            cbs_b.to_string(),
        ]);
    }
    print!("{check}");

    println!("\nExtrapolation to the paper's motivating scales (closed forms):");
    let mut extra = Table::new(["n", "naive upload", "CBS upload"]);
    for bits in [24u32, 32, 40, 64] {
        let naive = 2f64.powi(bits as i32) * leaf_w as f64;
        let cbs = cbs_traffic_bytes(M as u64, bits, leaf_w, digest);
        extra.push([
            format!("2^{bits}"),
            human_bytes(naive),
            human_bytes(cbs as f64),
        ]);
    }
    print!("{extra}");
    println!(
        "\nPaper anchor reproduced: the paper prices a 64-bit key search at \
         \"about 16 million terabytes\"\n(2^64 one-byte records ≈ {}); with our \
         16-byte results that is {} —\neither way CBS needs only ~{}: the \
         O(n) → O(m log n) collapse.",
        human_bytes(2f64.powi(64)),
        human_bytes(2f64.powi(64) * leaf_w as f64),
        human_bytes(cbs_traffic_bytes(M as u64, 64, leaf_w, digest) as f64),
    );
}

fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    let mut value = b;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}
