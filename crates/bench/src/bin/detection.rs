//! Validates **Eq. (2) / Theorem 3**: `Pr[cheat succeeds] = (r+(1−r)q)^m`.
//!
//! Two layers of evidence:
//!
//! 1. a dense grid over `(r, q, m)` using the fast sampling-event
//!    simulator (hundreds of thousands of trials per cell);
//! 2. spot checks running the **complete CBS protocol** — Merkle build,
//!    commitment, challenge, authentication paths, verification — a few
//!    hundred rounds per cell, to show the protocol realises the formula,
//!    not just the abstract event.
//!
//! Run: `cargo run --release -p ugc-bench --bin detection`

#![forbid(unsafe_code)]

use ugc_core::analysis::cheat_success_probability;
use ugc_sim::{
    estimate_cheat_success_fast_parallel, estimate_cheat_success_protocol_parallel,
    DetectionExperiment, Parallelism, Table,
};

fn main() {
    println!("Eq. (2) — cheat-success probability (r + (1 − r)q)^m\n");

    println!("Fast grid (sampling event only, 100k trials/cell):");
    let mut grid = Table::new(["r", "q", "m", "theory", "measured", "99% CI", "ok"]);
    let mut all_ok = true;
    for &r in &[0.2, 0.5, 0.8, 0.9] {
        for &q in &[0.0, 0.5] {
            for &m in &[5usize, 15, 30] {
                let exp = DetectionExperiment {
                    domain_size: 0,
                    samples: m,
                    honesty_ratio: r,
                    guess_quality: q,
                    trials: 100_000,
                    seed: (r * 100.0) as u64 ^ ((q * 10.0) as u64) << 8 ^ (m as u64) << 16,
                };
                let est = estimate_cheat_success_fast_parallel(&exp, Parallelism::default());
                let theory = cheat_success_probability(r, q, m as u64);
                let ok = est.contains(theory);
                all_ok &= ok;
                grid.push([
                    format!("{r:.1}"),
                    format!("{q:.1}"),
                    m.to_string(),
                    format!("{theory:.4}"),
                    format!("{:.4}", est.rate),
                    format!("[{:.4},{:.4}]", est.ci_low, est.ci_high),
                    if ok { "✓" } else { "✗" }.into(),
                ]);
            }
        }
    }
    print!("{grid}");

    println!("\nFull-protocol spot checks (complete CBS rounds, 400 trials/cell):");
    let mut spot = Table::new(["r", "q", "m", "n", "theory", "measured", "99% CI", "ok"]);
    for &(r, q, m) in &[(0.5, 0.0, 3usize), (0.5, 0.5, 5), (0.8, 0.0, 6)] {
        let exp = DetectionExperiment {
            domain_size: 128,
            samples: m,
            honesty_ratio: r,
            guess_quality: q,
            trials: 400,
            seed: 0xdeec + m as u64,
        };
        let est = estimate_cheat_success_protocol_parallel(&exp, Parallelism::default());
        let theory = cheat_success_probability(r, q, m as u64);
        let ok = est.contains(theory);
        all_ok &= ok;
        spot.push([
            format!("{r:.1}"),
            format!("{q:.1}"),
            m.to_string(),
            "128".into(),
            format!("{theory:.4}"),
            format!("{:.4}", est.rate),
            format!("[{:.4},{:.4}]", est.ci_low, est.ci_high),
            if ok { "✓" } else { "✗" }.into(),
        ]);
    }
    print!("{spot}");
    println!(
        "\nOverall: {}",
        if all_ok {
            "REPRODUCED — Theorem 3 holds for the implemented protocol"
        } else {
            "MISMATCH — see rows flagged ✗"
        }
    );
}
