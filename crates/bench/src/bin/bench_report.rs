//! Records the performance baseline: runs the workloads behind the six
//! criterion benches plus the PR 2 serial-vs-parallel comparisons, the
//! PR 3 session-engine workloads, the PR 4 chaos-soak campaign, the
//! PR 5 scheduler-scale campaign (1000 participants on a fixed pool),
//! the PR 7 journal-overhead comparison (the same fleet with and
//! without the write-ahead campaign journal) and the PR 8 hot-path
//! workloads (`steal_scale`: the 1000-slot campaign across work-stealing
//! pool sizes; `hash_blocks`: the multi-block one-shot digest kernel vs
//! the streaming state), the PR 9 `wire_overhead` comparison (the same
//! campaign over the in-process broker vs the framed TCP wire protocol
//! on loopback), the PR 10 `hash_lanes`/`merkle_lanes` comparisons
//! (message-parallel multi-lane digest kernels vs scalar dispatch of the
//! same batches), and writes the measurements to a JSON file so the perf
//! trajectory can be compared across PRs.
//!
//! Every serial/parallel pair is checked for **bit-identical output**
//! (roots, Monte-Carlo counts), the engine-over-broker round is checked
//! bit-identical to the legacy in-process round (verdict, bytes,
//! ledgers), the chaos soak is checked to replay bit-identically from
//! its seed, and the scheduler-scale campaign is checked bit-identical
//! across worker counts {1, 4, 8} *and* work-stealing seeds (the PR 8
//! stealing scheduler must keep every digest bit in place no matter
//! which worker wins which task); any divergence fails the run with a
//! non-zero exit code, which is what the CI quick-mode step keys off.
//!
//! `--compare BASELINE.json` is the **trajectory gate**: workloads shared
//! with the baseline file must not regress more than 2× (the build fails
//! otherwise), so a perf cliff cannot land silently.
//!
//! Run: `cargo run --release -p ugc-bench --bin bench_report`
//! (`--quick` shrinks sizes for CI; `--out PATH` overrides
//! `BENCH_pr10.json`; `--compare PATH` enables the gate).

#![forbid(unsafe_code)]

use criterion::{black_box, Bencher};
use std::fmt::Write as _;
use std::time::Duration;
use ugc_core::sampling::derive_samples;
use ugc_core::scheme::cbs::{run_cbs, CbsConfig, CbsScheme};
use ugc_core::scheme::double_check::DoubleCheckScheme;
use ugc_core::scheme::naive::NaiveScheme;
use ugc_core::scheme::ni_cbs::NiCbsScheme;
use ugc_core::scheme::ringer::RingerScheme;
use ugc_core::{
    run_durable_fleet, run_mixed_fleet, summary_digest, CampaignHeader, DurableCampaign,
    FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig, ParticipantStorage,
    VerificationScheme,
};
use ugc_grid::runtime::FaultPlan;
use ugc_grid::{CostLedger, HonestWorker, WorkerBehaviour};
use ugc_hash::{
    digest_batch, digest_iterated_batch, streaming_digest_iterated, streaming_digest_pair,
    HashFunction, IteratedHash, LaneWidth, Md5, Sha256,
};
use ugc_journal::CrashPlan;
use ugc_merkle::{MerkleTree, Parallelism, PartialMerkleTree, StreamingBuilder};
use ugc_sim::{
    estimate_cheat_success_fast, estimate_cheat_success_fast_parallel, DetectionExperiment,
};
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, Domain};
use uncheatable_grid::campaign::{CampaignPlan, FleetParams};
use uncheatable_grid::netgrid;

/// One measured workload.
struct Entry {
    name: &'static str,
    ns_per_op: f64,
}

/// Median-of-N ns/op through the vendored smoke-timer.
fn time<O>(routine: impl FnMut() -> O) -> f64 {
    let mut bencher = Bencher::default();
    bencher.iter(routine);
    bencher.median_ns_per_iter().expect("measured")
}

fn leaves(n: u64) -> Vec<[u8; 16]> {
    (0..n)
        .map(|x| {
            let mut leaf = [0u8; 16];
            leaf[..8].copy_from_slice(&x.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            leaf
        })
        .collect()
}

/// Extracts the baseline's `"mode"` field. Entry names are shared
/// between quick and full runs but measure different sizes, so a
/// cross-mode comparison would gate nothing: it must be refused.
fn parse_baseline_mode(text: &str) -> Option<String> {
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("\"mode\": \""))
        .map(|rest| rest.trim_end_matches(['"', ','].as_slice()).to_owned())
        .next()
}

/// Extracts the `{"name": …, "ns_per_op": …}` pairs from a baseline file
/// written by an earlier `bench_report` run (any PR's schema).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("\", \"ns_per_op\": ") else {
            continue;
        };
        let value = rest.trim_end_matches(['}', ',', ' ']);
        if let Ok(ns_per_op) = value.parse::<f64>() {
            entries.push((name.to_owned(), ns_per_op));
        }
    }
    entries
}

/// How much slower a workload may get against the baseline before the
/// trajectory gate fails the build.
const GATE_REGRESSION_FACTOR: f64 = 2.0;

/// The chaos-soak campaign: all five schemes, ten participant threads
/// behind the broker, seeded duplication/reordering/latency plus
/// crash/restart churn. Returns the fleet summary; the caller checks the
/// replay digest and records throughput.
fn run_soak(n_per_member: u64) -> FleetSummary {
    let task = PasswordSearch::with_hidden_password(7, 3);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let cbs = CbsScheme {
        samples: 16,
        seed: 11,
        report_audit: 0,
    };
    let ni = NiCbsScheme {
        samples: 16,
        g_iterations: 2,
        report_audit: 0,
        audit_seed: 13,
    };
    let naive = NaiveScheme {
        samples: 16,
        seed: 14,
    };
    let ringer = RingerScheme {
        ringers: 8,
        seed: 15,
    };
    let double_check = DoubleCheckScheme;
    let schemes: Vec<&dyn VerificationScheme<Sha256>> = vec![
        &cbs,
        &ni,
        &naive,
        &ringer,
        &double_check,
        &cbs,
        &ni,
        &naive,
        &ringer,
    ];
    let members: Vec<MemberSpec<'_, Sha256>> = schemes
        .into_iter()
        .map(|scheme| MemberSpec {
            scheme,
            behaviours: vec![&honest as &dyn WorkerBehaviour; scheme.participant_slots()],
        })
        .collect();
    let total = n_per_member * members.len() as u64;
    run_mixed_fleet(
        &task,
        &screener,
        Domain::new(0, total),
        &members,
        &MixedFleetConfig {
            transport: FleetTransport::Brokered,
            chaos: Some(FaultPlan::chaos(0x50a6_c4a0).with_churn(150)),
            deadline: Some(Duration::from_secs(30)),
            retries: 8,
            ..MixedFleetConfig::default()
        },
    )
    .expect("the soak campaign must converge within its retry budget")
}

/// The PR 5 scheduler-scale campaign: 1000 participant slots — the five
/// schemes cycling, honest workers, seeded churn — multiplexed over a
/// fixed [`GridScheduler`](ugc_grid::runtime::GridScheduler) pool behind
/// the broker. The thread-per-participant runtime could never run this;
/// the work-stealing scheduler (PR 8) runs it on any pool size — and
/// under any steal-seed victim order — with a bit-identical outcome.
fn run_scheduler_scale(workers: usize, steal_seed: u64) -> FleetSummary {
    const SLOTS: usize = 1000;
    const SHARE: u64 = 8;
    let task = PasswordSearch::with_hidden_password(0x5CA1_E50A, 3);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let cbs = CbsScheme {
        samples: 6,
        seed: 11,
        report_audit: 0,
    };
    let ni = NiCbsScheme {
        samples: 6,
        g_iterations: 1,
        report_audit: 0,
        audit_seed: 13,
    };
    let naive = NaiveScheme {
        samples: 6,
        seed: 14,
    };
    let ringer = RingerScheme {
        ringers: 4,
        seed: 15,
    };
    let double_check = DoubleCheckScheme;
    let cycle: [&dyn VerificationScheme<Sha256>; 5] = [&cbs, &ni, &naive, &ringer, &double_check];
    let mut members: Vec<MemberSpec<'_, Sha256>> = Vec::new();
    let mut slots = 0usize;
    let mut kind = 0usize;
    while slots < SLOTS {
        let scheme = cycle[kind % cycle.len()];
        let scheme: &dyn VerificationScheme<Sha256> = if slots + scheme.participant_slots() > SLOTS
        {
            &cbs
        } else {
            scheme
        };
        slots += scheme.participant_slots();
        kind += 1;
        members.push(MemberSpec {
            scheme,
            behaviours: vec![&honest as &dyn WorkerBehaviour; scheme.participant_slots()],
        });
    }
    run_mixed_fleet(
        &task,
        &screener,
        Domain::new(0, members.len() as u64 * SHARE),
        &members,
        &MixedFleetConfig {
            transport: FleetTransport::Brokered,
            // Churn but no drops: failed sessions NACK fast through the
            // broker, so no wall-clock deadline is involved at any pool
            // size.
            chaos: Some(FaultPlan::chaos(0x5CA1_E50A).with_churn(40)),
            retries: 8,
            workers: Some(workers),
            steal_seed,
            ..MixedFleetConfig::default()
        },
    )
    .expect("the scheduler-scale campaign must converge within its retry budget")
}

/// The deterministic part of a soak summary: verdicts, attempts, bytes
/// and the injected-fault log — everything that must replay identically.
fn soak_digest(summary: &FleetSummary) -> String {
    let mut out = String::new();
    for m in &summary.members {
        let _ = write!(
            out,
            "{}:{}:{}:{}:{};",
            m.participant,
            m.outcome.accepted,
            m.attempts,
            m.outcome.supervisor_link.bytes_sent,
            m.outcome.supervisor_link.bytes_received
        );
    }
    let _ = write!(out, "faults {:?}", summary.fault_events);
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_pr10.json");
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--compare" => compare_path = Some(args.next().expect("--compare requires a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--quick] [--out PATH] [--compare BASELINE.json]");
                std::process::exit(2);
            }
        }
    }

    let parallelism = Parallelism::default();
    let threads = parallelism.get();
    let merkle_n: u64 = if quick { 1 << 12 } else { 1 << 16 };
    let proof_n: u64 = if quick { 1 << 10 } else { 1 << 14 };
    let hash_bytes: usize = if quick { 4096 } else { 65536 };
    let sim_trials: u32 = if quick { 2_000 } else { 20_000 };
    let e2e_n: u64 = if quick { 1 << 8 } else { 1 << 12 };
    println!(
        "bench_report: mode={} threads={threads} merkle_leaves={merkle_n} sim_trials={sim_trials}",
        if quick { "quick" } else { "full" }
    );

    let mut entries: Vec<Entry> = Vec::new();
    let mut divergence = false;

    // --- Tentpole 1: Merkle construction, serial vs parallel. ---
    let data = leaves(merkle_n);
    let serial_tree = MerkleTree::<Sha256>::build(&data).unwrap();
    let parallel_tree = MerkleTree::<Sha256>::build_parallel(&data, parallelism).unwrap();
    if serial_tree.root() != parallel_tree.root() {
        eprintln!("DIVERGENCE: parallel merkle root != serial root");
        divergence = true;
    }
    entries.push(Entry {
        name: "merkle_build/sha256_serial",
        ns_per_op: time(|| black_box(MerkleTree::<Sha256>::build(&data).unwrap().root())),
    });
    entries.push(Entry {
        name: "merkle_build/sha256_parallel",
        ns_per_op: time(|| {
            black_box(
                MerkleTree::<Sha256>::build_parallel(&data, parallelism)
                    .unwrap()
                    .root(),
            )
        }),
    });
    let (streamed_root, _) = StreamingBuilder::<Sha256>::parallel_root(&data, parallelism).unwrap();
    if streamed_root != serial_tree.root() {
        eprintln!("DIVERGENCE: streaming parallel root != serial root");
        divergence = true;
    }
    entries.push(Entry {
        name: "merkle_streaming_root/serial",
        ns_per_op: time(|| {
            let mut builder: StreamingBuilder<Sha256> = StreamingBuilder::new();
            for leaf in &data {
                builder.push(leaf).unwrap();
            }
            black_box(builder.finalize().unwrap())
        }),
    });
    entries.push(Entry {
        name: "merkle_streaming_root/parallel",
        ns_per_op: time(|| {
            black_box(
                StreamingBuilder::<Sha256>::parallel_root(&data, parallelism)
                    .unwrap()
                    .0,
            )
        }),
    });

    // --- Tentpole 2: digest fast paths vs the generic streaming path. ---
    let left32 = [0x11u8; 32];
    let right32 = [0x22u8; 32];
    if Sha256::digest_pair(&left32, &right32) != streaming_digest_pair::<Sha256>(&left32, &right32)
    {
        eprintln!("DIVERGENCE: sha256 digest_pair fast path != streaming");
        divergence = true;
    }
    entries.push(Entry {
        name: "digest_pair/sha256_fast",
        ns_per_op: time(|| black_box(Sha256::digest_pair(&left32, &right32))),
    });
    entries.push(Entry {
        name: "digest_pair/sha256_streaming",
        ns_per_op: time(|| black_box(streaming_digest_pair::<Sha256>(&left32, &right32))),
    });
    entries.push(Entry {
        name: "digest_pair/md5_fast",
        ns_per_op: time(|| black_box(Md5::digest_pair(&left32[..16], &right32[..16]))),
    });
    entries.push(Entry {
        name: "digest_pair/md5_streaming",
        ns_per_op: time(|| black_box(streaming_digest_pair::<Md5>(&left32[..16], &right32[..16]))),
    });
    let g = IteratedHash::<Md5>::new(1000);
    if g.apply(b"seed") != streaming_digest_iterated::<Md5>(b"seed", 1000) {
        eprintln!("DIVERGENCE: md5 digest_iterated fast path != streaming");
        divergence = true;
    }
    entries.push(Entry {
        name: "iterated_hash/md5_k1000_fast",
        ns_per_op: time(|| black_box(g.apply(b"seed"))),
    });
    entries.push(Entry {
        name: "iterated_hash/md5_k1000_streaming",
        ns_per_op: time(|| black_box(streaming_digest_iterated::<Md5>(b"seed", 1000))),
    });

    // --- Tentpole 3: Monte-Carlo trials, serial vs sharded. ---
    let exp = DetectionExperiment {
        domain_size: 0,
        samples: 14,
        honesty_ratio: 0.5,
        guess_quality: 0.0,
        trials: sim_trials,
        seed: 0x00be_2c47,
    };
    let serial_est = estimate_cheat_success_fast(&exp);
    let sharded_est = estimate_cheat_success_fast_parallel(&exp, parallelism);
    if serial_est.successes != sharded_est.successes {
        eprintln!(
            "DIVERGENCE: sharded Monte-Carlo counts {} != serial {}",
            sharded_est.successes, serial_est.successes
        );
        divergence = true;
    }
    entries.push(Entry {
        name: "sim_fast/serial",
        ns_per_op: time(|| black_box(estimate_cheat_success_fast(&exp).successes)),
    });
    entries.push(Entry {
        name: "sim_fast/sharded",
        ns_per_op: time(|| {
            black_box(estimate_cheat_success_fast_parallel(&exp, parallelism).successes)
        }),
    });

    // --- The remaining criterion-bench workloads. ---
    let hash_data = vec![0xA5u8; hash_bytes];
    entries.push(Entry {
        name: "hash_throughput/sha256",
        ns_per_op: time(|| black_box(Sha256::digest(&hash_data))),
    });

    // --- PR 8 kernel workload: the multi-block one-shot digest (every
    // full block compressed straight out of the input slice) vs the
    // streaming state driven in 61-byte chunks, which forces the
    // per-block staging copy on every block. The two must agree bit for
    // bit; the speedup is what block-at-once scheduling buys.
    let streaming_sha256 = |data: &[u8]| {
        let mut st = Sha256::new_state();
        for piece in data.chunks(61) {
            Sha256::update(&mut st, piece);
        }
        Sha256::finalize(st)
    };
    if Sha256::digest(&hash_data) != streaming_sha256(&hash_data) {
        eprintln!("DIVERGENCE: sha256 multi-block one-shot != streaming state");
        divergence = true;
    }
    entries.push(Entry {
        name: "hash_blocks/sha256_multiblock",
        ns_per_op: time(|| black_box(Sha256::digest(&hash_data))),
    });
    entries.push(Entry {
        name: "hash_blocks/sha256_streaming",
        ns_per_op: time(|| black_box(streaming_sha256(&hash_data))),
    });
    let md5_streaming = |data: &[u8]| {
        let mut st = Md5::new_state();
        for piece in data.chunks(61) {
            Md5::update(&mut st, piece);
        }
        Md5::finalize(st)
    };
    if Md5::digest(&hash_data) != md5_streaming(&hash_data) {
        eprintln!("DIVERGENCE: md5 multi-block one-shot != streaming state");
        divergence = true;
    }
    entries.push(Entry {
        name: "hash_blocks/md5_multiblock",
        ns_per_op: time(|| black_box(Md5::digest(&hash_data))),
    });
    entries.push(Entry {
        name: "hash_blocks/md5_streaming",
        ns_per_op: time(|| black_box(md5_streaming(&hash_data))),
    });
    // --- PR 10 tentpole: message-parallel lane kernels. A batch of
    // independent messages hashed through the 8-wide transposed
    // compression state vs one-at-a-time scalar dispatch of the same
    // batch (LaneWidth::Scalar), for the two shapes the stack actually
    // runs hot: iterated MD5 chains (PasswordSearch's `MD5^w`) and
    // one-shot SHA-256 batches (Merkle leaf levels). Every width must
    // produce bit-identical digests.
    let lane_seeds: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i ^ 0x5A; 16]).collect();
    let lane_seed_refs: Vec<&[u8]> = lane_seeds.iter().map(|s| s.as_slice()).collect();
    let lane_k: u64 = if quick { 200 } else { 1000 };
    let lane_msgs: Vec<Vec<u8>> = (0..if quick { 512usize } else { 4096 })
        .map(|i| {
            (0..64)
                .map(|j| (i.wrapping_mul(31) ^ j).to_le_bytes()[0])
                .collect()
        })
        .collect();
    let lane_msg_refs: Vec<&[u8]> = lane_msgs.iter().map(|m| m.as_slice()).collect();
    for width in [LaneWidth::X4, LaneWidth::X8] {
        if digest_iterated_batch::<Md5>(&lane_seed_refs, lane_k, width)
            != digest_iterated_batch::<Md5>(&lane_seed_refs, lane_k, LaneWidth::Scalar)
        {
            eprintln!("DIVERGENCE: md5 iterated lane batch at {width} != scalar");
            divergence = true;
        }
        if digest_batch::<Sha256>(&lane_msg_refs, width)
            != digest_batch::<Sha256>(&lane_msg_refs, LaneWidth::Scalar)
        {
            eprintln!("DIVERGENCE: sha256 lane batch at {width} != scalar");
            divergence = true;
        }
    }
    entries.push(Entry {
        name: "hash_lanes/md5_iter_scalar",
        ns_per_op: time(|| {
            black_box(digest_iterated_batch::<Md5>(
                &lane_seed_refs,
                lane_k,
                LaneWidth::Scalar,
            ))
        }),
    });
    entries.push(Entry {
        name: "hash_lanes/md5_iter_x4",
        ns_per_op: time(|| {
            black_box(digest_iterated_batch::<Md5>(
                &lane_seed_refs,
                lane_k,
                LaneWidth::X4,
            ))
        }),
    });
    entries.push(Entry {
        name: "hash_lanes/md5_iter_x8",
        ns_per_op: time(|| {
            black_box(digest_iterated_batch::<Md5>(
                &lane_seed_refs,
                lane_k,
                LaneWidth::X8,
            ))
        }),
    });
    entries.push(Entry {
        name: "hash_lanes/sha256_batch_scalar",
        ns_per_op: time(|| black_box(digest_batch::<Sha256>(&lane_msg_refs, LaneWidth::Scalar))),
    });
    entries.push(Entry {
        name: "hash_lanes/sha256_batch_x8",
        ns_per_op: time(|| black_box(digest_batch::<Sha256>(&lane_msg_refs, LaneWidth::X8))),
    });

    // The same knob one layer up: a serial Merkle build whose levels go
    // through the lane kernels vs the scalar pair digest. Roots must be
    // bit-identical at every width (and to the plain build above).
    let lane_tree_leaves = leaves(if quick { 1 << 10 } else { 1 << 14 });
    let lane_root = |width: LaneWidth| {
        MerkleTree::<Sha256>::build_with(&lane_tree_leaves, Parallelism::serial(), width)
            .unwrap()
            .root()
    };
    for width in [LaneWidth::X4, LaneWidth::X8] {
        if lane_root(width) != lane_root(LaneWidth::Scalar) {
            eprintln!("DIVERGENCE: merkle root at lane width {width} != scalar");
            divergence = true;
        }
    }
    entries.push(Entry {
        name: "merkle_lanes/sha256_build_scalar",
        ns_per_op: time(|| black_box(lane_root(LaneWidth::Scalar))),
    });
    entries.push(Entry {
        name: "merkle_lanes/sha256_build_x8",
        ns_per_op: time(|| black_box(lane_root(LaneWidth::X8))),
    });

    let proof_tree = MerkleTree::<Sha256>::build(&leaves(proof_n)).unwrap();
    let proof_root = proof_tree.root();
    let proof_leaf = proof_tree.leaf(proof_n / 3).unwrap().to_vec();
    let proof = proof_tree.prove(proof_n / 3).unwrap();
    entries.push(Entry {
        name: "merkle_proofs/prove",
        ns_per_op: time(|| black_box(proof_tree.prove(proof_n / 3).unwrap())),
    });
    entries.push(Entry {
        name: "merkle_proofs/verify",
        ns_per_op: time(|| black_box(proof.verify(&proof_root, &proof_leaf))),
    });
    let root16 = [0xABu8; 16];
    let ledger = CostLedger::new();
    let g100 = IteratedHash::<Md5>::new(100);
    entries.push(Entry {
        name: "ni_sample_derivation/m50_k100",
        ns_per_op: time(|| black_box(derive_samples(&g100, &root16, 50, 1 << 20, &ledger))),
    });
    let task = PasswordSearch::with_hidden_password(1, 2);
    let provider = |x: u64| task.compute(x);
    entries.push(Entry {
        name: "partial_tree/build_ell7",
        ns_per_op: time(|| {
            black_box(
                PartialMerkleTree::<Sha256>::build(proof_n, task.output_width(), 7, provider)
                    .unwrap()
                    .root(),
            )
        }),
    });
    let e2e_task = PasswordSearch::with_hidden_password(1, 7);
    let e2e_screener = e2e_task.match_screener();
    entries.push(Entry {
        name: "scheme_e2e/cbs_full",
        ns_per_op: time(|| {
            black_box(
                run_cbs::<Sha256, _, _, _>(
                    &e2e_task,
                    &e2e_screener,
                    Domain::new(0, e2e_n),
                    &HonestWorker,
                    ParticipantStorage::Full,
                    &CbsConfig {
                        task_id: 1,
                        samples: 32,
                        seed: 2,
                        report_audit: 0,
                    },
                )
                .unwrap(),
            )
        }),
    });

    // --- PR 3 tentpole: the session engine over the broker transport. ---
    // One CBS round, legacy in-process path vs engine-multiplexed over a
    // relaying broker: the verdict, the supervisor's byte counts and both
    // cost ledgers must agree bit for bit, and we record what the
    // brokered indirection costs in wall-clock terms.
    let legacy_round = run_cbs::<Sha256, _, _, _>(
        &e2e_task,
        &e2e_screener,
        Domain::new(0, e2e_n),
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 0,
            samples: 32,
            seed: 2,
            report_audit: 0,
        },
    )
    .unwrap();
    let engine_scheme = CbsScheme {
        samples: 32,
        seed: 2,
        report_audit: 0,
    };
    let engine_fleet = |transport: FleetTransport, members: usize| {
        let specs: Vec<MemberSpec<'_, Sha256>> = (0..members)
            .map(|_| MemberSpec {
                scheme: &engine_scheme,
                behaviours: vec![&HonestWorker as &dyn WorkerBehaviour],
            })
            .collect();
        run_mixed_fleet(
            &e2e_task,
            &e2e_screener,
            Domain::new(0, e2e_n * members as u64),
            &specs,
            &MixedFleetConfig {
                transport,
                ..MixedFleetConfig::default()
            },
        )
        .unwrap()
    };
    let brokered = engine_fleet(FleetTransport::Brokered, 1);
    let engine_round = &brokered.members[0].outcome;
    if engine_round.verdict != legacy_round.verdict
        || engine_round.supervisor_link != legacy_round.supervisor_link
        || engine_round.supervisor_costs != legacy_round.supervisor_costs
        || engine_round.participant_costs != legacy_round.participant_costs
    {
        eprintln!("DIVERGENCE: engine-over-broker CBS round != legacy in-process round");
        divergence = true;
    }
    entries.push(Entry {
        name: "scheme_e2e/cbs_engine_brokered",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Brokered, 1))),
    });
    entries.push(Entry {
        name: "engine/brokered_fleet_x4",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Brokered, 4))),
    });
    entries.push(Entry {
        name: "engine/direct_fleet_x4",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Direct, 4))),
    });

    // --- PR 7 tentpole: the crash-durable campaign journal. The same
    // 4-member direct fleet with every round written ahead to a
    // checksummed journal before the supervisor acts on it: the outcome
    // must be bit-identical to the unjournaled run, and the measured
    // entry (vs engine/direct_fleet_x4) is what durability costs.
    let journal_file =
        std::env::temp_dir().join(format!("ugc-bench-journal-{}.wal", std::process::id()));
    let durable_fleet = || {
        let specs: Vec<MemberSpec<'_, Sha256>> = (0..4)
            .map(|_| MemberSpec {
                scheme: &engine_scheme,
                behaviours: vec![&HonestWorker as &dyn WorkerBehaviour],
            })
            .collect();
        let config = MixedFleetConfig {
            transport: FleetTransport::Direct,
            ..MixedFleetConfig::default()
        };
        let domain = Domain::new(0, e2e_n * 4);
        let header = CampaignHeader::for_campaign(&specs, domain, &config, Vec::new());
        // JournalWriter::create truncates, so every iteration journals
        // from scratch — the measured cost is a full durable campaign.
        let mut campaign =
            DurableCampaign::create(&journal_file, header, CrashPlan::never()).unwrap();
        run_durable_fleet(
            &e2e_task,
            &e2e_screener,
            domain,
            &specs,
            &config,
            &mut campaign,
        )
        .unwrap()
    };
    if soak_digest(&durable_fleet()) != soak_digest(&engine_fleet(FleetTransport::Direct, 4)) {
        eprintln!("DIVERGENCE: journaled fleet != unjournaled fleet");
        divergence = true;
    }
    entries.push(Entry {
        name: "journal_overhead/durable_fleet_x4",
        ns_per_op: time(|| black_box(durable_fleet())),
    });
    let _ = std::fs::remove_file(&journal_file);

    // --- PR 4 tentpole: the chaos soak over the thread-per-participant
    // runtime. Ten participant OS threads, five schemes, seeded faults
    // and churn; the campaign must replay bit-identically, and its
    // wall-clock throughput is the soak baseline CI tracks.
    let soak_n: u64 = if quick { 64 } else { 256 };
    let soak = run_soak(soak_n);
    let soak_replay = run_soak(soak_n);
    if soak_digest(&soak) != soak_digest(&soak_replay) {
        eprintln!("DIVERGENCE: chaos soak did not replay bit-identically from its seed");
        divergence = true;
    }
    if soak.members.iter().any(|m| !m.outcome.accepted) {
        eprintln!("DIVERGENCE: an honest soak participant was rejected");
        divergence = true;
    }
    entries.push(Entry {
        name: "engine/chaos_soak_x10",
        ns_per_op: time(|| black_box(run_soak(soak_n))),
    });

    // --- PR 5/PR 8 tentpole: the work-stealing scheduler at scale. A
    // thousand participant slots multiplexed over a fixed pool; the
    // outcome must be bit-identical at every worker count {1, 4, 8}
    // *and* under every work-stealing victim order (both are
    // scheduling, never semantics). The 4-worker wall-clock is the
    // scale baseline CI tracks; the steal_scale sweep shows how the
    // per-worker run queues scale with the pool.
    let scale = run_scheduler_scale(4, 0);
    let scale_reference = soak_digest(&scale);
    for (workers, steal_seed) in [(1usize, 0u64), (8, 0), (4, 0xDEAD_BEEF), (8, u64::MAX)] {
        if soak_digest(&run_scheduler_scale(workers, steal_seed)) != scale_reference {
            eprintln!(
                "DIVERGENCE: scheduler-scale campaign at {workers} workers \
                 (steal seed {steal_seed:#x}) differs from 4 workers (seed 0)"
            );
            divergence = true;
        }
    }
    if scale.members.iter().any(|m| !m.outcome.accepted) {
        eprintln!("DIVERGENCE: an honest scheduler-scale participant was rejected");
        divergence = true;
    }
    entries.push(Entry {
        name: "engine/scheduler_scale_1000x4",
        ns_per_op: time(|| black_box(run_scheduler_scale(4, 0))),
    });
    entries.push(Entry {
        name: "engine/steal_scale_1000x1",
        ns_per_op: time(|| black_box(run_scheduler_scale(1, 0))),
    });
    entries.push(Entry {
        name: "engine/steal_scale_1000x8",
        ns_per_op: time(|| black_box(run_scheduler_scale(8, 0))),
    });

    // --- PR 9 tentpole: what the framed TCP wire protocol costs. The
    // same CBS campaign twice — once over the in-process broker, once
    // over a loopback grid (`GridServer` + joiner threads around real
    // TCP sockets, the path `ugc broker serve` / `participant join` /
    // `fleet --connect` runs). The digests must be bit-identical (the
    // wire is execution layout, never campaign identity), and the pair
    // of entries is the per-campaign price of leaving the process.
    let wire_params = FleetParams {
        participants: 3,
        cheaters: 1,
        n: if quick { 240 } else { 960 },
        m: 8,
        seed: 11,
        scheme: "cbs".into(),
        transport: FleetTransport::Brokered,
        churn: false,
        chaos_seed: None,
    };
    let wire_brokered = || {
        let plan = CampaignPlan::new(wire_params.clone()).expect("wire plan");
        let members = plan.members();
        run_mixed_fleet(
            plan.task(),
            plan.screener(),
            plan.domain(),
            &members,
            &plan.mixed_config(None, 0, LaneWidth::default()),
        )
        .expect("in-process brokered campaign")
    };
    let wire_remote =
        || netgrid::run_remote_campaign(&wire_params, 2).expect("loopback-TCP campaign");
    let wire_local_summary = wire_brokered();
    let wire_remote_summary = wire_remote();
    if summary_digest(&wire_local_summary) != summary_digest(&wire_remote_summary) {
        eprintln!("DIVERGENCE: loopback-TCP campaign digest != in-process brokered digest");
        divergence = true;
    }
    entries.push(Entry {
        name: "wire_overhead/brokered_inprocess",
        ns_per_op: time(|| black_box(wire_brokered())),
    });
    entries.push(Entry {
        name: "wire_overhead/remote_loopback",
        ns_per_op: time(|| black_box(wire_remote())),
    });

    let ratio = |num: &str, den: &str| -> f64 {
        let get = |n: &str| {
            entries
                .iter()
                .find(|e| e.name == n)
                .expect("entry recorded")
                .ns_per_op
        };
        get(num) / get(den)
    };
    let speedups = [
        (
            "merkle_build_parallel_over_serial",
            ratio("merkle_build/sha256_serial", "merkle_build/sha256_parallel"),
        ),
        (
            "streaming_root_parallel_over_serial",
            ratio(
                "merkle_streaming_root/serial",
                "merkle_streaming_root/parallel",
            ),
        ),
        (
            "digest_pair_sha256_fast_over_streaming",
            ratio("digest_pair/sha256_streaming", "digest_pair/sha256_fast"),
        ),
        (
            "digest_pair_md5_fast_over_streaming",
            ratio("digest_pair/md5_streaming", "digest_pair/md5_fast"),
        ),
        (
            "iterated_md5_fast_over_streaming",
            ratio(
                "iterated_hash/md5_k1000_streaming",
                "iterated_hash/md5_k1000_fast",
            ),
        ),
        (
            "sim_sharded_over_serial",
            ratio("sim_fast/serial", "sim_fast/sharded"),
        ),
        (
            "engine_brokered_over_legacy_e2e",
            ratio("scheme_e2e/cbs_full", "scheme_e2e/cbs_engine_brokered"),
        ),
        (
            "engine_direct_over_brokered_fleet",
            ratio("engine/brokered_fleet_x4", "engine/direct_fleet_x4"),
        ),
        // >1 is the WAL's cost per campaign (journaled / unjournaled).
        (
            "journal_overhead_durable_over_direct",
            ratio(
                "journal_overhead/durable_fleet_x4",
                "engine/direct_fleet_x4",
            ),
        ),
        (
            "hash_multiblock_over_streaming",
            ratio(
                "hash_blocks/sha256_streaming",
                "hash_blocks/sha256_multiblock",
            ),
        ),
        // PR 10: what message-parallel lanes buy on hash-bound batches.
        (
            "hash_lanes_md5_iter_x8_over_scalar",
            ratio("hash_lanes/md5_iter_scalar", "hash_lanes/md5_iter_x8"),
        ),
        (
            "hash_lanes_sha256_batch_x8_over_scalar",
            ratio(
                "hash_lanes/sha256_batch_scalar",
                "hash_lanes/sha256_batch_x8",
            ),
        ),
        (
            "merkle_lanes_build_x8_over_scalar",
            ratio(
                "merkle_lanes/sha256_build_scalar",
                "merkle_lanes/sha256_build_x8",
            ),
        ),
        // How the per-worker run queues scale: the 1000-slot campaign on
        // 8 stealing workers vs a single worker.
        (
            "steal_scale_8_workers_over_1",
            ratio("engine/steal_scale_1000x1", "engine/steal_scale_1000x8"),
        ),
        // >1 is the wire's cost per campaign: the same fleet over
        // loopback TCP vs the in-process broker.
        (
            "wire_overhead_remote_over_brokered",
            ratio(
                "wire_overhead/remote_loopback",
                "wire_overhead/brokered_inprocess",
            ),
        ),
    ];

    println!();
    for entry in &entries {
        println!("{:<40} {:>14.1} ns/op", entry.name, entry.ns_per_op);
    }
    println!();
    for (name, value) in &speedups {
        println!("{name:<42} {value:>6.2}x");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"ugc-bench-baseline/v1\",");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"merkle_leaves\": {merkle_n},");
    let _ = writeln!(json, "  \"sim_trials\": {sim_trials},");
    let _ = writeln!(
        json,
        "  \"parallel_outputs_bit_identical\": {},",
        !divergence
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}}}{comma}",
            entry.name, entry.ns_per_op
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (name, value)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {value:.2}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"soak\": {{");
    let _ = writeln!(json, "    \"participant_threads\": 10,");
    let _ = writeln!(json, "    \"sessions\": {},", soak.throughput.sessions);
    let _ = writeln!(json, "    \"bytes\": {},", soak.throughput.bytes);
    let _ = writeln!(
        json,
        "    \"wall_ms\": {:.3},",
        soak.throughput.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"sessions_per_sec\": {:.1},",
        soak.throughput.sessions_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"bytes_per_sec\": {:.1},",
        soak.throughput.bytes_per_sec()
    );
    let _ = writeln!(json, "    \"fault_events\": {},", soak.fault_events.len());
    let _ = writeln!(
        json,
        "    \"session_attempts\": {}",
        soak.members
            .iter()
            .map(|m| u64::from(m.attempts))
            .sum::<u64>()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"wire_overhead\": {{");
    let _ = writeln!(json, "    \"participants\": 3,");
    let _ = writeln!(json, "    \"joiner_processes\": 2,");
    let _ = writeln!(
        json,
        "    \"brokered_sessions_per_sec\": {:.1},",
        wire_local_summary.throughput.sessions_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"remote_sessions_per_sec\": {:.1},",
        wire_remote_summary.throughput.sessions_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"digests_bit_identical\": {}",
        summary_digest(&wire_local_summary) == summary_digest(&wire_remote_summary)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"scheduler_scale\": {{");
    let _ = writeln!(json, "    \"participants\": 1000,");
    let _ = writeln!(json, "    \"workers\": 4,");
    let _ = writeln!(json, "    \"members\": {},", scale.members.len());
    let _ = writeln!(json, "    \"sessions\": {},", scale.throughput.sessions);
    let _ = writeln!(json, "    \"bytes\": {},", scale.throughput.bytes);
    let _ = writeln!(
        json,
        "    \"wall_ms\": {:.3},",
        scale.throughput.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"sessions_per_sec\": {:.1},",
        scale.throughput.sessions_per_sec()
    );
    let _ = writeln!(json, "    \"fault_events\": {},", scale.fault_events.len());
    let _ = writeln!(
        json,
        "    \"session_attempts\": {}",
        scale
            .members
            .iter()
            .map(|m| u64::from(m.attempts))
            .sum::<u64>()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write baseline JSON");
    println!("\nwrote {out_path}");
    println!("soak: {}", soak.throughput);
    println!(
        "scheduler scale (1000 slots / 4 workers): {}",
        scale.throughput
    );

    // The trajectory gate: a workload shared with the baseline must not
    // be more than GATE_REGRESSION_FACTOR slower than it was there.
    let mut gate_failed = false;
    if let Some(path) = compare_path {
        let baseline_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let this_mode = if quick { "quick" } else { "full" };
        let baseline_mode = parse_baseline_mode(&baseline_text)
            .unwrap_or_else(|| panic!("baseline {path} has no mode field"));
        assert_eq!(
            baseline_mode, this_mode,
            "baseline {path} was recorded in {baseline_mode} mode but this run \
             is {this_mode}: the sizes differ, so the gate would be meaningless"
        );
        let baseline = parse_baseline(&baseline_text);
        assert!(
            !baseline.is_empty(),
            "baseline {path} contains no parsable entries"
        );
        println!("\ntrajectory vs {path} (gate: {GATE_REGRESSION_FACTOR:.1}x):");
        for (name, old_ns) in &baseline {
            let Some(entry) = entries.iter().find(|e| e.name == *name) else {
                continue; // workload retired since the baseline
            };
            let ratio = entry.ns_per_op / old_ns;
            let verdict = if ratio > GATE_REGRESSION_FACTOR {
                gate_failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("{name:<40} {ratio:>6.2}x {verdict}");
        }
    }

    if divergence {
        eprintln!("FAILED: parallel and serial outputs diverged");
        std::process::exit(1);
    }
    if gate_failed {
        eprintln!(
            "FAILED: a workload regressed more than {GATE_REGRESSION_FACTOR:.1}x \
             against the baseline"
        );
        std::process::exit(1);
    }
}
