//! Records the performance baseline: runs the workloads behind the six
//! criterion benches plus the PR 2 serial-vs-parallel comparisons and the
//! PR 3 session-engine workloads, and writes the measurements to a JSON
//! file so the perf trajectory can be compared across PRs.
//!
//! Every serial/parallel pair is checked for **bit-identical output**
//! (roots, Monte-Carlo counts), and the PR 3 engine-over-broker round is
//! checked bit-identical to the legacy in-process round (verdict, bytes,
//! ledgers); any divergence fails the run with a non-zero exit code,
//! which is what the CI quick-mode step keys off.
//!
//! Run: `cargo run --release -p ugc-bench --bin bench_report`
//! (`--quick` shrinks sizes for CI; `--out PATH` overrides
//! `BENCH_pr3.json`).

use criterion::{black_box, Bencher};
use std::fmt::Write as _;
use ugc_core::sampling::derive_samples;
use ugc_core::scheme::cbs::{run_cbs, CbsConfig, CbsScheme};
use ugc_core::{run_mixed_fleet, FleetTransport, MemberSpec, MixedFleetConfig, ParticipantStorage};
use ugc_grid::{CostLedger, HonestWorker, WorkerBehaviour};
use ugc_hash::{
    streaming_digest_iterated, streaming_digest_pair, HashFunction, IteratedHash, Md5, Sha256,
};
use ugc_merkle::{MerkleTree, Parallelism, PartialMerkleTree, StreamingBuilder};
use ugc_sim::{
    estimate_cheat_success_fast, estimate_cheat_success_fast_parallel, DetectionExperiment,
};
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, Domain};

/// One measured workload.
struct Entry {
    name: &'static str,
    ns_per_op: f64,
}

/// Median-of-N ns/op through the vendored smoke-timer.
fn time<O>(routine: impl FnMut() -> O) -> f64 {
    let mut bencher = Bencher::default();
    bencher.iter(routine);
    bencher.median_ns_per_iter().expect("measured")
}

fn leaves(n: u64) -> Vec<[u8; 16]> {
    (0..n)
        .map(|x| {
            let mut leaf = [0u8; 16];
            leaf[..8].copy_from_slice(&x.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            leaf
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_pr3.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let parallelism = Parallelism::default();
    let threads = parallelism.get();
    let merkle_n: u64 = if quick { 1 << 12 } else { 1 << 16 };
    let proof_n: u64 = if quick { 1 << 10 } else { 1 << 14 };
    let hash_bytes: usize = if quick { 4096 } else { 65536 };
    let sim_trials: u32 = if quick { 2_000 } else { 20_000 };
    let e2e_n: u64 = if quick { 1 << 8 } else { 1 << 12 };
    println!(
        "bench_report: mode={} threads={threads} merkle_leaves={merkle_n} sim_trials={sim_trials}",
        if quick { "quick" } else { "full" }
    );

    let mut entries: Vec<Entry> = Vec::new();
    let mut divergence = false;

    // --- Tentpole 1: Merkle construction, serial vs parallel. ---
    let data = leaves(merkle_n);
    let serial_tree = MerkleTree::<Sha256>::build(&data).unwrap();
    let parallel_tree = MerkleTree::<Sha256>::build_parallel(&data, parallelism).unwrap();
    if serial_tree.root() != parallel_tree.root() {
        eprintln!("DIVERGENCE: parallel merkle root != serial root");
        divergence = true;
    }
    entries.push(Entry {
        name: "merkle_build/sha256_serial",
        ns_per_op: time(|| black_box(MerkleTree::<Sha256>::build(&data).unwrap().root())),
    });
    entries.push(Entry {
        name: "merkle_build/sha256_parallel",
        ns_per_op: time(|| {
            black_box(
                MerkleTree::<Sha256>::build_parallel(&data, parallelism)
                    .unwrap()
                    .root(),
            )
        }),
    });
    let (streamed_root, _) = StreamingBuilder::<Sha256>::parallel_root(&data, parallelism).unwrap();
    if streamed_root != serial_tree.root() {
        eprintln!("DIVERGENCE: streaming parallel root != serial root");
        divergence = true;
    }
    entries.push(Entry {
        name: "merkle_streaming_root/serial",
        ns_per_op: time(|| {
            let mut builder: StreamingBuilder<Sha256> = StreamingBuilder::new();
            for leaf in &data {
                builder.push(leaf).unwrap();
            }
            black_box(builder.finalize().unwrap())
        }),
    });
    entries.push(Entry {
        name: "merkle_streaming_root/parallel",
        ns_per_op: time(|| {
            black_box(
                StreamingBuilder::<Sha256>::parallel_root(&data, parallelism)
                    .unwrap()
                    .0,
            )
        }),
    });

    // --- Tentpole 2: digest fast paths vs the generic streaming path. ---
    let left32 = [0x11u8; 32];
    let right32 = [0x22u8; 32];
    if Sha256::digest_pair(&left32, &right32) != streaming_digest_pair::<Sha256>(&left32, &right32)
    {
        eprintln!("DIVERGENCE: sha256 digest_pair fast path != streaming");
        divergence = true;
    }
    entries.push(Entry {
        name: "digest_pair/sha256_fast",
        ns_per_op: time(|| black_box(Sha256::digest_pair(&left32, &right32))),
    });
    entries.push(Entry {
        name: "digest_pair/sha256_streaming",
        ns_per_op: time(|| black_box(streaming_digest_pair::<Sha256>(&left32, &right32))),
    });
    entries.push(Entry {
        name: "digest_pair/md5_fast",
        ns_per_op: time(|| black_box(Md5::digest_pair(&left32[..16], &right32[..16]))),
    });
    entries.push(Entry {
        name: "digest_pair/md5_streaming",
        ns_per_op: time(|| black_box(streaming_digest_pair::<Md5>(&left32[..16], &right32[..16]))),
    });
    let g = IteratedHash::<Md5>::new(1000);
    if g.apply(b"seed") != streaming_digest_iterated::<Md5>(b"seed", 1000) {
        eprintln!("DIVERGENCE: md5 digest_iterated fast path != streaming");
        divergence = true;
    }
    entries.push(Entry {
        name: "iterated_hash/md5_k1000_fast",
        ns_per_op: time(|| black_box(g.apply(b"seed"))),
    });
    entries.push(Entry {
        name: "iterated_hash/md5_k1000_streaming",
        ns_per_op: time(|| black_box(streaming_digest_iterated::<Md5>(b"seed", 1000))),
    });

    // --- Tentpole 3: Monte-Carlo trials, serial vs sharded. ---
    let exp = DetectionExperiment {
        domain_size: 0,
        samples: 14,
        honesty_ratio: 0.5,
        guess_quality: 0.0,
        trials: sim_trials,
        seed: 0x00be_2c47,
    };
    let serial_est = estimate_cheat_success_fast(&exp);
    let sharded_est = estimate_cheat_success_fast_parallel(&exp, parallelism);
    if serial_est.successes != sharded_est.successes {
        eprintln!(
            "DIVERGENCE: sharded Monte-Carlo counts {} != serial {}",
            sharded_est.successes, serial_est.successes
        );
        divergence = true;
    }
    entries.push(Entry {
        name: "sim_fast/serial",
        ns_per_op: time(|| black_box(estimate_cheat_success_fast(&exp).successes)),
    });
    entries.push(Entry {
        name: "sim_fast/sharded",
        ns_per_op: time(|| {
            black_box(estimate_cheat_success_fast_parallel(&exp, parallelism).successes)
        }),
    });

    // --- The remaining criterion-bench workloads. ---
    let hash_data = vec![0xA5u8; hash_bytes];
    entries.push(Entry {
        name: "hash_throughput/sha256",
        ns_per_op: time(|| black_box(Sha256::digest(&hash_data))),
    });
    let proof_tree = MerkleTree::<Sha256>::build(&leaves(proof_n)).unwrap();
    let proof_root = proof_tree.root();
    let proof_leaf = proof_tree.leaf(proof_n / 3).unwrap().to_vec();
    let proof = proof_tree.prove(proof_n / 3).unwrap();
    entries.push(Entry {
        name: "merkle_proofs/prove",
        ns_per_op: time(|| black_box(proof_tree.prove(proof_n / 3).unwrap())),
    });
    entries.push(Entry {
        name: "merkle_proofs/verify",
        ns_per_op: time(|| black_box(proof.verify(&proof_root, &proof_leaf))),
    });
    let root16 = [0xABu8; 16];
    let ledger = CostLedger::new();
    let g100 = IteratedHash::<Md5>::new(100);
    entries.push(Entry {
        name: "ni_sample_derivation/m50_k100",
        ns_per_op: time(|| black_box(derive_samples(&g100, &root16, 50, 1 << 20, &ledger))),
    });
    let task = PasswordSearch::with_hidden_password(1, 2);
    let provider = |x: u64| task.compute(x);
    entries.push(Entry {
        name: "partial_tree/build_ell7",
        ns_per_op: time(|| {
            black_box(
                PartialMerkleTree::<Sha256>::build(proof_n, task.output_width(), 7, provider)
                    .unwrap()
                    .root(),
            )
        }),
    });
    let e2e_task = PasswordSearch::with_hidden_password(1, 7);
    let e2e_screener = e2e_task.match_screener();
    entries.push(Entry {
        name: "scheme_e2e/cbs_full",
        ns_per_op: time(|| {
            black_box(
                run_cbs::<Sha256, _, _, _>(
                    &e2e_task,
                    &e2e_screener,
                    Domain::new(0, e2e_n),
                    &HonestWorker,
                    ParticipantStorage::Full,
                    &CbsConfig {
                        task_id: 1,
                        samples: 32,
                        seed: 2,
                        report_audit: 0,
                    },
                )
                .unwrap(),
            )
        }),
    });

    // --- PR 3 tentpole: the session engine over the broker transport. ---
    // One CBS round, legacy in-process path vs engine-multiplexed over a
    // relaying broker: the verdict, the supervisor's byte counts and both
    // cost ledgers must agree bit for bit, and we record what the
    // brokered indirection costs in wall-clock terms.
    let legacy_round = run_cbs::<Sha256, _, _, _>(
        &e2e_task,
        &e2e_screener,
        Domain::new(0, e2e_n),
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 0,
            samples: 32,
            seed: 2,
            report_audit: 0,
        },
    )
    .unwrap();
    let engine_scheme = CbsScheme {
        samples: 32,
        seed: 2,
        report_audit: 0,
    };
    let engine_fleet = |transport: FleetTransport, members: usize| {
        let specs: Vec<MemberSpec<'_, Sha256>> = (0..members)
            .map(|_| MemberSpec {
                scheme: &engine_scheme,
                behaviours: vec![&HonestWorker as &dyn WorkerBehaviour],
            })
            .collect();
        run_mixed_fleet(
            &e2e_task,
            &e2e_screener,
            Domain::new(0, e2e_n * members as u64),
            &specs,
            &MixedFleetConfig {
                transport,
                ..MixedFleetConfig::default()
            },
        )
        .unwrap()
    };
    let brokered = engine_fleet(FleetTransport::Brokered, 1);
    let engine_round = &brokered.members[0].outcome;
    if engine_round.verdict != legacy_round.verdict
        || engine_round.supervisor_link != legacy_round.supervisor_link
        || engine_round.supervisor_costs != legacy_round.supervisor_costs
        || engine_round.participant_costs != legacy_round.participant_costs
    {
        eprintln!("DIVERGENCE: engine-over-broker CBS round != legacy in-process round");
        divergence = true;
    }
    entries.push(Entry {
        name: "scheme_e2e/cbs_engine_brokered",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Brokered, 1))),
    });
    entries.push(Entry {
        name: "engine/brokered_fleet_x4",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Brokered, 4))),
    });
    entries.push(Entry {
        name: "engine/direct_fleet_x4",
        ns_per_op: time(|| black_box(engine_fleet(FleetTransport::Direct, 4))),
    });

    let ratio = |num: &str, den: &str| -> f64 {
        let get = |n: &str| {
            entries
                .iter()
                .find(|e| e.name == n)
                .expect("entry recorded")
                .ns_per_op
        };
        get(num) / get(den)
    };
    let speedups = [
        (
            "merkle_build_parallel_over_serial",
            ratio("merkle_build/sha256_serial", "merkle_build/sha256_parallel"),
        ),
        (
            "streaming_root_parallel_over_serial",
            ratio(
                "merkle_streaming_root/serial",
                "merkle_streaming_root/parallel",
            ),
        ),
        (
            "digest_pair_sha256_fast_over_streaming",
            ratio("digest_pair/sha256_streaming", "digest_pair/sha256_fast"),
        ),
        (
            "digest_pair_md5_fast_over_streaming",
            ratio("digest_pair/md5_streaming", "digest_pair/md5_fast"),
        ),
        (
            "iterated_md5_fast_over_streaming",
            ratio(
                "iterated_hash/md5_k1000_streaming",
                "iterated_hash/md5_k1000_fast",
            ),
        ),
        (
            "sim_sharded_over_serial",
            ratio("sim_fast/serial", "sim_fast/sharded"),
        ),
        (
            "engine_brokered_over_legacy_e2e",
            ratio("scheme_e2e/cbs_full", "scheme_e2e/cbs_engine_brokered"),
        ),
        (
            "engine_direct_over_brokered_fleet",
            ratio("engine/brokered_fleet_x4", "engine/direct_fleet_x4"),
        ),
    ];

    println!();
    for entry in &entries {
        println!("{:<40} {:>14.1} ns/op", entry.name, entry.ns_per_op);
    }
    println!();
    for (name, value) in &speedups {
        println!("{name:<42} {value:>6.2}x");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"ugc-bench-baseline/v1\",");
    let _ = writeln!(json, "  \"pr\": 3,");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"merkle_leaves\": {merkle_n},");
    let _ = writeln!(json, "  \"sim_trials\": {sim_trials},");
    let _ = writeln!(
        json,
        "  \"parallel_outputs_bit_identical\": {},",
        !divergence
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}}}{comma}",
            entry.name, entry.ns_per_op
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (name, value)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {value:.2}{comma}");
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write baseline JSON");
    println!("\nwrote {out_path}");

    if divergence {
        eprintln!("FAILED: parallel and serial outputs diverged");
        std::process::exit(1);
    }
}
