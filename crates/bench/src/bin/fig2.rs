//! Regenerates **Figure 2** of the paper: required sample size `m` vs
//! honesty ratio `r`, for `q = 0` and `q = 0.5`, at `ε = 10⁻⁴`.
//!
//! The paper's figure is analytic (Eq. 3). This binary prints the same
//! series and *additionally* validates each point empirically: at the
//! computed `m`, a Monte-Carlo sweep confirms the cheat-success rate is
//! consistent with `ε` (its 99% Wilson interval must admit the Eq. 2
//! value).
//!
//! Run: `cargo run --release -p ugc-bench --bin fig2`

#![forbid(unsafe_code)]

use ugc_core::analysis::{cheat_success_probability, required_sample_size};
use ugc_sim::{
    estimate_cheat_success_fast_parallel, wilson_interval, DetectionExperiment, Parallelism, Table,
};

fn main() {
    const EPSILON: f64 = 1e-4;
    const TRIALS: u32 = 200_000;
    // 200k trials per grid cell: shard them over every available core
    // (bit-identical to the serial sweep).
    let parallelism = Parallelism::default();

    println!("Figure 2 — required sample size vs honesty ratio (ε = {EPSILON:.0e})");
    println!("Paper anchors: r=0.5,q=0.5 → 33 samples; r=0.5,q≈0 → 14 samples.\n");

    let mut table = Table::new([
        "r",
        "m (q=0)",
        "m (q=0.5)",
        "Eq2(q=0)",
        "MC rate(q=0)",
        "Eq2(q=0.5)",
        "MC rate(q=0.5)",
        "ok",
    ]);

    let mut all_ok = true;
    for r10 in 1..=9u32 {
        let r = f64::from(r10) / 10.0;
        let mut row: Vec<String> = vec![format!("{r:.1}")];
        let mut cells = Vec::new();
        let mut point_ok = true;
        for q in [0.0, 0.5] {
            let m = required_sample_size(EPSILON, r, q).expect("r < 1 always has a finite m");
            let theory = cheat_success_probability(r, q, m);
            let est = estimate_cheat_success_fast_parallel(
                &DetectionExperiment {
                    domain_size: 0,
                    samples: m as usize,
                    honesty_ratio: r,
                    guess_quality: q,
                    trials: TRIALS,
                    seed: 0x0f16_2000 ^ (u64::from(r10) * 131) ^ ((q * 10.0) as u64 * 7919),
                },
                parallelism,
            );
            // 99.99% Wilson band: 18 independent cells must all pass, so
            // per-cell acceptance needs a low false-alarm rate.
            let (lo, hi) = wilson_interval(u64::from(est.successes), u64::from(TRIALS), 3.89);
            let lo = if est.successes == 0 { 0.0 } else { lo };
            point_ok &= lo <= theory && theory <= hi && theory <= EPSILON;
            cells.push((m, theory, est.rate));
        }
        row.push(cells[0].0.to_string());
        row.push(cells[1].0.to_string());
        row.push(format!("{:.2e}", cells[0].1));
        row.push(format!("{:.2e}", cells[0].2));
        row.push(format!("{:.2e}", cells[1].1));
        row.push(format!("{:.2e}", cells[1].2));
        row.push(if point_ok { "✓" } else { "✗" }.to_string());
        all_ok &= point_ok;
        table.push(row);
    }
    print!("{table}");
    println!();
    println!(
        "Each Monte-Carlo rate is over {TRIALS} trials; `ok` requires the \
         99.99% Wilson interval to contain the Eq. 2 value and Eq. 3's m to \
         push it below ε."
    );
    println!(
        "\nOverall: {}",
        if all_ok {
            "REPRODUCED — shape and anchors match the paper"
        } else {
            "MISMATCH — see rows flagged ✗"
        }
    );
}
