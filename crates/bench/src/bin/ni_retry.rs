//! Regenerates the **Section 4.2 analysis**: the NI-CBS retry attack and
//! the Eq. (5) hardening that prices it out.
//!
//! Part 1 measures the attack: a semi-honest cheater re-rolls one
//! uncommitted leaf (incremental `O(log n)` tree updates) until the
//! self-derived samples all land in its honest subset. Expected attempts:
//! `r^{-m}`.
//!
//! Part 2 prices the defence: Eq. (5) demands
//! `(1/r^m)·m·C_g ≥ n·C_f`; we compute the minimal `g = MD5^k` hardness
//! and verify the measured attack cost crosses the task cost there.
//!
//! Note an implementation finding recorded in EXPERIMENTS.md: a practical
//! attacker can *early-exit* sample derivation at the first escaping
//! sample, paying ≈`1/(1−r)` chain elements per attempt instead of the
//! paper's `m`; Eq. (5)'s margin shrinks accordingly but the exponential
//! `r^{-m}` attempt count — the real defence — is unchanged.
//!
//! Run: `cargo run --release -p ugc-bench --bin ni_retry`

#![forbid(unsafe_code)]

use ugc_core::analysis::{min_g_cost_for_uncheatability, ni_attack_cost, ni_expected_attempts};
use ugc_core::scheme::ni_cbs::{retry_attack, RetryAttackConfig, RetryAttackOutcome};
use ugc_grid::{CheatSelection, SemiHonestCheater};
use ugc_hash::Md5;
use ugc_sim::{Summary, Table};
use ugc_task::workloads::PasswordSearch;
use ugc_task::{Domain, ZeroGuesser};

const N: u64 = 1 << 12;
const RUNS: u64 = 40;

fn main() {
    println!("Section 4.2 — the NI-CBS retry attack (n = 2^12, {RUNS} runs/cell)\n");

    let task = PasswordSearch::with_hidden_password(3, 9);
    let mut table = Table::new([
        "r",
        "m",
        "E[attempts] r^-m",
        "measured mean",
        "measured sd",
        "g-hashes/run",
        "tree-hashes/run",
    ]);
    for &(r, m) in &[(0.5f64, 4usize), (0.5, 8), (0.7, 8), (0.9, 8), (0.9, 16)] {
        let mut attempts = Vec::new();
        let mut g_hashes = Vec::new();
        let mut tree_hashes = Vec::new();
        for seed in 0..RUNS {
            let cheater = SemiHonestCheater::new(
                r,
                CheatSelection::Prefix,
                ZeroGuesser::new(seed ^ 0x5eed),
                seed,
            );
            let outcome: RetryAttackOutcome = retry_attack::<Md5, _, _>(
                &task,
                Domain::new(0, N),
                &cheater,
                &RetryAttackConfig {
                    samples: m,
                    g_iterations: 1,
                    max_attempts: 50_000_000,
                },
            )
            .expect("attack runs");
            assert!(outcome.succeeded, "attack must succeed with this budget");
            attempts.push(outcome.attempts as f64);
            g_hashes.push(outcome.g_unit_hashes as f64);
            tree_hashes.push(outcome.tree_hashes as f64);
        }
        let s = Summary::of(&attempts);
        table.push([
            format!("{r:.1}"),
            m.to_string(),
            format!("{:.0}", ni_expected_attempts(r, m as u64)),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.std_dev()),
            format!("{:.0}", Summary::of(&g_hashes).mean),
            format!("{:.0}", Summary::of(&tree_hashes).mean),
        ]);
    }
    print!("{table}");

    println!("\nEq. (5) — minimal hardened-g cost C_g (unit hashes) so that");
    println!("expected attack cost (1/r^m)·m·C_g exceeds the task cost n·C_f:\n");
    let mut eq5 = Table::new([
        "n",
        "r",
        "m",
        "C_g(min) = n·C_f·r^m/m",
        "attack cost @C_g(min)",
        "task cost n·C_f",
    ]);
    for &(bits, r, m) in &[
        (20u32, 0.9f64, 20u64),
        (20, 0.9, 50),
        (30, 0.9, 50),
        (30, 0.99, 50),
        (40, 0.9, 50),
    ] {
        let n = 1u64 << bits;
        let c_f = 1u64;
        let c_g = min_g_cost_for_uncheatability(r, m, n, c_f).ceil() as u64;
        let c_g = c_g.max(1);
        eq5.push([
            format!("2^{bits}"),
            format!("{r}"),
            m.to_string(),
            c_g.to_string(),
            format!("{:.2e}", ni_attack_cost(r, m, c_g)),
            format!("{:.2e}", n as f64 * c_f as f64),
        ]);
    }
    print!("{eq5}");

    println!("\nMeasured crossover (n = 2^12, r = 0.5, m = 8, C_f = 1):");
    println!(
        "(marginal attack cost: g-chain hashes + incremental tree updates,\n\
         excluding the commitment build an honest participant also pays)\n"
    );
    let mut cross = Table::new([
        "g hardness k",
        "marginal attack hashes",
        "vs task cost",
        "Eq.5 predicts uneconomical",
    ]);
    for k in [1u64, 8, 64, 512] {
        let mut total = 0u64;
        for seed in 0..8u64 {
            let cheater = SemiHonestCheater::new(
                0.5,
                CheatSelection::Prefix,
                ZeroGuesser::new(seed ^ 0xc0),
                seed,
            );
            let outcome = retry_attack::<Md5, _, _>(
                &task,
                Domain::new(0, N),
                &cheater,
                &RetryAttackConfig {
                    samples: 8,
                    g_iterations: k,
                    max_attempts: 10_000_000,
                },
            )
            .expect("attack runs");
            total += outcome.marginal_cost();
        }
        let mean = total as f64 / 8.0;
        cross.push([
            k.to_string(),
            format!("{mean:.0}"),
            format!("{:.2}× task", mean / N as f64),
            ni_attack_cost(0.5, 8, k).ge(&(N as f64)).to_string(),
        ]);
    }
    print!("{cross}");
    println!(
        "\nShape reproduced: attempts grow as r^-m; hardening g multiplies the\n\
         attack's hash bill linearly in k until it dwarfs honestly computing the task.\n\
         Note the early-exit effect on the margin (see EXPERIMENTS.md): the attacker\n\
         pays ≈1/(1−r) chain elements per attempt, not m, so the measured bill sits\n\
         below the paper's m·C_g accounting by that factor."
    );
}
