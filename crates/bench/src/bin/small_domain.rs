//! Demonstrates the paper's **Section 5 open problem**: CBS degrades as
//! `|D|` shrinks. "When |D| = 1 … the cost of verifying a sample is as
//! expensive as conducting the task. Therefore, the scheme is no better
//! than the naive double-check-every-result scheme."
//!
//! We sweep the per-participant domain size downward at fixed sample count
//! and report the supervisor's verification work as a fraction of the
//! task — the quantity that explodes to ≥ 1 at tiny domains — plus the
//! commitment overhead per useful result.
//!
//! Run: `cargo run --release -p ugc-bench --bin small_domain`

#![forbid(unsafe_code)]

use ugc_core::scheme::cbs::{run_cbs, CbsConfig};
use ugc_core::ParticipantStorage;
use ugc_grid::HonestWorker;
use ugc_hash::Sha256;
use ugc_sim::Table;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, Domain};

fn main() {
    println!("Section 5 — CBS efficiency collapses on small per-participant domains\n");
    let task = PasswordSearch::with_hidden_password(11, 0);
    let screener = task.match_screener();

    let mut table = Table::new([
        "n per task",
        "m used",
        "sup f-evals",
        "sup/task ratio",
        "commit hashes",
        "bytes moved",
        "bytes/task-byte",
    ]);
    for bits in [14u32, 10, 6, 3, 1, 0] {
        let n = 1u64 << bits;
        // The supervisor cannot sample more than is useful; m caps at n.
        let m = 20usize.min(n as usize);
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, n),
            &HonestWorker,
            ParticipantStorage::Full,
            &CbsConfig {
                task_id: 1,
                samples: m,
                seed: 5,
                report_audit: 0,
            },
        )
        .expect("round runs");
        assert!(outcome.accepted);
        let task_cost = n * task.unit_cost();
        let ratio = outcome.supervisor_costs.f_evals as f64 / task_cost as f64;
        let moved = outcome.supervisor_link.bytes_received + outcome.supervisor_link.bytes_sent;
        table.push([
            n.to_string(),
            m.to_string(),
            outcome.supervisor_costs.f_evals.to_string(),
            format!("{ratio:.2}"),
            outcome.participant_costs.hash_ops.to_string(),
            moved.to_string(),
            format!("{:.1}", moved as f64 / (n * 16) as f64),
        ]);
    }
    print!("{table}");
    println!(
        "\nShape reproduced: at n = 2^14 the supervisor re-does ~0.1% of the task;\n\
         at n = 1 it re-does 100% — exactly the naive double-check, as §5 observes.\n\
         Efficient verification for tiny |D| is the paper's stated open problem."
    );
}
