//! Regenerates the paper's **implicit scheme comparison** (Sections 1–4):
//! every verification scheme on the same workload, same domain, same
//! verification strength, with measured costs on every axis.
//!
//! This is the table a practitioner would use to pick a scheme — the
//! "who wins, by what factor" summary of the whole paper.
//!
//! Run: `cargo run --release -p ugc-bench --bin schemes`

#![forbid(unsafe_code)]

use ugc_core::scheme::cbs::{run_cbs, CbsConfig};
use ugc_core::scheme::double_check::{run_double_check, DoubleCheckConfig};
use ugc_core::scheme::naive::{run_naive, NaiveConfig};
use ugc_core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use ugc_core::scheme::ringer::{run_ringer, RingerConfig};
use ugc_core::{ParticipantStorage, RoundOutcome};
use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
use ugc_hash::Sha256;
use ugc_sim::Table;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{Domain, ZeroGuesser};

const N_BITS: u32 = 12;
const N: u64 = 1 << N_BITS;
const M: usize = 50;

fn cheater(seed: u64) -> SemiHonestCheater<ZeroGuesser> {
    SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(seed), seed)
}

fn main() {
    println!(
        "Scheme comparison — n = 2^{N_BITS}, m = {M} samples (d = {M} ringers), honest worker\n"
    );
    let task = PasswordSearch::with_hidden_password(5, 77);
    let screener = task.match_screener();
    let domain = Domain::new(0, N);

    let naive = run_naive(
        &task,
        &screener,
        domain,
        &HonestWorker,
        &NaiveConfig {
            task_id: 1,
            samples: M,
            seed: 4,
        },
    )
    .expect("naive");
    let double = run_double_check(
        &task,
        &screener,
        domain,
        &HonestWorker,
        &HonestWorker,
        &DoubleCheckConfig { task_id: 2 },
    )
    .expect("double-check");
    let cbs = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &HonestWorker,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 3,
            samples: M,
            seed: 4,
            report_audit: 0,
        },
    )
    .expect("cbs");
    let cbs_partial = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &HonestWorker,
        ParticipantStorage::Partial { subtree_height: 6 },
        &CbsConfig {
            task_id: 4,
            samples: M,
            seed: 4,
            report_audit: 0,
        },
    )
    .expect("cbs partial");
    let ni = run_ni_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &HonestWorker,
        ParticipantStorage::Full,
        &NiCbsConfig {
            task_id: 5,
            samples: M,
            g_iterations: 1,
            report_audit: 0,
            audit_seed: 0,
        },
    )
    .expect("ni-cbs");
    let ringer = run_ringer(
        &task,
        &screener,
        domain,
        &HonestWorker,
        &RingerConfig {
            task_id: 6,
            ringers: M,
            seed: 4,
        },
    )
    .expect("ringer");

    let mut table = Table::new([
        "scheme",
        "sup→part B",
        "part→sup B",
        "sup f-evals",
        "part f-evals",
        "part hashes",
        "rounds",
        "accepted",
    ]);
    let mut row = |name: &str, o: &RoundOutcome| {
        table.push([
            name.to_string(),
            o.supervisor_link.bytes_sent.to_string(),
            o.supervisor_link.bytes_received.to_string(),
            o.supervisor_costs.f_evals.to_string(),
            o.participant_costs.f_evals.to_string(),
            o.participant_costs.hash_ops.to_string(),
            o.supervisor_link.messages_sent.to_string(),
            o.accepted.to_string(),
        ]);
    };
    row("double-check", &double);
    row("naive-sampling", &naive);
    row("ringer", &ringer);
    row("CBS", &cbs);
    row("CBS (ℓ=6 partial)", &cbs_partial);
    row("NI-CBS", &ni);
    print!("{table}");

    println!("\nDetection spot-check — same grid against a 50%-honest cheater:");
    let mut det = Table::new(["scheme", "verdict on r=0.5 cheater"]);
    let c = cheater(9);
    let naive_c = run_naive(
        &task,
        &screener,
        domain,
        &c,
        &NaiveConfig {
            task_id: 11,
            samples: M,
            seed: 4,
        },
    )
    .expect("naive cheat");
    let cbs_c = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &c,
        ParticipantStorage::Full,
        &CbsConfig {
            task_id: 12,
            samples: M,
            seed: 4,
            report_audit: 0,
        },
    )
    .expect("cbs cheat");
    let ni_c = run_ni_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &c,
        ParticipantStorage::Full,
        &NiCbsConfig {
            task_id: 13,
            samples: M,
            g_iterations: 1,
            report_audit: 0,
            audit_seed: 0,
        },
    )
    .expect("ni cheat");
    let ringer_c = run_ringer(
        &task,
        &screener,
        domain,
        &c,
        &RingerConfig {
            task_id: 14,
            ringers: M,
            seed: 4,
        },
    )
    .expect("ringer cheat");
    let double_c = run_double_check(
        &task,
        &screener,
        domain,
        &HonestWorker,
        &c,
        &DoubleCheckConfig { task_id: 15 },
    )
    .expect("double cheat");
    det.push(["double-check (1 honest)", &double_c.verdict.to_string()]);
    det.push(["naive-sampling", &naive_c.verdict.to_string()]);
    det.push(["ringer", &ringer_c.verdict.to_string()]);
    det.push(["CBS", &cbs_c.verdict.to_string()]);
    det.push(["NI-CBS", &ni_c.verdict.to_string()]);
    print!("{det}");

    println!(
        "\nShape reproduced: the naive schemes upload O(n) bytes; CBS and NI-CBS\n\
         cut the participant upload to O(m log n) at equal detection power; the\n\
         ringer scheme is cheapest on the wire but needs a one-way f and charges\n\
         the supervisor d full evaluations; double-check burns 2× the grid cycles."
    );
}
