//! Regenerates the **Section 3.3 / Fig. 3 storage trade-off**: storing the
//! Merkle tree only down to level `H − ℓ` shrinks storage by `2^ℓ` and
//! costs `O(2^ℓ)` recomputation per sample, for a relative computation
//! overhead of `rco = 2m/S`.
//!
//! We *measure* the recomputed `f` evaluations with a counting task — the
//! numbers in the "measured rco" column are actual call counts, not the
//! formula — then extrapolate to the paper's anchor (task of size `2⁴⁰`,
//! 4G of storage, `m = 64` → `rco = 2⁻²⁵`).
//!
//! Run: `cargo run --release -p ugc-bench --bin rco`

#![forbid(unsafe_code)]

use ugc_core::analysis::rco;
use ugc_hash::Sha256;
use ugc_merkle::{MerkleTree, PartialMerkleTree, RebuildStats};
use ugc_sim::Table;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, CountingTask};

fn main() {
    const HEIGHT: u32 = 16;
    const N: u64 = 1 << HEIGHT;
    const M: u64 = 64;

    println!("Section 3.3 / Fig. 3 — partial-storage Merkle tree (n = 2^{HEIGHT}, m = {M})\n");

    let task = CountingTask::new(PasswordSearch::with_hidden_password(7, 3));
    let full: MerkleTree<Sha256> =
        MerkleTree::from_leaf_fn(N, task.output_width(), |x| task.compute(x))
            .expect("full tree builds");
    let full_root = full.root();
    task.counter().reset();

    let mut table = Table::new([
        "ℓ",
        "stored nodes S",
        "storage bytes",
        "f-evals/proof (2^ℓ)",
        "measured rco",
        "formula 2m/S",
        "roots match",
    ]);

    for ell in [1u32, 2, 4, 6, 8, 10, 12] {
        let provider = |x: u64| task.compute(x);
        let partial: PartialMerkleTree<Sha256> =
            PartialMerkleTree::build(N, task.output_width(), ell, provider)
                .expect("partial tree builds");
        task.counter().reset();
        let mut total = RebuildStats::default();
        for k in 0..M {
            // Deterministic spread of samples across the domain.
            let index = (k * 0x9e37_79b9) % N;
            let (proof, stats) = partial
                .prove_with(index, provider)
                .expect("partial proof generates");
            assert!(proof.verify(&full_root, &task.compute(index)));
            total.absorb(stats);
        }
        let measured_rco = total.leaves_recomputed as f64 / N as f64;
        let s = partial.paper_storage_units();
        table.push([
            ell.to_string(),
            s.to_string(),
            partial.stored_bytes().to_string(),
            (1u64 << ell).to_string(),
            format!("{measured_rco:.3e}"),
            format!("{:.3e}", rco(M, s)),
            (partial.root() == full_root).to_string(),
        ]);
    }
    print!("{table}");

    println!("\nExtrapolation via rco = 2m/S (independent of |D| — the paper's point):");
    let mut extra = Table::new(["task size |D|", "storage units S", "m", "rco"]);
    for (d, s, m) in [
        (30u32, 1u64 << 22, 64u64),
        (40, 1 << 32, 64),
        (40, 1 << 22, 64),
        (64, 1 << 32, 64),
    ] {
        extra.push([
            format!("2^{d}"),
            format!("2^{}", s.trailing_zeros()),
            m.to_string(),
            format!("2^{:.0}", rco(m, s).log2()),
        ]);
    }
    print!("{extra}");
    println!(
        "\nPaper anchor reproduced: |D| = 2^40 with 4G (2^32) storage and m = 64 → rco = 2^-25,\n\
         and the rco column is identical for |D| = 2^30 and 2^64 at equal S."
    );
}
