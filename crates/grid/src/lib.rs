//! Grid-computing simulator for the Uncheatable Grid Computing reproduction.
//!
//! The paper's claims are about *protocol costs* — who sends how many bytes
//! (`O(n)` for naive sampling vs `O(m log n)` for CBS) and who performs how
//! much computation — and about *detection probabilities* against defined
//! cheating behaviours. This crate provides the substrate those experiments
//! run on:
//!
//! * [`Message`] and the [`codec`] — a compact, hand-rolled wire format, so
//!   measured byte counts are the protocol's own, not a serializer's.
//! * [`Endpoint`] / [`duplex`] — in-memory links that count every byte and
//!   message in both directions (the evaluation's network substitute; see
//!   DESIGN.md for why this preserves the paper's measured quantities).
//! * [`CostLedger`] — per-actor accounting of `f` evaluations, hash
//!   operations, sample-generator (`g`) evaluations and traffic.
//! * [`WorkerBehaviour`] and friends — the honest participant, the
//!   semi-honest cheater with honesty ratio `r` and guess quality `q`
//!   (Section 2.2), and the malicious result-corrupter.
//! * [`Broker`] — a GRACE-style Grid Resource Broker that hides
//!   participants from the supervisor (the Section 4 motivation for the
//!   non-interactive scheme).
//! * [`runtime`] — the thread-per-participant runtime: one OS thread per
//!   participant behind the broker, each link optionally decorated with
//!   seeded, bit-replayable fault injection ([`FaultPlan`]).
//! * [`wire`] / [`tcp`] — the cross-process backend: the same frames over
//!   real sockets, charged identically to the in-memory links so a
//!   campaign spanning OS processes produces bit-identical digests.
//!
//! # Examples
//!
//! ```
//! use ugc_grid::{duplex, Message};
//!
//! let (sup, part) = duplex();
//! sup.send(&Message::Challenge { task_id: 1, samples: vec![3, 5, 8] })?;
//! let msg = part.recv()?;
//! assert!(matches!(msg, Message::Challenge { task_id: 1, .. }));
//! assert_eq!(sup.stats().messages_sent, 1);
//! assert!(sup.stats().bytes_sent > 0);
//! # Ok::<(), ugc_grid::GridError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod behaviour;
mod broker;
pub mod codec;
mod error;
mod ledger;
mod message;
pub mod runtime;
pub mod tcp;
mod transport;
pub mod wire;

pub use backoff::{Backoff, BackoffPolicy};
pub use behaviour::{
    CheatSelection, HonestWorker, MaliciousWorker, SemiHonestCheater, WorkerBehaviour,
};
pub use broker::{Broker, RelayStats};
pub use error::GridError;
pub use ledger::{CostLedger, CostReport, Throughput};
pub use message::{Assignment, Message, SampleProof};
pub use runtime::{FaultEvent, FaultPlan, FaultyEndpoint, GridScheduler, GridTask, TaskPoll};
pub use tcp::{ControlHandle, TcpLink};
pub use transport::{duplex, Endpoint, GridLink, LinkStats, FRAME_HEADER_BYTES};
