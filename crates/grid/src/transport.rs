//! In-memory, byte-accounted message transport.
//!
//! Every frame that crosses a link is encoded to its wire form and its
//! length (plus a fixed 4-byte frame header, as a TCP-style length prefix
//! would add) is charged to both endpoints' counters. Experiments read
//! those counters; nothing is estimated.

use crate::{GridError, Message};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-endpoint traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Bytes sent from this endpoint (encoded frames + frame headers).
    pub bytes_sent: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
    /// Messages sent from this endpoint.
    pub messages_sent: u64,
    /// Messages received by this endpoint.
    pub messages_received: u64,
}

/// Frame-header overhead charged per message (a 4-byte length prefix).
pub const FRAME_HEADER_BYTES: u64 = 4;

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    messages: AtomicU64,
}

/// One side of a bidirectional, byte-counted link.
///
/// Create pairs with [`duplex`]. Endpoints are `Send`, so the two sides can
/// live on different threads; channels are unbounded, so single-threaded
/// request/response protocols cannot deadlock.
#[derive(Debug)]
pub struct Endpoint {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    outbound: Arc<Counters>,
    inbound: Arc<Counters>,
}

/// Creates a connected pair of endpoints.
///
/// # Examples
///
/// ```
/// use ugc_grid::{duplex, Message};
///
/// let (a, b) = duplex();
/// a.send(&Message::Verdict { task_id: 1, accepted: true })?;
/// assert!(matches!(b.recv()?, Message::Verdict { .. }));
/// # Ok::<(), ugc_grid::GridError>(())
/// ```
#[must_use]
pub fn duplex() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let a = Endpoint {
        tx: tx_ab,
        rx: rx_ba,
        outbound: Arc::new(Counters::default()),
        inbound: Arc::new(Counters::default()),
    };
    let b = Endpoint {
        tx: tx_ba,
        rx: rx_ab,
        outbound: Arc::new(Counters::default()),
        inbound: Arc::new(Counters::default()),
    };
    (a, b)
}

impl Endpoint {
    /// Sends a message, charging its wire size to this endpoint.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] if the peer has been dropped.
    pub fn send(&self, msg: &Message) -> Result<(), GridError> {
        self.send_counted(msg).map(|_| ())
    }

    /// [`send`](Self::send), returning the bytes charged (encoded frame
    /// plus header) so a multiplexer can attribute traffic per session
    /// without re-encoding the message.
    ///
    /// # Errors
    ///
    /// As [`send`](Self::send).
    pub fn send_counted(&self, msg: &Message) -> Result<u64, GridError> {
        let frame = msg.encode();
        let charged = frame.len() as u64 + FRAME_HEADER_BYTES;
        self.tx.send(frame).map_err(|_| GridError::Disconnected)?;
        self.outbound.bytes.fetch_add(charged, Ordering::Relaxed);
        self.outbound.messages.fetch_add(1, Ordering::Relaxed);
        Ok(charged)
    }

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// * [`GridError::Disconnected`] if the peer has been dropped with no
    ///   queued messages.
    /// * Codec errors if the frame is malformed.
    pub fn recv(&self) -> Result<Message, GridError> {
        self.recv_counted().map(|(msg, _)| msg)
    }

    /// [`recv`](Self::recv), returning the bytes charged alongside the
    /// message.
    ///
    /// # Errors
    ///
    /// As [`recv`](Self::recv).
    pub fn recv_counted(&self) -> Result<(Message, u64), GridError> {
        let frame = self.rx.recv().map_err(|_| GridError::Disconnected)?;
        self.account_inbound(&frame);
        let charged = frame.len() as u64 + FRAME_HEADER_BYTES;
        Message::decode(&frame).map(|msg| (msg, charged))
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// * [`GridError::Empty`] if no message is queued.
    /// * [`GridError::Disconnected`] if the peer is gone.
    /// * Codec errors if the frame is malformed.
    pub fn try_recv(&self) -> Result<Message, GridError> {
        self.try_recv_counted().map(|(msg, _)| msg)
    }

    /// [`try_recv`](Self::try_recv), returning the bytes charged alongside
    /// the message.
    ///
    /// # Errors
    ///
    /// As [`try_recv`](Self::try_recv).
    pub fn try_recv_counted(&self) -> Result<(Message, u64), GridError> {
        let frame = match self.rx.try_recv() {
            Ok(frame) => frame,
            Err(TryRecvError::Empty) => return Err(GridError::Empty),
            Err(TryRecvError::Disconnected) => return Err(GridError::Disconnected),
        };
        self.account_inbound(&frame);
        let charged = frame.len() as u64 + FRAME_HEADER_BYTES;
        Message::decode(&frame).map(|msg| (msg, charged))
    }

    fn account_inbound(&self, frame: &[u8]) {
        self.inbound
            .bytes
            .fetch_add(frame.len() as u64 + FRAME_HEADER_BYTES, Ordering::Relaxed);
        self.inbound.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Traffic counters for this endpoint.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            bytes_sent: self.outbound.bytes.load(Ordering::Relaxed),
            bytes_received: self.inbound.bytes.load(Ordering::Relaxed),
            messages_sent: self.outbound.messages.load(Ordering::Relaxed),
            messages_received: self.inbound.messages.load(Ordering::Relaxed),
        }
    }
}

/// One side of a bidirectional message link, abstracted so protocol
/// drivers run identically over a raw [`Endpoint`] or a decorated one
/// (e.g. the fault-injecting
/// [`FaultyEndpoint`](crate::runtime::FaultyEndpoint)).
///
/// The `*_counted` methods return the bytes charged for the frame (wire
/// length plus header) so multiplexers can attribute traffic without
/// re-encoding; `send`/`recv`/`try_recv` are provided conveniences.
pub trait GridLink: Send {
    /// Sends a message, returning the bytes charged.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] if the peer has been dropped.
    fn send_counted(&self, msg: &Message) -> Result<u64, GridError>;

    /// Receives the next message (blocking), with the bytes charged.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] once nothing can arrive any more, or
    /// codec errors for malformed frames.
    fn recv_counted(&self) -> Result<(Message, u64), GridError>;

    /// Receives without blocking, with the bytes charged.
    ///
    /// # Errors
    ///
    /// [`GridError::Empty`] if no message is queued; otherwise as
    /// [`recv_counted`](Self::recv_counted).
    fn try_recv_counted(&self) -> Result<(Message, u64), GridError>;

    /// Traffic counters for this link (wire-level truth: what actually
    /// crossed, after any decoration).
    fn stats(&self) -> LinkStats;

    /// Sends a message, discarding the byte count.
    ///
    /// # Errors
    ///
    /// As [`send_counted`](Self::send_counted).
    fn send(&self, msg: &Message) -> Result<(), GridError> {
        self.send_counted(msg).map(|_| ())
    }

    /// Receives the next message (blocking).
    ///
    /// # Errors
    ///
    /// As [`recv_counted`](Self::recv_counted).
    fn recv(&self) -> Result<Message, GridError> {
        self.recv_counted().map(|(msg, _)| msg)
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// As [`try_recv_counted`](Self::try_recv_counted).
    fn try_recv(&self) -> Result<Message, GridError> {
        self.try_recv_counted().map(|(msg, _)| msg)
    }
}

impl GridLink for Endpoint {
    fn send_counted(&self, msg: &Message) -> Result<u64, GridError> {
        Endpoint::send_counted(self, msg)
    }

    fn recv_counted(&self) -> Result<(Message, u64), GridError> {
        Endpoint::recv_counted(self)
    }

    fn try_recv_counted(&self) -> Result<(Message, u64), GridError> {
        Endpoint::try_recv_counted(self)
    }

    fn stats(&self) -> LinkStats {
        Endpoint::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;
    use ugc_task::Domain;

    #[test]
    fn roundtrip_and_counters() {
        let (a, b) = duplex();
        let msg = Message::Commit {
            task_id: 9,
            root: vec![1; 32],
        };
        a.send(&msg).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got, msg);
        let expected = msg.wire_len() + FRAME_HEADER_BYTES;
        assert_eq!(a.stats().bytes_sent, expected);
        assert_eq!(a.stats().messages_sent, 1);
        assert_eq!(b.stats().bytes_received, expected);
        assert_eq!(b.stats().messages_received, 1);
        assert_eq!(b.stats().bytes_sent, 0);
    }

    #[test]
    fn bidirectional_counts_are_separate() {
        let (a, b) = duplex();
        let m1 = Message::Verdict {
            task_id: 1,
            accepted: true,
        };
        let m2 = Message::Challenge {
            task_id: 1,
            samples: vec![1, 2, 3, 4],
        };
        a.send(&m1).unwrap();
        b.send(&m2).unwrap();
        let _ = a.recv().unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.stats().bytes_sent, m1.wire_len() + FRAME_HEADER_BYTES);
        assert_eq!(a.stats().bytes_received, m2.wire_len() + FRAME_HEADER_BYTES);
    }

    #[test]
    fn try_recv_empty() {
        let (a, _b) = duplex();
        assert_eq!(a.try_recv().unwrap_err(), GridError::Empty);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(
            a.send(&Message::Verdict {
                task_id: 1,
                accepted: false
            })
            .unwrap_err(),
            GridError::Disconnected
        );
        assert_eq!(a.recv().unwrap_err(), GridError::Disconnected);
    }

    #[test]
    fn queued_messages_survive_peer_drop() {
        let (a, b) = duplex();
        a.send(&Message::Verdict {
            task_id: 3,
            accepted: true,
        })
        .unwrap();
        drop(a);
        assert!(matches!(b.recv().unwrap(), Message::Verdict { .. }));
        assert_eq!(b.recv().unwrap_err(), GridError::Disconnected);
    }

    #[test]
    fn cross_thread_exchange() {
        let (sup, part) = duplex();
        let handle = std::thread::spawn(move || {
            // Participant: echo assignments back as commits.
            while let Ok(msg) = part.recv() {
                if let Message::Assign(a) = msg {
                    part.send(&Message::Commit {
                        task_id: a.task_id,
                        root: vec![0xAB; 32],
                    })
                    .unwrap();
                }
            }
            part.stats()
        });
        for id in 0..5u64 {
            sup.send(&Message::Assign(Assignment {
                task_id: id,
                domain: Domain::new(0, 16),
            }))
            .unwrap();
            let reply = sup.recv().unwrap();
            assert_eq!(reply.task_id(), id);
        }
        drop(sup);
        let part_stats = handle.join().unwrap();
        assert_eq!(part_stats.messages_sent, 5);
        assert_eq!(part_stats.messages_received, 5);
    }

    #[test]
    fn message_order_preserved() {
        let (a, b) = duplex();
        for i in 0..10u64 {
            a.send(&Message::Verdict {
                task_id: i,
                accepted: true,
            })
            .unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(b.recv().unwrap().task_id(), i);
        }
    }
}
