//! A GRACE-style Grid Resource Broker (GRB).
//!
//! Section 4 of the paper motivates the non-interactive CBS scheme with the
//! GRACE architecture (Buyya 2002): the supervisor hands bulk work to a
//! broker and never talks to participants directly, so the commit →
//! challenge round-trip of interactive CBS is unavailable. This broker
//! relays assignments outward and results inward, and its relay counters
//! demonstrate that NI-CBS needs exactly one participant → supervisor
//! delivery per task.
//!
//! Routing is indexed: the broker keeps an ordered `task → participant`
//! map, so relaying a reply is one `O(log n)` probe regardless of how many
//! tasks are in flight — the property a session engine multiplexing
//! hundreds of concurrent verification sessions depends on. The map is a
//! `BTreeMap` rather than a `HashMap` deliberately: when a participant
//! dies, every task still routed to it is NACKed, and an ordered map makes
//! that NACK order ascending by construction — one less place where
//! unspecified iteration order could leak into the supervisor-visible
//! message sequence. Inward relay is round-robin fair: a rotating cursor
//! guarantees no chatty participant can starve another.

use crate::{Backoff, Endpoint, GridError, GridLink, Message};
use std::collections::BTreeMap;

/// Relay statistics for a broker run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Messages relayed supervisor → participant.
    pub outward: u64,
    /// Messages relayed participant → supervisor.
    pub inward: u64,
}

/// A store-and-forward broker between one supervisor and many participants.
///
/// The broker pins each task to the participant it dispatched it to and
/// routes replies by routing id ([`Message::session_id`]: the envelope's
/// session id when present, the task id otherwise); the supervisor never
/// learns which participant served which task (the paper's "GRB hides the
/// participants" property).
#[derive(Debug)]
pub struct Broker<L: GridLink = Endpoint> {
    supervisor: L,
    participants: Vec<L>,
    /// routing id → participant index; ordered so route iteration (the
    /// death-NACK sweep) is deterministic by construction.
    routes: BTreeMap<u64, usize>,
    /// Next participant to receive a fresh assignment (round-robin).
    next: usize,
    /// Next participant polled for inward traffic (fairness cursor).
    inward_cursor: usize,
    /// Participants observed disconnected with their queues drained.
    closed: Vec<bool>,
    stats: RelayStats,
}

impl<L: GridLink> Broker<L> {
    /// Creates a broker with its supervisor-side link and participant links.
    ///
    /// The broker is generic over the link type: the in-process runtime
    /// relays between [`Endpoint`]s, while `ugc broker serve` runs the
    /// identical relay over [`TcpLink`](crate::TcpLink)s.
    ///
    /// # Panics
    ///
    /// Panics if no participants are supplied.
    #[must_use]
    pub fn new(supervisor: L, participants: Vec<L>) -> Self {
        assert!(
            !participants.is_empty(),
            "broker needs at least one participant"
        );
        let closed = vec![false; participants.len()];
        Broker {
            supervisor,
            participants,
            routes: BTreeMap::new(),
            next: 0,
            inward_cursor: 0,
            closed,
            stats: RelayStats::default(),
        }
    }

    /// Number of connected participants.
    #[must_use]
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Adds a freshly connected participant (a late joiner or a
    /// reconnect) as a round-robin target for future assignments, and
    /// returns its index. Tasks NACKed when a predecessor died are *not*
    /// replayed — the supervisor's retry round reassigns them, which is
    /// how reconnect-with-NACK composes with [`Message::Gone`].
    pub fn add_participant(&mut self, link: L) -> usize {
        self.participants.push(link);
        self.closed.push(false);
        self.participants.len() - 1
    }

    /// Relay statistics so far.
    #[must_use]
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    fn route_of(&self, routing_id: u64) -> Option<usize> {
        self.routes.get(&routing_id).copied()
    }

    /// Marks participant `idx` gone and NACKs every task still routed to
    /// it with a [`Message::Gone`], so a multiplexing supervisor can fail
    /// those sessions instead of waiting forever. Errors sending the NACK
    /// (supervisor also gone) are ignored — there is nobody left to tell.
    fn mark_gone(&mut self, idx: usize) {
        if std::mem::replace(&mut self.closed[idx], true) {
            return; // already reported
        }
        // Ascending task-id order falls out of the BTreeMap — no
        // compensating sort needed for the NACKs to be deterministic.
        let orphaned: Vec<u64> = self
            .routes
            .iter()
            .filter(|(_, &i)| i == idx)
            .map(|(&id, _)| id)
            .collect();
        for task_id in orphaned {
            self.routes.remove(&task_id);
            let _ = self.supervisor.send(&Message::Gone { task_id });
        }
    }

    /// Picks the destination for one supervisor message: assignments pin a
    /// fresh round-robin route (skipping participants known to be gone),
    /// everything else follows its recorded one.
    fn dispatch(&mut self, msg: &Message) -> Result<usize, GridError> {
        if msg.as_assign().is_some() {
            let n = self.participants.len();
            let mut idx = self.next;
            for _ in 0..n {
                idx = self.next;
                self.next = (self.next + 1) % n;
                if !self.closed[idx] {
                    break;
                }
                // Everyone may be gone; then the send-failure path NACKs.
            }
            self.routes.insert(msg.session_id(), idx);
            Ok(idx)
        } else {
            self.route_of(msg.session_id()).ok_or(GridError::Empty)
        }
    }

    /// Receives `count` messages from the supervisor and dispatches each to
    /// a participant: assignments round-robin, other messages (verdicts,
    /// challenges) by the recorded route.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`GridError::Empty`] if a non-assignment
    /// message references an unknown task.
    pub fn relay_outward(&mut self, count: usize) -> Result<(), GridError> {
        for _ in 0..count {
            let msg = self.supervisor.recv()?;
            let idx = self.dispatch(&msg)?;
            self.participants[idx].send(&msg)?;
            self.stats.outward += 1;
        }
        Ok(())
    }

    /// Relays one queued supervisor message if any is waiting; `Ok(false)`
    /// when the supervisor queue is momentarily empty. A message routed to
    /// an already-disconnected participant is dropped (and the task
    /// NACKed with [`Message::Gone`]) rather than treated as fatal, as a
    /// store-and-forward broker drops mail for a dead host.
    ///
    /// # Errors
    ///
    /// As [`Broker::relay_outward`] for unroutable messages, plus
    /// [`GridError::Disconnected`] once the *supervisor* endpoint is gone.
    pub fn try_relay_outward(&mut self) -> Result<bool, GridError> {
        let msg = match self.supervisor.try_recv() {
            Ok(msg) => msg,
            Err(GridError::Empty) => return Ok(false),
            Err(e) => return Err(e),
        };
        let idx = self.dispatch(&msg)?;
        match self.participants[idx].send(&msg) {
            Ok(()) => self.stats.outward += 1,
            Err(GridError::Disconnected) => {
                // NACK this task explicitly first: mark_gone is a no-op on
                // a participant already reported gone, but this message's
                // route may be brand new (an Assign that raced the death).
                self.routes.remove(&msg.session_id());
                let _ = self.supervisor.send(&Message::Gone {
                    task_id: msg.session_id(),
                });
                self.mark_gone(idx);
            }
            Err(e) => return Err(e),
        }
        Ok(true)
    }

    /// Relays the next message from participant `idx` up to the supervisor.
    ///
    /// # Errors
    ///
    /// Transport errors from either side.
    pub fn relay_inward_from(&mut self, idx: usize) -> Result<Message, GridError> {
        let msg = self.participants[idx].recv()?;
        self.supervisor.send(&msg)?;
        self.stats.inward += 1;
        Ok(msg)
    }

    /// Relays one inbound message for routing id `task_id` (from whichever
    /// participant owns it). The lookup is a single ordered-map probe.
    ///
    /// # Errors
    ///
    /// [`GridError::Empty`] if the task has no recorded route, otherwise
    /// transport errors.
    pub fn relay_inward_for(&mut self, task_id: u64) -> Result<Message, GridError> {
        let idx = self.route_of(task_id).ok_or(GridError::Empty)?;
        self.relay_inward_from(idx)
    }

    /// Relays at most one queued participant message, polling participants
    /// round-robin from a rotating cursor so every participant gets equal
    /// service under load. Returns the relayed message, or `None` if no
    /// participant had anything queued.
    ///
    /// # Errors
    ///
    /// Transport errors from the supervisor side; a disconnected
    /// participant is skipped (its queued messages were already drained).
    pub fn try_relay_inward(&mut self) -> Result<Option<Message>, GridError> {
        let n = self.participants.len();
        for probe in 0..n {
            let idx = (self.inward_cursor + probe) % n;
            match self.participants[idx].try_recv() {
                Ok(msg) => {
                    // Advance past the served participant: strict rotation.
                    self.inward_cursor = (idx + 1) % n;
                    self.supervisor.send(&msg)?;
                    self.stats.inward += 1;
                    return Ok(Some(msg));
                }
                Err(GridError::Empty) => {}
                Err(GridError::Disconnected) => self.mark_gone(idx),
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Drives the broker until the supervisor has hung up and all queued
    /// traffic is drained: relays both directions, backing off the core
    /// when momentarily idle. Messages addressed to an
    /// already-disconnected peer are dropped (the task NACKed), as a real
    /// store-and-forward broker would drop mail for a dead host; once the
    /// supervisor is gone, undeliverable inward mail is likewise dropped —
    /// and once the outward queue is drained too, the pump returns, which
    /// closes the participant links and lets blocked participants observe
    /// the disconnect.
    ///
    /// This is the pump a session engine runs on its own thread while it
    /// multiplexes sessions over the supervisor link.
    #[must_use]
    pub fn pump_until_closed(mut self) -> RelayStats {
        // The supervisor hanging up is observed separately per direction,
        // and the two sightings mean different things. Outward:
        // `try_relay_outward` reports `Disconnected` only once the
        // supervisor's queue is fully drained (a channel reports closure
        // only when empty), so nothing can still need relaying down.
        // Inward: a failed supervisor send says replies have nowhere to
        // go — but verdicts the engine queued *before* hanging up may
        // still be waiting on the outward side, and abandoning them would
        // make each participant's final inbound message (and with it the
        // fault log) a race between the engine's last sends and the
        // round's teardown. So the inward sighting silences only the
        // inward direction; the pump keeps draining outward until that
        // side reports closure itself.
        let mut outward_drained = false;
        let mut inward_dead = false;
        let mut backoff = Backoff::new();
        loop {
            let mut progress = false;
            if !outward_drained {
                match self.try_relay_outward() {
                    Ok(true) => progress = true,
                    Ok(false) => {}
                    Err(GridError::Disconnected) => outward_drained = true,
                    // Unroutable mail is dropped, not fatal.
                    Err(_) => progress = true,
                }
            }
            if !inward_dead {
                match self.try_relay_inward() {
                    Ok(Some(_)) => progress = true,
                    Ok(None) => {}
                    Err(GridError::Disconnected) => {
                        // Supervisor gone: inward mail has nowhere to go.
                        inward_dead = true;
                    }
                    Err(_) => progress = true,
                }
            }
            if progress {
                backoff.reset();
            } else {
                // With the supervisor gone and its outward queue drained,
                // nothing the broker could still relay is deliverable:
                // exiting drops the participant links, which is what
                // unblocks any participant still waiting on an orphaned
                // session. (Once the outward side reports closure, the
                // next inward attempt fails its send and the loop falls
                // through to here.)
                if outward_drained {
                    return self.stats;
                }
                // Long idle (peers are computing): escalate from spinning
                // to sleeping so a soak run doesn't burn a core, but snap
                // back to hot polling the moment traffic resumes.
                backoff.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{duplex, Assignment};
    use ugc_task::Domain;

    /// Builds a supervisor endpoint, a broker, and participant endpoints.
    fn rig(n: usize) -> (Endpoint, Broker, Vec<Endpoint>) {
        let (sup, broker_up) = duplex();
        let mut broker_down = Vec::new();
        let mut parts = Vec::new();
        for _ in 0..n {
            let (b, p) = duplex();
            broker_down.push(b);
            parts.push(p);
        }
        (sup, Broker::new(broker_up, broker_down), parts)
    }

    fn assign(task_id: u64) -> Message {
        Message::Assign(Assignment {
            task_id,
            domain: Domain::new(0, 8),
        })
    }

    #[test]
    fn assignments_round_robin() {
        let (sup, mut broker, parts) = rig(3);
        for id in 0..6u64 {
            sup.send(&assign(id)).unwrap();
        }
        broker.relay_outward(6).unwrap();
        for (i, p) in parts.iter().enumerate() {
            let first = p.recv().unwrap();
            let second = p.recv().unwrap();
            assert_eq!(first.task_id(), i as u64);
            assert_eq!(second.task_id(), (i + 3) as u64);
        }
        assert_eq!(broker.stats().outward, 6);
    }

    #[test]
    fn replies_route_back_by_task() {
        let (sup, mut broker, parts) = rig(2);
        sup.send(&assign(10)).unwrap();
        sup.send(&assign(11)).unwrap();
        broker.relay_outward(2).unwrap();
        for p in &parts {
            let Message::Assign(a) = p.recv().unwrap() else {
                panic!("expected assignment")
            };
            p.send(&Message::Commit {
                task_id: a.task_id,
                root: vec![a.task_id as u8; 16],
            })
            .unwrap();
        }
        // Task 11 went to participant 1; relay its reply first.
        let relayed = broker.relay_inward_for(11).unwrap();
        assert_eq!(relayed.task_id(), 11);
        let got = sup.recv().unwrap();
        assert_eq!(got.task_id(), 11);
        let relayed = broker.relay_inward_for(10).unwrap();
        assert_eq!(relayed.task_id(), 10);
        assert_eq!(broker.stats().inward, 2);
    }

    #[test]
    fn verdicts_follow_recorded_route() {
        let (sup, mut broker, parts) = rig(2);
        sup.send(&assign(7)).unwrap();
        broker.relay_outward(1).unwrap();
        let _ = parts[0].recv().unwrap();
        sup.send(&Message::Verdict {
            task_id: 7,
            accepted: true,
        })
        .unwrap();
        broker.relay_outward(1).unwrap();
        assert!(matches!(
            parts[0].recv().unwrap(),
            Message::Verdict { task_id: 7, .. }
        ));
        // Participant 1 must have received nothing.
        assert!(parts[1].try_recv().is_err());
    }

    #[test]
    fn unknown_task_route_fails() {
        let (sup, mut broker, _parts) = rig(1);
        sup.send(&Message::Verdict {
            task_id: 99,
            accepted: false,
        })
        .unwrap();
        assert_eq!(broker.relay_outward(1).unwrap_err(), GridError::Empty);
        assert_eq!(broker.relay_inward_for(99).unwrap_err(), GridError::Empty);
    }

    #[test]
    fn enveloped_assignments_route_by_session_id() {
        // Two sessions with the SAME task id, distinguished only by their
        // envelopes: the broker must keep them on separate participants.
        let (sup, mut broker, parts) = rig(2);
        sup.send(&Message::in_session(100, assign(1))).unwrap();
        sup.send(&Message::in_session(200, assign(1))).unwrap();
        broker.relay_outward(2).unwrap();
        assert_eq!(parts[0].recv().unwrap().session_id(), 100);
        assert_eq!(parts[1].recv().unwrap().session_id(), 200);
        // Replies carry the envelope; each routes back independently.
        for (p, sid) in parts.iter().zip([100u64, 200]) {
            p.send(&Message::in_session(
                sid,
                Message::Commit {
                    task_id: 1,
                    root: vec![sid as u8; 16],
                },
            ))
            .unwrap();
        }
        let first = broker.relay_inward_for(200).unwrap();
        assert_eq!(first.session_id(), 200);
        // And a verdict addressed to session 100 reaches participant 0.
        sup.send(&Message::in_session(
            100,
            Message::Verdict {
                task_id: 1,
                accepted: true,
            },
        ))
        .unwrap();
        broker.relay_outward(1).unwrap();
        assert_eq!(parts[0].recv().unwrap().session_id(), 100);
        assert!(parts[1].try_recv().is_err());
    }

    #[test]
    fn interleaved_multi_session_relay_is_fair_and_indexed() {
        // Four sessions in flight at once, replies arriving interleaved:
        // the rotating cursor must serve every participant each sweep, and
        // indexed routing must deliver each reply regardless of order.
        let (sup, mut broker, parts) = rig(4);
        for id in 0..4u64 {
            sup.send(&assign(id)).unwrap();
        }
        broker.relay_outward(4).unwrap();
        // Every participant queues two replies before any relay happens.
        for (i, p) in parts.iter().enumerate() {
            let _ = p.recv().unwrap();
            for round in 0..2u64 {
                p.send(&Message::Commit {
                    task_id: i as u64,
                    root: vec![round as u8; 8],
                })
                .unwrap();
            }
        }
        // Fair polling: the first full sweep yields one message from each
        // participant (0,1,2,3), not two from participant 0.
        let mut order = Vec::new();
        while let Some(msg) = broker.try_relay_inward().unwrap() {
            order.push(msg.task_id());
        }
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(broker.stats().inward, 8);
        // The supervisor sees all eight, in relay order.
        for expected in [0u64, 1, 2, 3, 0, 1, 2, 3] {
            assert_eq!(sup.recv().unwrap().task_id(), expected);
        }
        // Indexed routing still answers point lookups afterwards.
        parts[2]
            .send(&Message::Reports {
                task_id: 2,
                reports: vec![],
            })
            .unwrap();
        assert_eq!(broker.relay_inward_for(2).unwrap().task_id(), 2);
    }

    #[test]
    fn pump_drains_both_directions_then_exits() {
        let (sup, broker, parts) = rig(2);
        sup.send(&assign(0)).unwrap();
        sup.send(&assign(1)).unwrap();
        let pump = std::thread::spawn(move || broker.pump_until_closed());
        // Participants answer and hang up.
        for p in parts {
            let Message::Assign(a) = p.recv().unwrap() else {
                panic!("expected assignment");
            };
            p.send(&Message::Commit {
                task_id: a.task_id,
                root: vec![0; 16],
            })
            .unwrap();
        }
        let mut seen = [false; 2];
        while seen != [true, true] {
            // The replies may be interleaved with Gone NACKs (the test
            // participants hang up right after answering).
            match sup.recv().unwrap() {
                Message::Commit { task_id, .. } => seen[task_id as usize] = true,
                Message::Gone { .. } => {}
                other => panic!("unexpected relay: {other:?}"),
            }
        }
        drop(sup);
        let stats = pump.join().unwrap();
        assert_eq!(stats.outward, 2);
        assert_eq!(stats.inward, 2);
    }

    #[test]
    fn dead_participant_is_nacked_not_fatal() {
        let (sup, mut broker, parts) = rig(2);
        sup.send(&assign(0)).unwrap();
        sup.send(&assign(1)).unwrap();
        broker.relay_outward(2).unwrap();
        // Participant 0 answers then dies; participant 1 stays healthy.
        let mut parts = parts.into_iter();
        let dead = parts.next().unwrap();
        let alive = parts.next().unwrap();
        let _ = dead.recv().unwrap();
        let _ = alive.recv().unwrap(); // its Assign
        drop(dead);
        // Outward mail for the dead participant is dropped and the task is
        // NACKed; relay keeps serving the healthy one.
        sup.send(&Message::Verdict {
            task_id: 0,
            accepted: true,
        })
        .unwrap();
        sup.send(&Message::Verdict {
            task_id: 1,
            accepted: true,
        })
        .unwrap();
        assert!(broker.try_relay_outward().unwrap()); // dropped + NACK
        assert!(broker.try_relay_outward().unwrap()); // delivered
        assert_eq!(sup.recv().unwrap(), Message::Gone { task_id: 0 });
        assert!(matches!(
            alive.recv().unwrap(),
            Message::Verdict { task_id: 1, .. }
        ));
        // The dead participant's route is gone; re-addressing it errors.
        sup.send(&Message::Verdict {
            task_id: 0,
            accepted: true,
        })
        .unwrap();
        assert_eq!(broker.try_relay_outward().unwrap_err(), GridError::Empty);
        // Fresh assignments skip the dead participant: both land on the
        // healthy one instead of being black-holed.
        sup.send(&assign(7)).unwrap();
        sup.send(&assign(8)).unwrap();
        assert!(broker.try_relay_outward().unwrap());
        assert!(broker.try_relay_outward().unwrap());
        assert_eq!(alive.recv().unwrap().task_id(), 7);
        assert_eq!(alive.recv().unwrap().task_id(), 8);
    }

    #[test]
    fn assign_racing_a_death_is_still_nacked() {
        // Participant 0 is already known gone (reported once); a new Assign
        // that round-robins past every dead participant must still be
        // NACKed rather than silently dropped.
        let (sup, mut broker, parts) = rig(1);
        sup.send(&assign(0)).unwrap();
        broker.relay_outward(1).unwrap();
        drop(parts); // the only participant dies
        sup.send(&Message::Verdict {
            task_id: 0,
            accepted: true,
        })
        .unwrap();
        assert!(broker.try_relay_outward().unwrap()); // first death report
        assert_eq!(sup.recv().unwrap(), Message::Gone { task_id: 0 });
        // Participant 0 is now marked gone; a brand-new task must get its
        // own NACK even though mark_gone already ran for this participant.
        sup.send(&assign(5)).unwrap();
        assert!(broker.try_relay_outward().unwrap());
        assert_eq!(sup.recv().unwrap(), Message::Gone { task_id: 5 });
    }

    #[test]
    fn death_nacks_arrive_in_ascending_task_order() {
        // Regression test for the route-map ordering hazard ugc-lint
        // surfaced: the supervisor-visible NACK sequence after a
        // participant death must not depend on map iteration order.
        // Assignments arrive with deliberately scrambled task ids; all
        // land on the lone participant, which then dies with every task
        // still in flight.
        let (sup, mut broker, parts) = rig(1);
        let scrambled = [23u64, 5, 99, 1, 42, 77, 8, 64, 3, 50];
        for id in scrambled {
            sup.send(&assign(id)).unwrap();
        }
        broker
            .relay_outward(scrambled.len())
            .expect("assignments relay");
        drop(parts); // the participant dies holding all ten tasks
                     // The next inward poll observes the disconnect and NACKs every
                     // orphaned task.
        assert!(broker.try_relay_inward().unwrap().is_none());
        let mut nacked = Vec::new();
        for _ in 0..scrambled.len() {
            match sup.recv().unwrap() {
                Message::Gone { task_id } => nacked.push(task_id),
                other => panic!("expected Gone, got {other:?}"),
            }
        }
        let mut expected = scrambled.to_vec();
        expected.sort_unstable();
        assert_eq!(nacked, expected, "NACK order must be ascending task id");
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn empty_broker_rejected() {
        let (_sup, up) = duplex();
        let _ = Broker::new(up, Vec::new());
    }
}
