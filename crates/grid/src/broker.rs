//! A GRACE-style Grid Resource Broker (GRB).
//!
//! Section 4 of the paper motivates the non-interactive CBS scheme with the
//! GRACE architecture (Buyya 2002): the supervisor hands bulk work to a
//! broker and never talks to participants directly, so the commit →
//! challenge round-trip of interactive CBS is unavailable. This broker
//! relays assignments outward and results inward, and its relay counters
//! demonstrate that NI-CBS needs exactly one participant → supervisor
//! delivery per task.

use crate::{Endpoint, GridError, Message};

/// Relay statistics for a broker run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Messages relayed supervisor → participant.
    pub outward: u64,
    /// Messages relayed participant → supervisor.
    pub inward: u64,
}

/// A store-and-forward broker between one supervisor and many participants.
///
/// The broker pins each task to the participant it dispatched it to and
/// routes replies by task id; the supervisor never learns which participant
/// served which task (the paper's "GRB hides the participants" property).
#[derive(Debug)]
pub struct Broker {
    supervisor: Endpoint,
    participants: Vec<Endpoint>,
    /// task_id → participant index.
    routes: Vec<(u64, usize)>,
    next: usize,
    stats: RelayStats,
}

impl Broker {
    /// Creates a broker with its supervisor-side link and participant links.
    ///
    /// # Panics
    ///
    /// Panics if no participants are supplied.
    #[must_use]
    pub fn new(supervisor: Endpoint, participants: Vec<Endpoint>) -> Self {
        assert!(
            !participants.is_empty(),
            "broker needs at least one participant"
        );
        Broker {
            supervisor,
            participants,
            routes: Vec::new(),
            next: 0,
            stats: RelayStats::default(),
        }
    }

    /// Number of connected participants.
    #[must_use]
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Relay statistics so far.
    #[must_use]
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    fn route_of(&self, task_id: u64) -> Option<usize> {
        self.routes
            .iter()
            .rev()
            .find(|(id, _)| *id == task_id)
            .map(|(_, idx)| *idx)
    }

    /// Receives `count` messages from the supervisor and dispatches each to
    /// a participant: assignments round-robin, other messages (verdicts,
    /// challenges) by the task's recorded route.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`GridError::Empty`] if a non-assignment
    /// message references an unknown task.
    pub fn relay_outward(&mut self, count: usize) -> Result<(), GridError> {
        for _ in 0..count {
            let msg = self.supervisor.recv()?;
            let idx = match &msg {
                Message::Assign(a) => {
                    let idx = self.next;
                    self.next = (self.next + 1) % self.participants.len();
                    self.routes.push((a.task_id, idx));
                    idx
                }
                other => self.route_of(other.task_id()).ok_or(GridError::Empty)?,
            };
            self.participants[idx].send(&msg)?;
            self.stats.outward += 1;
        }
        Ok(())
    }

    /// Relays the next message from participant `idx` up to the supervisor.
    ///
    /// # Errors
    ///
    /// Transport errors from either side.
    pub fn relay_inward_from(&mut self, idx: usize) -> Result<Message, GridError> {
        let msg = self.participants[idx].recv()?;
        self.supervisor.send(&msg)?;
        self.stats.inward += 1;
        Ok(msg)
    }

    /// Relays one inbound message for task `task_id` (from whichever
    /// participant owns it).
    ///
    /// # Errors
    ///
    /// [`GridError::Empty`] if the task has no recorded route, otherwise
    /// transport errors.
    pub fn relay_inward_for(&mut self, task_id: u64) -> Result<Message, GridError> {
        let idx = self.route_of(task_id).ok_or(GridError::Empty)?;
        self.relay_inward_from(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{duplex, Assignment};
    use ugc_task::Domain;

    /// Builds a supervisor endpoint, a broker, and participant endpoints.
    fn rig(n: usize) -> (Endpoint, Broker, Vec<Endpoint>) {
        let (sup, broker_up) = duplex();
        let mut broker_down = Vec::new();
        let mut parts = Vec::new();
        for _ in 0..n {
            let (b, p) = duplex();
            broker_down.push(b);
            parts.push(p);
        }
        (sup, Broker::new(broker_up, broker_down), parts)
    }

    fn assign(task_id: u64) -> Message {
        Message::Assign(Assignment {
            task_id,
            domain: Domain::new(0, 8),
        })
    }

    #[test]
    fn assignments_round_robin() {
        let (sup, mut broker, parts) = rig(3);
        for id in 0..6u64 {
            sup.send(&assign(id)).unwrap();
        }
        broker.relay_outward(6).unwrap();
        for (i, p) in parts.iter().enumerate() {
            let first = p.recv().unwrap();
            let second = p.recv().unwrap();
            assert_eq!(first.task_id(), i as u64);
            assert_eq!(second.task_id(), (i + 3) as u64);
        }
        assert_eq!(broker.stats().outward, 6);
    }

    #[test]
    fn replies_route_back_by_task() {
        let (sup, mut broker, parts) = rig(2);
        sup.send(&assign(10)).unwrap();
        sup.send(&assign(11)).unwrap();
        broker.relay_outward(2).unwrap();
        for p in &parts {
            let Message::Assign(a) = p.recv().unwrap() else {
                panic!("expected assignment")
            };
            p.send(&Message::Commit {
                task_id: a.task_id,
                root: vec![a.task_id as u8; 16],
            })
            .unwrap();
        }
        // Task 11 went to participant 1; relay its reply first.
        let relayed = broker.relay_inward_for(11).unwrap();
        assert_eq!(relayed.task_id(), 11);
        let got = sup.recv().unwrap();
        assert_eq!(got.task_id(), 11);
        let relayed = broker.relay_inward_for(10).unwrap();
        assert_eq!(relayed.task_id(), 10);
        assert_eq!(broker.stats().inward, 2);
    }

    #[test]
    fn verdicts_follow_recorded_route() {
        let (sup, mut broker, parts) = rig(2);
        sup.send(&assign(7)).unwrap();
        broker.relay_outward(1).unwrap();
        let _ = parts[0].recv().unwrap();
        sup.send(&Message::Verdict {
            task_id: 7,
            accepted: true,
        })
        .unwrap();
        broker.relay_outward(1).unwrap();
        assert!(matches!(
            parts[0].recv().unwrap(),
            Message::Verdict { task_id: 7, .. }
        ));
        // Participant 1 must have received nothing.
        assert!(parts[1].try_recv().is_err());
    }

    #[test]
    fn unknown_task_route_fails() {
        let (sup, mut broker, _parts) = rig(1);
        sup.send(&Message::Verdict {
            task_id: 99,
            accepted: false,
        })
        .unwrap();
        assert_eq!(broker.relay_outward(1).unwrap_err(), GridError::Empty);
        assert_eq!(broker.relay_inward_for(99).unwrap_err(), GridError::Empty);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn empty_broker_rejected() {
        let (_sup, up) = duplex();
        let _ = Broker::new(up, Vec::new());
    }
}
