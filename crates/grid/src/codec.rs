//! Minimal binary wire format.
//!
//! The paper's headline efficiency claim is a *byte count* — naive sampling
//! ships `O(n)` result bytes while CBS ships `O(m log n)` — so this crate
//! measures real encoded frames rather than trusting formulas. The format
//! is deliberately lean: little-endian fixed-width integers and
//! length-prefixed byte strings, no field names, no padding. A production
//! deployment would add versioning; for cost experiments the lean frame is
//! the honest measure.

use crate::GridError;
use bytes::{Buf, BufMut};

/// Upper bound accepted for any length field (1 GiB), a guard against
/// corrupt frames allocating unbounded memory.
pub const MAX_FIELD_LEN: u64 = 1 << 30;

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.put_u64_le(v);
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.put_u32_le(v);
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.put_slice(bytes);
}

/// Appends a length-prefixed list of `u64`s.
pub fn put_u64_list(buf: &mut Vec<u8>, list: &[u64]) {
    put_u64(buf, list.len() as u64);
    for &v in list {
        put_u64(buf, v);
    }
}

/// Reads a `u64`, little-endian.
///
/// # Errors
///
/// [`GridError::UnexpectedEof`] if fewer than 8 bytes remain.
pub fn get_u64(buf: &mut &[u8], context: &'static str) -> Result<u64, GridError> {
    if buf.remaining() < 8 {
        return Err(GridError::UnexpectedEof { context });
    }
    Ok(buf.get_u64_le())
}

/// Reads a `u32`, little-endian.
///
/// # Errors
///
/// [`GridError::UnexpectedEof`] if fewer than 4 bytes remain.
pub fn get_u32(buf: &mut &[u8], context: &'static str) -> Result<u32, GridError> {
    if buf.remaining() < 4 {
        return Err(GridError::UnexpectedEof { context });
    }
    Ok(buf.get_u32_le())
}

/// Reads a length-prefixed byte string.
///
/// # Errors
///
/// [`GridError::UnexpectedEof`] on truncation, [`GridError::LengthOverflow`]
/// if the declared length exceeds [`MAX_FIELD_LEN`] or the frame.
pub fn get_bytes(buf: &mut &[u8], context: &'static str) -> Result<Vec<u8>, GridError> {
    let len = get_u64(buf, context)?;
    if len > MAX_FIELD_LEN {
        return Err(GridError::LengthOverflow { declared: len });
    }
    // ugc-lint: allow(lossy-cast): bounded above by MAX_FIELD_LEN (1<<30), well inside usize on every supported platform
    let len = len as usize;
    if buf.remaining() < len {
        return Err(GridError::UnexpectedEof { context });
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Reads a length-prefixed list of `u64`s.
///
/// # Errors
///
/// As [`get_bytes`].
pub fn get_u64_list(buf: &mut &[u8], context: &'static str) -> Result<Vec<u64>, GridError> {
    let len = get_u64(buf, context)?;
    if len > MAX_FIELD_LEN / 8 {
        return Err(GridError::LengthOverflow { declared: len });
    }
    // ugc-lint: allow(lossy-cast): bounded above by MAX_FIELD_LEN/8, well inside usize on every supported platform
    let mut out = Vec::with_capacity(len as usize);
    for _ in 0..len {
        out.push(get_u64(buf, context)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0xdead_beef_cafe_f00d);
        let mut cursor = buf.as_slice();
        assert_eq!(get_u64(&mut cursor, "t").unwrap(), 0xdead_beef_cafe_f00d);
        assert!(cursor.is_empty());
    }

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 77);
        let mut cursor = buf.as_slice();
        assert_eq!(get_u32(&mut cursor, "t").unwrap(), 77);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        let mut cursor = buf.as_slice();
        assert_eq!(get_bytes(&mut cursor, "t").unwrap(), b"hello");
    }

    #[test]
    fn empty_bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"");
        let mut cursor = buf.as_slice();
        assert_eq!(get_bytes(&mut cursor, "t").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn list_roundtrip() {
        let mut buf = Vec::new();
        put_u64_list(&mut buf, &[1, 2, 3]);
        let mut cursor = buf.as_slice();
        assert_eq!(get_u64_list(&mut cursor, "t").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_u64_fails() {
        let mut cursor: &[u8] = &[1, 2, 3];
        assert_eq!(
            get_u64(&mut cursor, "short"),
            Err(GridError::UnexpectedEof { context: "short" })
        );
    }

    #[test]
    fn truncated_bytes_fails() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        buf.truncate(buf.len() - 1);
        let mut cursor = buf.as_slice();
        assert!(matches!(
            get_bytes(&mut cursor, "t"),
            Err(GridError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut cursor = buf.as_slice();
        assert_eq!(
            get_bytes(&mut cursor, "t"),
            Err(GridError::LengthOverflow { declared: u64::MAX })
        );
        let mut cursor = buf.as_slice();
        assert!(matches!(
            get_u64_list(&mut cursor, "t"),
            Err(GridError::LengthOverflow { .. })
        ));
    }
}
