//! Error type shared by the transport and codec layers.

use core::fmt;

/// Errors from the grid substrate (wire format and transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The decoder ran out of bytes mid-message.
    UnexpectedEof {
        /// What was being decoded when the input ended.
        context: &'static str,
    },
    /// An unknown message tag was encountered.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// Bytes remained after a complete message was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A length field exceeded sane bounds (corrupt or hostile frame).
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
    /// The peer endpoint was dropped.
    Disconnected,
    /// No message is currently available (non-blocking receive).
    Empty,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GridError::UnexpectedEof { context } => {
                write!(f, "unexpected end of frame while decoding {context}")
            }
            GridError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            GridError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            GridError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds frame bounds")
            }
            GridError::Disconnected => write!(f, "peer endpoint disconnected"),
            GridError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GridError::UnknownTag { tag: 0xFF }.to_string(),
            "unknown message tag 0xff"
        );
        assert_eq!(
            GridError::TrailingBytes { remaining: 3 }.to_string(),
            "3 trailing bytes after message"
        );
        assert_eq!(
            GridError::Disconnected.to_string(),
            "peer endpoint disconnected"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<GridError>();
    }
}
