//! Error type shared by the transport and codec layers.

use core::fmt;

/// Errors from the grid substrate (wire format and transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The decoder ran out of bytes mid-message.
    UnexpectedEof {
        /// What was being decoded when the input ended.
        context: &'static str,
    },
    /// An unknown message tag was encountered.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// Bytes remained after a complete message was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A length field exceeded sane bounds (corrupt or hostile frame).
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
    /// The peer endpoint was dropped.
    Disconnected,
    /// No message is currently available (non-blocking receive).
    Empty,
    /// A socket closed mid-frame: the header declared more payload than
    /// ever arrived. The wire analogue of the journal's torn tail —
    /// expected after a peer process dies, never silently swallowed.
    TornFrame {
        /// Bytes the frame header declared.
        expected: u64,
        /// Bytes actually received before the stream ended.
        got: u64,
    },
    /// The peer speaks a different wire-protocol version (or is not a
    /// grid peer at all).
    HandshakeMismatch {
        /// The protocol version this build speaks.
        ours: u32,
        /// The version (or garbage) the peer announced.
        theirs: u32,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GridError::UnexpectedEof { context } => {
                write!(f, "unexpected end of frame while decoding {context}")
            }
            GridError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            GridError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            GridError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds frame bounds")
            }
            GridError::Disconnected => write!(f, "peer endpoint disconnected"),
            GridError::Empty => write!(f, "no message available"),
            GridError::TornFrame { expected, got } => {
                write!(f, "torn frame: {expected} bytes declared, {got} received")
            }
            GridError::HandshakeMismatch { ours, theirs } => {
                write!(
                    f,
                    "handshake mismatch: we speak wire protocol {ours}, peer announced {theirs}"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GridError::UnknownTag { tag: 0xFF }.to_string(),
            "unknown message tag 0xff"
        );
        assert_eq!(
            GridError::TrailingBytes { remaining: 3 }.to_string(),
            "3 trailing bytes after message"
        );
        assert_eq!(
            GridError::Disconnected.to_string(),
            "peer endpoint disconnected"
        );
        assert_eq!(
            GridError::TornFrame {
                expected: 64,
                got: 10
            }
            .to_string(),
            "torn frame: 64 bytes declared, 10 received"
        );
        assert_eq!(
            GridError::HandshakeMismatch { ours: 1, theirs: 9 }.to_string(),
            "handshake mismatch: we speak wire protocol 1, peer announced 9"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<GridError>();
    }
}
