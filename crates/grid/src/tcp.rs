//! TCP transport: a [`GridLink`] over a real socket.
//!
//! [`TcpLink`] speaks the length-framed protocol from [`wire`](crate::wire)
//! and mirrors [`Endpoint`](crate::Endpoint)'s semantics exactly: sends
//! charge `Message::wire_len() + FRAME_HEADER_BYTES` (which *is* the
//! physical frame size — see the wire module), receives drain queued
//! messages before reporting the peer gone, and a mid-frame stream death
//! surfaces as the typed [`GridError::TornFrame`] once the queue is dry.
//!
//! Control frames (handshakes, cost reports) bypass the message queue
//! entirely: the reader thread routes them to a separate channel exposed
//! through [`ControlHandle`], so grid plumbing can flow while a broker
//! pump owns the link itself.
//!
//! Per-peer backpressure: the reader thread stops pulling frames off the
//! socket once more than [`INBOUND_HIGH_WATER`] messages are queued
//! locally, letting the kernel's TCP window throttle the sender. This is
//! timing-only — it changes when bytes move, never what is charged.

use crate::wire::{read_frame, recv_welcome, send_hello, write_frame, Frame, Hello, Welcome};
use crate::wire::{ROLE_PARTICIPANT, ROLE_SUPERVISOR};
use crate::{Backoff, GridError, GridLink, LinkStats, Message, FRAME_HEADER_BYTES};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Queued-message ceiling above which the reader thread pauses, letting
/// TCP flow control push back on the peer.
pub const INBOUND_HIGH_WATER: usize = 4096;

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    messages: AtomicU64,
}

/// Cloneable handle for a link's control-frame plane.
///
/// Obtained from [`TcpLink::control_handle`]; stays usable while the
/// link itself is owned elsewhere (e.g. inside a broker pump).
#[derive(Debug, Clone)]
pub struct ControlHandle {
    rx: Receiver<Vec<u8>>,
    writer: Arc<Mutex<TcpStream>>,
}

impl ControlHandle {
    /// Sends one control frame.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] if the stream is gone, or
    /// [`GridError::LengthOverflow`] for oversized payloads.
    pub fn send(&self, payload: Vec<u8>) -> Result<(), GridError> {
        let mut writer = self.writer.lock().expect("tcp writer poisoned");
        write_frame(&mut *writer, &Frame::Control(payload))
    }

    /// Receives the next control frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] once the stream is gone and the queue
    /// is drained.
    pub fn recv(&self) -> Result<Vec<u8>, GridError> {
        self.rx.recv().map_err(|_| GridError::Disconnected)
    }

    /// Receives the next control frame, waiting at most `timeout`;
    /// `Ok(None)` when the wait expired with nothing queued. A hang
    /// guard for peers that die without reporting — timing-only, never
    /// an input to verdicts or digests.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] once the stream is gone and the queue
    /// is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, GridError> {
        match self.rx.recv_timeout(timeout) {
            Ok(payload) => Ok(Some(payload)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(GridError::Disconnected),
        }
    }

    /// Receives a control frame without blocking; `Ok(None)` when the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] once the stream is gone and the queue
    /// is drained.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, GridError> {
        match self.rx.try_recv() {
            Ok(payload) => Ok(Some(payload)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(GridError::Disconnected),
        }
    }
}

/// A [`GridLink`] over a TCP stream.
///
/// Dropping the link shuts the socket down in both directions; the peer
/// observes a clean disconnect after draining whatever was in flight.
#[derive(Debug)]
pub struct TcpLink {
    writer: Arc<Mutex<TcpStream>>,
    data_rx: Receiver<Vec<u8>>,
    control: ControlHandle,
    outbound: Counters,
    inbound: Counters,
    depth: Arc<AtomicUsize>,
    terminal: Arc<Mutex<Option<GridError>>>,
    peer: Option<SocketAddr>,
}

impl TcpLink {
    /// Wraps a connected stream, spawning the reader thread.
    ///
    /// The caller is expected to have completed any handshake first
    /// (see [`handshake_supervisor`] / [`handshake_participant`] for the
    /// dial-in side).
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr().ok();
        let reader = stream.try_clone().expect("tcp stream clone");
        let writer = Arc::new(Mutex::new(stream));
        let (data_tx, data_rx) = unbounded();
        let (control_tx, control_rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        let terminal = Arc::new(Mutex::new(None));
        {
            let depth = Arc::clone(&depth);
            let terminal = Arc::clone(&terminal);
            std::thread::spawn(move || {
                reader_loop(reader, &data_tx, &control_tx, &depth, &terminal)
            });
        }
        TcpLink {
            control: ControlHandle {
                rx: control_rx,
                writer: Arc::clone(&writer),
            },
            writer,
            data_rx,
            outbound: Counters::default(),
            inbound: Counters::default(),
            depth,
            terminal,
            peer,
        }
    }

    /// The peer's socket address, when known. Execution detail only —
    /// never part of any digest or journal header.
    #[must_use]
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.peer
    }

    /// A cloneable handle for the control-frame plane.
    #[must_use]
    pub fn control_handle(&self) -> ControlHandle {
        self.control.clone()
    }

    /// The error that killed the stream, if it died abnormally;
    /// otherwise [`GridError::Disconnected`].
    fn terminal_error(&self) -> GridError {
        self.terminal
            .lock()
            .expect("tcp terminal poisoned")
            .clone()
            .unwrap_or(GridError::Disconnected)
    }

    fn account_inbound(&self, frame_len: usize) -> u64 {
        let charged = frame_len as u64 + FRAME_HEADER_BYTES;
        self.inbound.bytes.fetch_add(charged, Ordering::Relaxed);
        self.inbound.messages.fetch_add(1, Ordering::Relaxed);
        charged
    }
}

fn reader_loop(
    mut stream: TcpStream,
    data_tx: &Sender<Vec<u8>>,
    control_tx: &Sender<Vec<u8>>,
    depth: &AtomicUsize,
    terminal: &Mutex<Option<GridError>>,
) {
    let mut backoff = Backoff::new();
    loop {
        // Backpressure: stop reading while the local queue is deep; the
        // socket buffer fills and TCP flow control throttles the peer.
        while depth.load(Ordering::Acquire) > INBOUND_HIGH_WATER {
            backoff.wait();
        }
        backoff.reset();
        match read_frame(&mut stream) {
            Ok(Some(Frame::Data(payload))) => {
                depth.fetch_add(1, Ordering::AcqRel);
                if data_tx.send(payload).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Control(payload))) => {
                if control_tx.send(payload).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            Err(err) => {
                *terminal.lock().expect("tcp terminal poisoned") = Some(err);
                break;
            }
        }
    }
    // Dropping the senders marks the queues closed; receivers drain what
    // is already queued, then observe the disconnect (or terminal error).
}

impl GridLink for TcpLink {
    fn send_counted(&self, msg: &Message) -> Result<u64, GridError> {
        let frame = msg.encode();
        let charged = frame.len() as u64 + FRAME_HEADER_BYTES;
        {
            let mut writer = self.writer.lock().expect("tcp writer poisoned");
            write_frame(&mut *writer, &Frame::Data(frame))?;
        }
        self.outbound.bytes.fetch_add(charged, Ordering::Relaxed);
        self.outbound.messages.fetch_add(1, Ordering::Relaxed);
        Ok(charged)
    }

    fn recv_counted(&self) -> Result<(Message, u64), GridError> {
        match self.data_rx.recv() {
            Ok(frame) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                let charged = self.account_inbound(frame.len());
                Message::decode(&frame).map(|msg| (msg, charged))
            }
            Err(_) => Err(self.terminal_error()),
        }
    }

    fn try_recv_counted(&self) -> Result<(Message, u64), GridError> {
        match self.data_rx.try_recv() {
            Ok(frame) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                let charged = self.account_inbound(frame.len());
                Message::decode(&frame).map(|msg| (msg, charged))
            }
            Err(TryRecvError::Empty) => Err(GridError::Empty),
            Err(TryRecvError::Disconnected) => Err(self.terminal_error()),
        }
    }

    fn stats(&self) -> LinkStats {
        LinkStats {
            bytes_sent: self.outbound.bytes.load(Ordering::Relaxed),
            bytes_received: self.inbound.bytes.load(Ordering::Relaxed),
            messages_sent: self.outbound.messages.load(Ordering::Relaxed),
            messages_received: self.inbound.messages.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
    }
}

/// Dials in as the campaign supervisor: sends a [`Hello`] carrying the
/// campaign parameter blob, waits for the broker's [`Welcome`], and
/// wraps the stream.
///
/// # Errors
///
/// [`GridError::HandshakeMismatch`] if the peer speaks a different
/// protocol version, [`GridError::Disconnected`] on stream failure.
pub fn handshake_supervisor(
    mut stream: TcpStream,
    params: &[u8],
) -> Result<(TcpLink, Welcome), GridError> {
    send_hello(
        &mut stream,
        &Hello {
            role: ROLE_SUPERVISOR,
            params: params.to_vec(),
        },
    )?;
    let welcome = recv_welcome(&mut stream)?;
    Ok((TcpLink::from_stream(stream), welcome))
}

/// Dials in as a participant process: announces itself, waits for the
/// broker's [`Welcome`] (which carries the supervisor's campaign
/// parameter blob), and wraps the stream.
///
/// # Errors
///
/// As [`handshake_supervisor`].
pub fn handshake_participant(mut stream: TcpStream) -> Result<(TcpLink, Welcome), GridError> {
    send_hello(
        &mut stream,
        &Hello {
            role: ROLE_PARTICIPANT,
            params: Vec::new(),
        },
    )?;
    let welcome = recv_welcome(&mut stream)?;
    Ok((TcpLink::from_stream(stream), welcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{recv_hello, send_welcome};
    use std::io::Write;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpLink, TcpLink) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (accepted, _) = listener.accept().unwrap();
        let dialed = join.join().unwrap();
        (TcpLink::from_stream(accepted), TcpLink::from_stream(dialed))
    }

    #[test]
    fn roundtrip_and_charges_match_in_process_accounting() {
        let (a, b) = loopback_pair();
        let msg = Message::Commit {
            task_id: 7,
            root: vec![0xAB; 32],
        };
        let sent = a.send_counted(&msg).unwrap();
        let (got, received) = b.recv_counted().unwrap();
        assert_eq!(got, msg);
        // The charge is byte-identical to the in-memory Endpoint's.
        assert_eq!(sent, msg.wire_len() + FRAME_HEADER_BYTES);
        assert_eq!(received, sent);
        assert_eq!(a.stats().bytes_sent, sent);
        assert_eq!(b.stats().bytes_received, sent);
    }

    #[test]
    fn bidirectional_exchange() {
        let (a, b) = loopback_pair();
        a.send(&Message::Verdict {
            task_id: 1,
            accepted: true,
        })
        .unwrap();
        b.send(&Message::Verdict {
            task_id: 2,
            accepted: false,
        })
        .unwrap();
        assert_eq!(b.recv().unwrap().task_id(), 1);
        assert_eq!(a.recv().unwrap().task_id(), 2);
    }

    #[test]
    fn queued_messages_survive_peer_drop() {
        let (a, b) = loopback_pair();
        a.send(&Message::Verdict {
            task_id: 3,
            accepted: true,
        })
        .unwrap();
        drop(a);
        assert!(matches!(b.recv().unwrap(), Message::Verdict { .. }));
        assert_eq!(b.recv().unwrap_err(), GridError::Disconnected);
    }

    #[test]
    fn control_frames_bypass_the_message_queue() {
        let (a, b) = loopback_pair();
        a.control_handle().send(vec![1, 2, 3]).unwrap();
        a.send(&Message::Verdict {
            task_id: 9,
            accepted: true,
        })
        .unwrap();
        // The data plane sees only the message...
        assert_eq!(b.recv().unwrap().task_id(), 9);
        // ...and the control plane only the control payload.
        assert_eq!(b.control_handle().recv().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn torn_stream_surfaces_as_typed_error_after_drain() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (accepted, _) = listener.accept().unwrap();
        let mut dialed = join.join().unwrap();
        let link = TcpLink::from_stream(accepted);
        // A complete message, then a frame header promising more payload
        // than ever arrives.
        let msg = Message::Verdict {
            task_id: 5,
            accepted: true,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(msg.encode())).unwrap();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        dialed.write_all(&buf).unwrap();
        drop(dialed);
        assert_eq!(link.recv().unwrap().task_id(), 5);
        assert_eq!(
            link.recv().unwrap_err(),
            GridError::TornFrame {
                expected: 100,
                got: 3
            }
        );
    }

    #[test]
    fn try_recv_empty_then_message() {
        let (a, b) = loopback_pair();
        assert_eq!(b.try_recv().unwrap_err(), GridError::Empty);
        a.send(&Message::Verdict {
            task_id: 4,
            accepted: false,
        })
        .unwrap();
        // The reader thread delivers asynchronously; block for it.
        assert_eq!(b.recv().unwrap().task_id(), 4);
    }

    #[test]
    fn handshake_roundtrip_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let hello = recv_hello(&mut stream).unwrap();
            assert_eq!(hello.role, ROLE_SUPERVISOR);
            assert_eq!(hello.params, b"params".to_vec());
            send_welcome(
                &mut stream,
                &Welcome {
                    peer_index: 0,
                    peer_count: 2,
                    params: Vec::new(),
                },
            )
            .unwrap();
            TcpLink::from_stream(stream)
        });
        let stream = TcpStream::connect(addr).unwrap();
        let (link, welcome) = handshake_supervisor(stream, b"params").unwrap();
        assert_eq!(welcome.peer_count, 2);
        let server_link = server.join().unwrap();
        link.send(&Message::Verdict {
            task_id: 11,
            accepted: true,
        })
        .unwrap();
        assert_eq!(server_link.recv().unwrap().task_id(), 11);
    }
}
