//! Length-framed socket wire protocol.
//!
//! Everything the grid sends between OS processes travels as
//! `[u32 len LE][payload]` frames over a byte stream. Bit 31 of the
//! length word marks a *control* frame (handshakes, participant cost
//! reports) — grid plumbing that is never charged to a session's byte
//! account. Data frames carry exactly one encoded [`Message`] as their
//! payload, so a data frame's physical wire cost is
//! `Message::wire_len() + FRAME_HEADER_BYTES` — the same figure the
//! in-process transport already charges. That identity is what makes
//! cross-process summary digests bit-identical to in-process ones.
//!
//! Stream ends are classified like the journal's tail: an EOF on a frame
//! boundary is a clean disconnect ([`read_frame`] returns `Ok(None)`),
//! while an EOF mid-frame is a torn frame and surfaces as the typed
//! [`GridError::TornFrame`] — expected after a peer process dies, never
//! silently swallowed.
//!
//! [`Message`]: crate::Message

use crate::codec::{get_bytes, get_u32, put_bytes, put_u32};
use crate::GridError;
use std::io::{ErrorKind, Read, Write};

/// Protocol version spoken by this build; bumped on any frame or
/// handshake layout change.
pub const WIRE_VERSION: u32 = 1;

/// Magic prefix opening every handshake payload, so a non-grid peer is
/// rejected before any length field is trusted.
pub const WIRE_MAGIC: [u8; 8] = *b"UGCGRID\0";

/// Largest payload a frame may declare (matches the codec's
/// [`MAX_FIELD_LEN`](crate::codec::MAX_FIELD_LEN) guard).
pub const MAX_FRAME_LEN: u64 = crate::codec::MAX_FIELD_LEN;

/// Bit 31 of the length word: set for control frames. Payload lengths
/// are capped at [`MAX_FRAME_LEN`] (`1 << 30`), so the bit is always
/// free.
const CONTROL_BIT: u32 = 1 << 31;

/// Peer role announced in a [`Hello`].
pub const ROLE_PARTICIPANT: u8 = 0;
/// Peer role announced in a [`Hello`].
pub const ROLE_SUPERVISOR: u8 = 1;

/// One frame off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// An encoded [`Message`](crate::Message); charged to the session.
    Data(Vec<u8>),
    /// Grid plumbing (handshake, cost report); never charged.
    Control(Vec<u8>),
}

impl Frame {
    /// The frame's payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        match self {
            Frame::Data(p) | Frame::Control(p) => p,
        }
    }
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// [`GridError::LengthOverflow`] if the payload exceeds
/// [`MAX_FRAME_LEN`]; [`GridError::Disconnected`] if the underlying
/// stream fails.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), GridError> {
    let payload = frame.payload();
    let len = payload.len() as u64;
    if len > MAX_FRAME_LEN {
        return Err(GridError::LengthOverflow { declared: len });
    }
    // ugc-lint: allow(lossy-cast): bounded above by MAX_FRAME_LEN (1<<30), fits u32
    let mut word = len as u32;
    if matches!(frame, Frame::Control(_)) {
        word |= CONTROL_BIT;
    }
    w.write_all(&word.to_le_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|_| GridError::Disconnected)
}

/// Reads from `r` until `buf` is full or the stream ends; returns how
/// many bytes were filled.
fn read_into<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, GridError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(GridError::Disconnected),
        }
    }
    Ok(filled)
}

/// Reads one frame from `r`.
///
/// Returns `Ok(None)` on a clean close (EOF exactly on a frame
/// boundary).
///
/// # Errors
///
/// [`GridError::TornFrame`] if the stream ends mid-frame,
/// [`GridError::LengthOverflow`] if the header declares more than
/// [`MAX_FRAME_LEN`] bytes, [`GridError::Disconnected`] on stream
/// failure.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, GridError> {
    let mut header = [0u8; 4];
    let got = read_into(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(GridError::TornFrame {
            expected: header.len() as u64,
            got: got as u64,
        });
    }
    let word = u32::from_le_bytes(header);
    let control = word & CONTROL_BIT != 0;
    let len = u64::from(word & !CONTROL_BIT);
    if len > MAX_FRAME_LEN {
        return Err(GridError::LengthOverflow { declared: len });
    }
    // ugc-lint: allow(lossy-cast): bounded above by MAX_FRAME_LEN (1<<30), well inside usize on every supported platform
    let mut payload = vec![0u8; len as usize];
    let got = read_into(r, &mut payload)?;
    if (got as u64) < len {
        return Err(GridError::TornFrame {
            expected: len,
            got: got as u64,
        });
    }
    Ok(Some(if control {
        Frame::Control(payload)
    } else {
        Frame::Data(payload)
    }))
}

/// First handshake frame, sent by whoever dialed in.
///
/// A supervisor's `params` carry the campaign parameter blob (the same
/// bytes the journal header records as the application identity); the
/// broker relays them verbatim to every participant so all processes
/// rebuild the identical fleet. Participants send empty `params`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// [`ROLE_PARTICIPANT`] or [`ROLE_SUPERVISOR`].
    pub role: u8,
    /// Campaign identity blob (supervisor) or empty (participant).
    pub params: Vec<u8>,
}

/// Broker's handshake reply once the grid is assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// This peer's index among the broker's peers of its role.
    pub peer_index: u32,
    /// How many participant processes the broker is relaying for.
    pub peer_count: u32,
    /// The supervisor's campaign parameter blob, relayed verbatim
    /// (empty in the supervisor's own welcome).
    pub params: Vec<u8>,
}

fn put_preamble(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&WIRE_MAGIC);
    put_u32(buf, WIRE_VERSION);
}

/// Checks magic + version; on success leaves `buf` past the preamble.
fn get_preamble(buf: &mut &[u8]) -> Result<(), GridError> {
    if buf.len() < WIRE_MAGIC.len() || buf[..WIRE_MAGIC.len()] != WIRE_MAGIC {
        return Err(GridError::HandshakeMismatch {
            ours: WIRE_VERSION,
            theirs: 0,
        });
    }
    *buf = &buf[WIRE_MAGIC.len()..];
    let version = get_u32(buf, "handshake version")?;
    if version != WIRE_VERSION {
        return Err(GridError::HandshakeMismatch {
            ours: WIRE_VERSION,
            theirs: version,
        });
    }
    Ok(())
}

impl Hello {
    /// Encodes this hello as a control-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        buf.push(self.role);
        put_bytes(&mut buf, &self.params);
        buf
    }

    /// Decodes a control-frame payload.
    ///
    /// # Errors
    ///
    /// [`GridError::HandshakeMismatch`] on a bad magic or foreign
    /// version; codec errors on truncation.
    pub fn decode(payload: &[u8]) -> Result<Self, GridError> {
        let mut buf = payload;
        get_preamble(&mut buf)?;
        let (&role, rest) = buf.split_first().ok_or(GridError::UnexpectedEof {
            context: "hello role",
        })?;
        buf = rest;
        let params = get_bytes(&mut buf, "hello params")?;
        if !buf.is_empty() {
            return Err(GridError::TrailingBytes {
                remaining: buf.len(),
            });
        }
        Ok(Hello { role, params })
    }
}

impl Welcome {
    /// Encodes this welcome as a control-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_u32(&mut buf, self.peer_index);
        put_u32(&mut buf, self.peer_count);
        put_bytes(&mut buf, &self.params);
        buf
    }

    /// Decodes a control-frame payload.
    ///
    /// # Errors
    ///
    /// As [`Hello::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, GridError> {
        let mut buf = payload;
        get_preamble(&mut buf)?;
        let peer_index = get_u32(&mut buf, "welcome index")?;
        let peer_count = get_u32(&mut buf, "welcome count")?;
        let params = get_bytes(&mut buf, "welcome params")?;
        if !buf.is_empty() {
            return Err(GridError::TrailingBytes {
                remaining: buf.len(),
            });
        }
        Ok(Welcome {
            peer_index,
            peer_count,
            params,
        })
    }
}

/// Writes a handshake hello as a control frame.
///
/// # Errors
///
/// As [`write_frame`].
pub fn send_hello<W: Write>(w: &mut W, hello: &Hello) -> Result<(), GridError> {
    write_frame(w, &Frame::Control(hello.encode()))
}

/// Reads a handshake hello.
///
/// # Errors
///
/// [`GridError::Disconnected`] if the peer hung up first,
/// [`GridError::HandshakeMismatch`] if the first frame is not a valid
/// hello, plus [`read_frame`]'s errors.
pub fn recv_hello<R: Read>(r: &mut R) -> Result<Hello, GridError> {
    match read_frame(r)? {
        Some(Frame::Control(payload)) => Hello::decode(&payload),
        Some(Frame::Data(_)) => Err(GridError::HandshakeMismatch {
            ours: WIRE_VERSION,
            theirs: 0,
        }),
        None => Err(GridError::Disconnected),
    }
}

/// Writes a handshake welcome as a control frame.
///
/// # Errors
///
/// As [`write_frame`].
pub fn send_welcome<W: Write>(w: &mut W, welcome: &Welcome) -> Result<(), GridError> {
    write_frame(w, &Frame::Control(welcome.encode()))
}

/// Reads a handshake welcome.
///
/// # Errors
///
/// As [`recv_hello`].
pub fn recv_welcome<R: Read>(r: &mut R) -> Result<Welcome, GridError> {
    match read_frame(r)? {
        Some(Frame::Control(payload)) => Welcome::decode(&payload),
        Some(Frame::Data(_)) => Err(GridError::HandshakeMismatch {
            ours: WIRE_VERSION,
            theirs: 0,
        }),
        None => Err(GridError::Disconnected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        let mut cursor = Cursor::new(buf);
        read_frame(&mut cursor).unwrap().unwrap()
    }

    #[test]
    fn data_frame_roundtrip() {
        let frame = Frame::Data(vec![1, 2, 3, 4, 5]);
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn control_frame_roundtrip() {
        let frame = Frame::Control(vec![9; 100]);
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn empty_frame_roundtrip() {
        let frame = Frame::Data(Vec::new());
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn data_frame_wire_cost_is_the_charged_cost() {
        // The digest identity hinges on this: a data frame's physical
        // bytes equal payload + FRAME_HEADER_BYTES, nothing more.
        let payload = vec![7u8; 33];
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(payload.clone())).unwrap();
        assert_eq!(
            buf.len() as u64,
            payload.len() as u64 + crate::FRAME_HEADER_BYTES
        );
    }

    #[test]
    fn clean_eof_on_frame_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(vec![1, 2, 3])).unwrap();
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn every_truncation_point_is_torn_or_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(vec![5; 10])).unwrap();
        for cut in 0..buf.len() {
            let mut cursor = Cursor::new(&buf[..cut]);
            let result = read_frame(&mut cursor);
            if cut == 0 {
                assert_eq!(result, Ok(None), "cut {cut}");
            } else {
                assert!(
                    matches!(result, Err(GridError::TornFrame { .. })),
                    "cut {cut}: {result:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        // ugc-lint: allow(lossy-cast): (1<<30)+1 fits u32; this deliberately forges a hostile header
        let word = (MAX_FRAME_LEN + 1) as u32;
        let mut cursor = Cursor::new(word.to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(GridError::LengthOverflow {
                declared: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn hello_roundtrip() {
        let hello = Hello {
            role: ROLE_SUPERVISOR,
            params: b"campaign blob".to_vec(),
        };
        let decoded = Hello::decode(&hello.encode()).unwrap();
        assert_eq!(decoded, hello);
    }

    #[test]
    fn welcome_roundtrip() {
        let welcome = Welcome {
            peer_index: 3,
            peer_count: 8,
            params: b"campaign blob".to_vec(),
        };
        let decoded = Welcome::decode(&welcome.encode()).unwrap();
        assert_eq!(decoded, welcome);
    }

    #[test]
    fn foreign_version_is_a_typed_mismatch() {
        let hello = Hello {
            role: ROLE_PARTICIPANT,
            params: Vec::new(),
        };
        let mut payload = hello.encode();
        // Corrupt the version word (bytes 8..12, little-endian).
        payload[8] = 0xEE;
        let err = Hello::decode(&payload).unwrap_err();
        assert!(matches!(
            err,
            GridError::HandshakeMismatch {
                ours: WIRE_VERSION,
                ..
            }
        ));
    }

    #[test]
    fn garbage_magic_is_a_typed_mismatch() {
        assert_eq!(
            Hello::decode(b"HTTP/1.1 200 OK\r\n"),
            Err(GridError::HandshakeMismatch {
                ours: WIRE_VERSION,
                theirs: 0,
            })
        );
    }

    #[test]
    fn handshake_over_stream() {
        let mut buf = Vec::new();
        let hello = Hello {
            role: ROLE_SUPERVISOR,
            params: vec![1, 2, 3],
        };
        send_hello(&mut buf, &hello).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(recv_hello(&mut cursor).unwrap(), hello);
    }

    #[test]
    fn data_frame_during_handshake_is_a_mismatch() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(vec![1])).unwrap();
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            recv_hello(&mut cursor),
            Err(GridError::HandshakeMismatch { .. })
        ));
    }
}
