//! Per-actor cost accounting.
//!
//! The paper compares schemes along several cost axes: evaluations of `f`
//! (`C_f` units), hash operations for tree building and verification,
//! evaluations of the sample generator `g` (`C_g` units, central to the
//! Eq. (5) economics) and communication. A [`CostLedger`] collects all of
//! them for one actor; experiment tables are printed from ledger snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    f_evals: AtomicU64,
    hash_ops: AtomicU64,
    hash_wall_ops: AtomicU64,
    g_evals: AtomicU64,
    verify_ops: AtomicU64,
}

/// Thread-safe cost accumulator. Clones share the same counters.
///
/// # Examples
///
/// ```
/// use ugc_grid::CostLedger;
///
/// let ledger = CostLedger::new();
/// ledger.charge_f(100);
/// ledger.charge_hash(7);
/// let report = ledger.report();
/// assert_eq!(report.f_evals, 100);
/// assert_eq!(report.hash_ops, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    inner: Arc<Inner>,
}

impl CostLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` evaluations of the task function `f`.
    pub fn charge_f(&self, n: u64) {
        self.inner.f_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` unit hash invocations (tree building, path checks)
    /// performed serially: total work and critical path coincide.
    pub fn charge_hash(&self, n: u64) {
        self.inner.hash_ops.fetch_add(n, Ordering::Relaxed);
        self.inner.hash_wall_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges a parallel batch of hash invocations: `total` unit hashes
    /// of work, of which only `wall` were on the critical path (the
    /// longest chain any single thread computed). Keeps the paper's
    /// `2n − 1`-style work accounting exact under parallel tree builds
    /// while also tracking what the wall clock actually paid.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `wall > total` — a critical path cannot
    /// exceed the total work.
    pub fn charge_hash_parallel(&self, total: u64, wall: u64) {
        debug_assert!(wall <= total, "critical path {wall} exceeds total {total}");
        self.inner.hash_ops.fetch_add(total, Ordering::Relaxed);
        self.inner.hash_wall_ops.fetch_add(wall, Ordering::Relaxed);
    }

    /// Charges `n` unit-hash invocations spent inside the sample generator
    /// `g` (so a `g = MD5^k` evaluation charges `k`).
    pub fn charge_g(&self, n: u64) {
        self.inner.g_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` result verifications (supervisor-side `f(x)` checks).
    pub fn charge_verify(&self, n: u64) {
        self.inner.verify_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn report(&self) -> CostReport {
        CostReport {
            f_evals: self.inner.f_evals.load(Ordering::Relaxed),
            hash_ops: self.inner.hash_ops.load(Ordering::Relaxed),
            hash_wall_ops: self.inner.hash_wall_ops.load(Ordering::Relaxed),
            g_evals: self.inner.g_evals.load(Ordering::Relaxed),
            verify_ops: self.inner.verify_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.f_evals.store(0, Ordering::Relaxed);
        self.inner.hash_ops.store(0, Ordering::Relaxed);
        self.inner.hash_wall_ops.store(0, Ordering::Relaxed);
        self.inner.g_evals.store(0, Ordering::Relaxed);
        self.inner.verify_ops.store(0, Ordering::Relaxed);
    }
}

/// Wall-clock throughput of a concurrent run: how many sessions finished
/// and how many supervisor-side bytes moved per second of real time.
///
/// Unlike [`CostReport`], which counts deterministic protocol work and is
/// compared bit for bit across transports, throughput measures the
/// machine and varies run to run — so it lives beside the ledger, never
/// inside an equality-checked report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Throughput {
    /// Wall-clock time of the measured run.
    pub wall: Duration,
    /// Verification sessions completed (attempts, including retried
    /// ones).
    pub sessions: u64,
    /// Supervisor-side bytes moved (sent + received) by attempts that
    /// settled successfully. Failed attempts are excluded: their traffic
    /// is cut off mid-protocol by the failure, and how much of it the
    /// supervisor observed before the cut is a scheduling race — the
    /// successful-attempt total is the part that replays bit-identically.
    pub bytes: u64,
}

impl Throughput {
    /// Sessions completed per wall-clock second (0 for an empty window).
    #[must_use]
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sessions as f64 / secs
        } else {
            0.0
        }
    }

    /// Supervisor-side bytes moved per wall-clock second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 / secs
        } else {
            0.0
        }
    }
}

impl core::fmt::Display for Throughput {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} sessions in {:.3}s ({:.1} sessions/s, {:.1} KiB/s)",
            self.sessions,
            self.wall.as_secs_f64(),
            self.sessions_per_sec(),
            self.bytes_per_sec() / 1024.0
        )
    }
}

/// An immutable snapshot of a [`CostLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Task-function evaluations.
    pub f_evals: u64,
    /// Unit hash invocations (total work, regardless of parallelism).
    pub hash_ops: u64,
    /// Critical-path hash invocations: what the wall clock paid. Equals
    /// [`hash_ops`](Self::hash_ops) when every hash was charged serially;
    /// smaller when parallel tree builds charged via
    /// [`CostLedger::charge_hash_parallel`].
    pub hash_wall_ops: u64,
    /// Unit hashes spent in the sample generator `g`.
    pub g_evals: u64,
    /// Supervisor-side result verifications.
    pub verify_ops: u64,
}

impl CostReport {
    /// Component-wise sum of two reports.
    #[must_use]
    pub fn combined(self, other: CostReport) -> CostReport {
        CostReport {
            f_evals: self.f_evals + other.f_evals,
            hash_ops: self.hash_ops + other.hash_ops,
            hash_wall_ops: self.hash_wall_ops + other.hash_wall_ops,
            g_evals: self.g_evals + other.g_evals,
            verify_ops: self.verify_ops + other.verify_ops,
        }
    }
}

impl core::fmt::Display for CostReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "f={} hash={} g={} verify={}",
            self.f_evals, self.hash_ops, self.g_evals, self.verify_ops
        )?;
        if self.hash_wall_ops != self.hash_ops {
            write!(f, " hash_wall={}", self.hash_wall_ops)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let l = CostLedger::new();
        l.charge_f(3);
        l.charge_f(4);
        l.charge_hash(10);
        l.charge_g(5);
        l.charge_verify(2);
        assert_eq!(
            l.report(),
            CostReport {
                f_evals: 7,
                hash_ops: 10,
                hash_wall_ops: 10,
                g_evals: 5,
                verify_ops: 2
            }
        );
    }

    #[test]
    fn parallel_hash_charge_splits_work_and_wall() {
        let l = CostLedger::new();
        l.charge_hash(5);
        l.charge_hash_parallel(1023, 130);
        let report = l.report();
        assert_eq!(report.hash_ops, 1028);
        assert_eq!(report.hash_wall_ops, 135);
        // The wall-clock divergence shows up in the display.
        assert_eq!(
            report.to_string(),
            "f=0 hash=1028 g=0 verify=0 hash_wall=135"
        );
    }

    #[test]
    fn clones_share_counters() {
        let l = CostLedger::new();
        let l2 = l.clone();
        l2.charge_f(9);
        assert_eq!(l.report().f_evals, 9);
    }

    #[test]
    fn reset_clears() {
        let l = CostLedger::new();
        l.charge_f(5);
        l.reset();
        assert_eq!(l.report(), CostReport::default());
    }

    #[test]
    fn combined_adds() {
        let a = CostReport {
            f_evals: 1,
            hash_ops: 2,
            hash_wall_ops: 2,
            g_evals: 3,
            verify_ops: 4,
        };
        let b = CostReport {
            f_evals: 10,
            hash_ops: 20,
            hash_wall_ops: 15,
            g_evals: 30,
            verify_ops: 40,
        };
        assert_eq!(
            a.combined(b),
            CostReport {
                f_evals: 11,
                hash_ops: 22,
                hash_wall_ops: 17,
                g_evals: 33,
                verify_ops: 44
            }
        );
    }

    #[test]
    fn display_lists_all_axes() {
        let l = CostLedger::new();
        l.charge_f(1);
        assert_eq!(l.report().to_string(), "f=1 hash=0 g=0 verify=0");
    }

    #[test]
    fn concurrent_charging() {
        let l = CostLedger::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ledger = l.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ledger.charge_hash(1);
                    }
                });
            }
        });
        assert_eq!(l.report().hash_ops, 8000);
    }
}
