//! Participant behaviours: the cheating models of Section 2.2.
//!
//! A behaviour decides what a participant *commits* for each leaf and what
//! it *reports* as interesting results:
//!
//! * [`HonestWorker`] — evaluates `f` everywhere and screens truthfully.
//! * [`SemiHonestCheater`] — the paper's rational cheater: evaluates `f` on
//!   a fraction `r` of the domain (`D′`) and substitutes the cheap guess
//!   `f̌` elsewhere, to save work.
//! * [`MaliciousWorker`] — evaluates `f` everywhere (so commitment checks
//!   pass!) but corrupts the screener output `S(x, z)` with random `z`, to
//!   disrupt the computation. Detecting it requires the screened-report
//!   cross-check, not just CBS path verification.

use crate::CostLedger;
use ugc_task::{ComputeTask, Domain, Guesser, ScreenReport, Screener, SplitMix64};

/// How a participant produces commitments and reports for an assignment.
///
/// The `ledger` is charged for real `f` evaluations only — guesses are the
/// whole point of cheating and cost (approximately) nothing.
pub trait WorkerBehaviour: Send + Sync {
    /// Behaviour name for experiment tables.
    fn name(&self) -> &str;

    /// The honesty ratio `r = |D′|/|D|` this behaviour realises.
    fn honesty_ratio(&self) -> f64 {
        1.0
    }

    /// The leaf value committed for leaf `index` of `domain`
    /// (`Φ(L_i)` in the paper: `f(x_i)` if honest, `f̌(x_i)` if not).
    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8>;

    /// The report (if any) for leaf `index` whose committed value is
    /// `committed`. Default: truthful screening of the committed value.
    fn report_for(
        &self,
        screener: &dyn Screener,
        domain: Domain,
        index: u64,
        committed: &[u8],
    ) -> Option<ScreenReport> {
        let x = domain.input(index).expect("index within domain");
        screener.screen(x, committed)
    }
}

impl<B: WorkerBehaviour + ?Sized> WorkerBehaviour for &B {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn honesty_ratio(&self) -> f64 {
        (**self).honesty_ratio()
    }
    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        (**self).leaf_value(task, domain, index, ledger)
    }
    fn report_for(
        &self,
        screener: &dyn Screener,
        domain: Domain,
        index: u64,
        committed: &[u8],
    ) -> Option<ScreenReport> {
        (**self).report_for(screener, domain, index, committed)
    }
}

impl<B: WorkerBehaviour + ?Sized> WorkerBehaviour for std::sync::Arc<B> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn honesty_ratio(&self) -> f64 {
        (**self).honesty_ratio()
    }
    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        (**self).leaf_value(task, domain, index, ledger)
    }
    fn report_for(
        &self,
        screener: &dyn Screener,
        domain: Domain,
        index: u64,
        committed: &[u8],
    ) -> Option<ScreenReport> {
        (**self).report_for(screener, domain, index, committed)
    }
}

impl<B: WorkerBehaviour + ?Sized> WorkerBehaviour for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn honesty_ratio(&self) -> f64 {
        (**self).honesty_ratio()
    }
    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        (**self).leaf_value(task, domain, index, ledger)
    }
    fn report_for(
        &self,
        screener: &dyn Screener,
        domain: Domain,
        index: u64,
        committed: &[u8],
    ) -> Option<ScreenReport> {
        (**self).report_for(screener, domain, index, committed)
    }
}

/// The fully honest participant: `Φ(L_i) = f(x_i)` for every `i`.
///
/// # Examples
///
/// ```
/// use ugc_grid::{CostLedger, HonestWorker, WorkerBehaviour};
/// use ugc_task::{ComputeTask, Domain};
/// use ugc_task::workloads::PasswordSearch;
///
/// let task = PasswordSearch::with_hidden_password(1, 2);
/// let ledger = CostLedger::new();
/// let worker = HonestWorker;
/// let leaf = worker.leaf_value(&task, Domain::new(0, 8), 3, &ledger);
/// assert_eq!(leaf, task.compute(3));
/// assert_eq!(ledger.report().f_evals, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HonestWorker;

impl WorkerBehaviour for HonestWorker {
    fn name(&self) -> &str {
        "honest"
    }

    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        let x = domain.input(index).expect("index within domain");
        ledger.charge_f(task.unit_cost());
        task.compute(x)
    }
}

/// Which subset `D′` the semi-honest cheater computes honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheatSelection {
    /// The first `⌊r·n⌋` indices — `|D′|` is exact, matching the
    /// `r = |D′|/|D|` of Definition 2.1 precisely.
    Prefix,
    /// Each index is honest independently with probability `r` —
    /// `|D′|` is Binomial(n, r); more naturalistic for a lazy worker.
    Scattered,
}

/// The semi-honest cheater of Section 2.2: computes `f` on `D′`, guesses
/// elsewhere with a [`Guesser`] realising the paper's `q`.
///
/// # Examples
///
/// ```
/// use ugc_grid::{CheatSelection, CostLedger, SemiHonestCheater, WorkerBehaviour};
/// use ugc_task::{ComputeTask, Domain, ZeroGuesser};
/// use ugc_task::workloads::PasswordSearch;
///
/// let task = PasswordSearch::with_hidden_password(1, 2);
/// let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(9), 7);
/// let ledger = CostLedger::new();
/// let domain = Domain::new(0, 8);
/// // First half honest, second half guessed:
/// assert_eq!(cheater.leaf_value(&task, domain, 0, &ledger), task.compute(0));
/// assert_ne!(cheater.leaf_value(&task, domain, 7, &ledger), task.compute(7));
/// assert_eq!(ledger.report().f_evals, 1); // only the honest leaf was paid for
/// ```
#[derive(Debug, Clone)]
pub struct SemiHonestCheater<G> {
    honesty_ratio: f64,
    selection: CheatSelection,
    guesser: G,
    seed: u64,
}

impl<G: Guesser> SemiHonestCheater<G> {
    /// Creates a cheater with honesty ratio `r ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a probability.
    #[must_use]
    pub fn new(honesty_ratio: f64, selection: CheatSelection, guesser: G, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&honesty_ratio) && honesty_ratio.is_finite(),
            "honesty ratio must be in [0,1]"
        );
        SemiHonestCheater {
            honesty_ratio,
            selection,
            guesser,
            seed,
        }
    }

    /// Whether leaf `index` (of `n`) belongs to the honestly-computed `D′`.
    #[must_use]
    pub fn is_honest_index(&self, n: u64, index: u64) -> bool {
        match self.selection {
            CheatSelection::Prefix => {
                // ⌊r·n⌋ computed exactly; f64 is exact for n < 2^53.
                let honest_count = (self.honesty_ratio * n as f64).floor() as u64;
                index < honest_count
            }
            CheatSelection::Scattered => {
                SplitMix64::for_stream(self.seed, index).next_f64() < self.honesty_ratio
            }
        }
    }

    /// Leaf value for a given retry-attack `salt` (Section 4.2): honest
    /// leaves are stable across salts, guessed leaves re-roll.
    #[must_use]
    pub fn leaf_value_salted(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        salt: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        if self.is_honest_index(domain.len(), index) {
            let x = domain.input(index).expect("index within domain");
            ledger.charge_f(task.unit_cost());
            task.compute(x)
        } else {
            let x = domain.input(index).expect("index within domain");
            self.guesser.guess_salted(x, task.output_width(), salt)
        }
    }
}

impl<G: Guesser> WorkerBehaviour for SemiHonestCheater<G> {
    fn name(&self) -> &str {
        "semi-honest"
    }

    fn honesty_ratio(&self) -> f64 {
        self.honesty_ratio
    }

    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        self.leaf_value_salted(task, domain, index, 0, ledger)
    }
}

/// The malicious participant of Section 2.2: does all the work but feeds
/// the screener random values to sabotage the reported results.
#[derive(Debug, Clone, Copy)]
pub struct MaliciousWorker {
    corrupt_rate: f64,
    seed: u64,
}

impl MaliciousWorker {
    /// Corrupts the screener input for a `corrupt_rate` fraction of inputs.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_rate` is not a probability.
    #[must_use]
    pub fn new(corrupt_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&corrupt_rate) && corrupt_rate.is_finite(),
            "corrupt rate must be in [0,1]"
        );
        MaliciousWorker { corrupt_rate, seed }
    }

    /// Whether input `index` gets a corrupted screener evaluation.
    #[must_use]
    pub fn corrupts(&self, index: u64) -> bool {
        SplitMix64::for_stream(self.seed ^ 0x6d61_6c76, index).next_f64() < self.corrupt_rate
    }
}

impl WorkerBehaviour for MaliciousWorker {
    fn name(&self) -> &str {
        "malicious"
    }

    fn leaf_value(
        &self,
        task: &dyn ComputeTask,
        domain: Domain,
        index: u64,
        ledger: &CostLedger,
    ) -> Vec<u8> {
        // Malicious ≠ lazy: the work is done (and paid for) in full.
        let x = domain.input(index).expect("index within domain");
        ledger.charge_f(task.unit_cost());
        task.compute(x)
    }

    fn report_for(
        &self,
        screener: &dyn Screener,
        domain: Domain,
        index: u64,
        committed: &[u8],
    ) -> Option<ScreenReport> {
        let x = domain.input(index).expect("index within domain");
        if self.corrupts(index) {
            // S(x, z) with random z, per the paper's malicious model.
            let mut rng = SplitMix64::for_stream(self.seed ^ 0x7a7a, index);
            let mut z = vec![0u8; committed.len()];
            for chunk in z.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            screener.screen(x, &z)
        } else {
            screener.screen(x, committed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::{AcceptAllScreener, ZeroGuesser};

    fn task() -> PasswordSearch {
        PasswordSearch::with_hidden_password(5, 3)
    }

    #[test]
    fn honest_worker_charges_every_eval() {
        let t = task();
        let ledger = CostLedger::new();
        let d = Domain::new(0, 16);
        for i in 0..16 {
            assert_eq!(HonestWorker.leaf_value(&t, d, i, &ledger), t.compute(i));
        }
        assert_eq!(ledger.report().f_evals, 16);
        assert!((HonestWorker.honesty_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn prefix_cheater_splits_domain_exactly() {
        let cheater = SemiHonestCheater::new(0.25, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        let honest = (0..100)
            .filter(|&i| cheater.is_honest_index(100, i))
            .count();
        assert_eq!(honest, 25);
        // And the honest part is the prefix.
        assert!(cheater.is_honest_index(100, 24));
        assert!(!cheater.is_honest_index(100, 25));
    }

    #[test]
    fn scattered_cheater_hits_ratio_statistically() {
        let cheater =
            SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(1), 42);
        let honest = (0..10_000)
            .filter(|&i| cheater.is_honest_index(10_000, i))
            .count() as f64;
        assert!((honest / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn cheater_charges_only_honest_leaves() {
        let t = task();
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        let ledger = CostLedger::new();
        let d = Domain::new(0, 32);
        for i in 0..32 {
            let _ = cheater.leaf_value(&t, d, i, &ledger);
        }
        assert_eq!(ledger.report().f_evals, 16);
    }

    #[test]
    fn cheater_guessed_leaves_are_wrong_honest_are_right() {
        let t = task();
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        let ledger = CostLedger::new();
        let d = Domain::new(0, 32);
        for i in 0..16 {
            assert_eq!(cheater.leaf_value(&t, d, i, &ledger), t.compute(i));
        }
        for i in 16..32 {
            assert_ne!(cheater.leaf_value(&t, d, i, &ledger), t.compute(i));
        }
    }

    #[test]
    fn salt_rerolls_guesses_but_not_honest_values() {
        let t = task();
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        let ledger = CostLedger::new();
        let d = Domain::new(0, 8);
        assert_eq!(
            cheater.leaf_value_salted(&t, d, 0, 0, &ledger),
            cheater.leaf_value_salted(&t, d, 0, 1, &ledger),
        );
        assert_ne!(
            cheater.leaf_value_salted(&t, d, 7, 0, &ledger),
            cheater.leaf_value_salted(&t, d, 7, 1, &ledger),
        );
    }

    #[test]
    fn zero_and_one_ratios_are_extremes() {
        let t = task();
        let ledger = CostLedger::new();
        let d = Domain::new(0, 8);
        let all = SemiHonestCheater::new(1.0, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        let none = SemiHonestCheater::new(0.0, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
        for i in 0..8 {
            assert_eq!(all.leaf_value(&t, d, i, &ledger), t.compute(i));
            assert_ne!(none.leaf_value(&t, d, i, &ledger), t.compute(i));
        }
    }

    #[test]
    fn malicious_leaves_are_honest() {
        let t = task();
        let m = MaliciousWorker::new(1.0, 3);
        let ledger = CostLedger::new();
        let d = Domain::new(0, 8);
        for i in 0..8 {
            assert_eq!(m.leaf_value(&t, d, i, &ledger), t.compute(i));
        }
        assert_eq!(ledger.report().f_evals, 8);
    }

    #[test]
    fn malicious_reports_are_corrupted() {
        let t = task();
        let m = MaliciousWorker::new(1.0, 3);
        let d = Domain::new(0, 8);
        let screener = AcceptAllScreener;
        let mut corrupted = 0;
        for i in 0..8 {
            let committed = t.compute(i);
            let report = m.report_for(&screener, d, i, &committed).unwrap();
            if report.payload != committed {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 8);
    }

    #[test]
    fn honest_default_report_is_truthful() {
        let t = task();
        let d = Domain::new(0, 8);
        let screener = AcceptAllScreener;
        let committed = t.compute(2);
        let report = HonestWorker
            .report_for(&screener, d, 2, &committed)
            .unwrap();
        assert_eq!(report.input, 2);
        assert_eq!(report.payload, committed);
    }

    #[test]
    #[should_panic(expected = "honesty ratio must be in [0,1]")]
    fn invalid_ratio_rejected() {
        let _ = SemiHonestCheater::new(-0.1, CheatSelection::Prefix, ZeroGuesser::new(1), 0);
    }

    #[test]
    fn behaviour_names() {
        assert_eq!(HonestWorker.name(), "honest");
        assert_eq!(
            SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(1), 0).name(),
            "semi-honest"
        );
        assert_eq!(MaliciousWorker::new(0.5, 0).name(), "malicious");
    }
}
