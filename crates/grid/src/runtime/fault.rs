//! Deterministic fault injection for grid links.
//!
//! The paper's threat model is a grid of *unreliable* participants, so the
//! runtime must be exercised under churn, loss, duplication, reordering
//! and latency — and every such campaign must be replayable bit for bit.
//! A [`FaultPlan`] is therefore a pure function of `(seed, link, direction,
//! sequence number)`: two runs with the same seed make exactly the same
//! per-link decisions, no matter how the OS schedules the threads. The
//! plan decorates a link as a [`FaultyEndpoint`], which applies the
//! decisions on the participant's own thread (an injected delay stalls
//! only that link, never the broker pump).
//!
//! Fault decisions are keyed per link rather than per run because a
//! participant link carries exactly one session's protocol sequence:
//! whatever the global interleaving, the `k`-th message on a given link is
//! always the same message, so the delivery schedule — and with it the
//! final verdicts — is reproducible from the seed alone.

use crate::transport::GridLink;
use crate::{Endpoint, GridError, LinkStats, Message, FRAME_HEADER_BYTES};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Direction of a message relative to the decorated endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkDirection {
    /// Messages arriving at this endpoint.
    Inbound,
    /// Messages sent from this endpoint.
    Outbound,
}

/// What a [`FaultPlan`] decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message and deliver it right after its successor
    /// (adjacent swap). Applies to outbound traffic only — that is where
    /// multi-message bursts (proofs + reports) exist; a hold is released
    /// unswapped at the link's next receive or close, so a lone trailing
    /// message can delay but never deadlock its session.
    Reorder,
    /// Deliver after sleeping this many microseconds.
    Delay(u32),
}

/// A seeded, replayable fault schedule for a whole campaign.
///
/// Rates are expressed in parts per 1024 so decisions reduce to integer
/// compares on a deterministic 64-bit draw. `Plan::quiet(seed)` (all rates
/// zero) is byte-for-byte transparent — property-tested in
/// `tests/fault_properties.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Base seed every per-link schedule derives from.
    pub seed: u64,
    /// Per-message drop probability, in parts per 1024.
    pub drop_per_1024: u16,
    /// Per-message duplication probability, in parts per 1024.
    pub dup_per_1024: u16,
    /// Per-message adjacent-swap probability, in parts per 1024.
    pub reorder_per_1024: u16,
    /// Upper bound on injected per-message latency, in microseconds
    /// (0 disables latency injection). Each delayed message draws a
    /// deterministic duration in `[0, max]`.
    pub max_delay_micros: u32,
    /// Probability (parts per 1024) that a link's participant crashes at
    /// a seeded point mid-session (and loses any held messages).
    pub crash_per_1024: u16,
}

impl FaultPlan {
    /// A plan that injects nothing — the decorated link behaves exactly
    /// like the raw one.
    #[must_use]
    pub const fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_1024: 0,
            dup_per_1024: 0,
            reorder_per_1024: 0,
            max_delay_micros: 0,
            crash_per_1024: 0,
        }
    }

    /// The default chaos preset: ~3% duplication, ~6% reordering and up
    /// to 500 µs of injected latency per message. No drops and no
    /// crashes, so every session still completes (possibly failing fast
    /// with a typed error and being reassigned by the orchestrator).
    #[must_use]
    pub const fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_1024: 0,
            dup_per_1024: 32,
            reorder_per_1024: 64,
            max_delay_micros: 500,
            crash_per_1024: 0,
        }
    }

    /// Adds participant crash/restart churn: roughly `per_1024/1024` of
    /// links lose their participant at a seeded point mid-session.
    #[must_use]
    pub const fn with_churn(mut self, per_1024: u16) -> Self {
        self.crash_per_1024 = per_1024;
        self
    }

    /// Adds message loss at the given rate. Dropped messages stall their
    /// session, so pair this with a per-session deadline.
    #[must_use]
    pub const fn with_drops(mut self, per_1024: u16) -> Self {
        self.drop_per_1024 = per_1024;
        self
    }

    /// The derived (still pure) schedule for one link.
    #[must_use]
    pub fn link(&self, link_id: u64) -> LinkFaults {
        LinkFaults {
            plan: *self,
            link_id,
        }
    }
}

/// SplitMix64 finalizer: the avalanche behind every fault draw.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fault schedule of a single link: a pure function of
/// `(plan.seed, link_id, direction, seq)`.
#[derive(Debug, Clone, Copy)]
pub struct LinkFaults {
    plan: FaultPlan,
    link_id: u64,
}

impl LinkFaults {
    /// The link id this schedule was derived for.
    #[must_use]
    pub fn link_id(&self) -> u64 {
        self.link_id
    }

    fn draw(&self, stream: u64, seq: u64) -> u64 {
        mix64(
            self.plan.seed
                ^ mix64(self.link_id)
                ^ mix64(stream.wrapping_mul(0xa076_1d64_78bd_642f))
                ^ mix64(seq.wrapping_mul(0xe703_7ed1_a0b4_28db)),
        )
    }

    /// The (deterministic) fate of the `seq`-th message in `direction`.
    #[must_use]
    pub fn decision(&self, direction: LinkDirection, seq: u64) -> FaultDecision {
        let stream = match direction {
            LinkDirection::Inbound => 1,
            LinkDirection::Outbound => 2,
        };
        let r = self.draw(stream, seq);
        let gate = (r & 1023) as u16;
        let mut edge = self.plan.drop_per_1024;
        if gate < edge {
            return FaultDecision::Drop;
        }
        edge = edge.saturating_add(self.plan.dup_per_1024);
        if gate < edge {
            return FaultDecision::Duplicate;
        }
        edge = edge.saturating_add(self.plan.reorder_per_1024);
        if gate < edge && direction == LinkDirection::Outbound {
            // Inbound traffic is request-paced (one message per protocol
            // step): holding it would stall the dialogue until the
            // deadline, not reorder it. Sends come in bursts, so the
            // adjacent swap lives there.
            return FaultDecision::Reorder;
        }
        if self.plan.max_delay_micros > 0 {
            let micros = ((r >> 16) % (u64::from(self.plan.max_delay_micros) + 1)) as u32;
            if micros > 0 {
                return FaultDecision::Delay(micros);
            }
        }
        FaultDecision::Deliver
    }

    /// `Some(k)` if this link's participant crashes instead of handling
    /// its `k`-th inbound message (1-based), `None` if it never crashes.
    #[must_use]
    pub fn crash_after(&self) -> Option<u64> {
        if self.plan.crash_per_1024 == 0 {
            return None;
        }
        let r = self.draw(3, 0);
        if (r & 1023) as u16 >= self.plan.crash_per_1024 {
            return None;
        }
        // Crash while handling message 1..=6: early enough to hit every
        // scheme's dialogue, late enough to sometimes strand mid-session.
        Some(1 + ((r >> 16) % 6))
    }
}

/// One injected fault, for replay verification and reports.
///
/// Events on a single link are recorded in schedule order; aggregate logs
/// across links are sorted, so a whole campaign's event list is a
/// deterministic function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// A message was discarded.
    Dropped {
        /// Link the fault fired on.
        link: u64,
        /// Direction of the affected message.
        direction: LinkDirection,
        /// Per-link, per-direction sequence number of the message.
        seq: u64,
    },
    /// A message was delivered twice.
    Duplicated {
        /// Link the fault fired on.
        link: u64,
        /// Direction of the affected message.
        direction: LinkDirection,
        /// Per-link, per-direction sequence number of the message.
        seq: u64,
    },
    /// A message was swapped with its successor.
    Reordered {
        /// Link the fault fired on.
        link: u64,
        /// Direction of the affected message.
        direction: LinkDirection,
        /// Per-link, per-direction sequence number of the message.
        seq: u64,
    },
    /// A message was delivered late.
    Delayed {
        /// Link the fault fired on.
        link: u64,
        /// Direction of the affected message.
        direction: LinkDirection,
        /// Per-link, per-direction sequence number of the message.
        seq: u64,
        /// Injected latency in microseconds.
        micros: u32,
    },
    /// The participant crashed instead of handling inbound message
    /// number `after` (1-based).
    Crashed {
        /// Link whose participant died.
        link: u64,
        /// The inbound message count at which it died.
        after: u64,
    },
}

/// A shared, thread-safe log of injected [`FaultEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    events: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, event: FaultEvent) {
        self.events.lock().expect("fault log poisoned").push(event);
    }

    /// A copy of the events recorded so far, in recording order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FaultEvent> {
        self.events.lock().expect("fault log poisoned").clone()
    }
}

#[derive(Debug, Default)]
struct FaultState {
    out_seq: u64,
    in_seq: u64,
    delivered: u64,
    crashed: bool,
    /// Outbound message held for an adjacent swap; released by the next
    /// send, the next receive, or a (clean) drop.
    hold_out: Option<Message>,
    /// Inbound messages ready for delivery (duplicate copies).
    pending_in: VecDeque<(Message, u64)>,
}

/// A [`GridLink`] decorator that applies a [`LinkFaults`] schedule.
///
/// All fault decisions run on the caller's thread, so an injected delay
/// stalls only this link. A seeded crash makes every subsequent operation
/// fail with [`GridError::Disconnected`] and loses any held messages —
/// from the peer's perspective the participant simply died. An outbound
/// reorder hold is released by the next send (the swap), the next receive
/// (the burst is over) or a clean drop, so the schedule delays messages
/// but never strands one.
#[derive(Debug)]
pub struct FaultyEndpoint {
    inner: Endpoint,
    faults: LinkFaults,
    log: FaultLog,
    state: Mutex<FaultState>,
}

impl FaultyEndpoint {
    /// Decorates `inner` with the given per-link schedule.
    #[must_use]
    pub fn new(inner: Endpoint, faults: LinkFaults) -> Self {
        FaultyEndpoint {
            inner,
            faults,
            log: FaultLog::new(),
            state: Mutex::new(FaultState::default()),
        }
    }

    /// A handle onto this link's fault-event log (clone it before moving
    /// the endpoint into its participant thread).
    #[must_use]
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// The schedule this endpoint applies.
    #[must_use]
    pub fn faults(&self) -> LinkFaults {
        self.faults
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault state poisoned")
    }

    /// Books one inbound delivery, enforcing the seeded crash point.
    fn deliver_in(
        &self,
        st: &mut FaultState,
        msg: Message,
        charged: u64,
    ) -> Result<(Message, u64), GridError> {
        if let Some(after) = self.faults.crash_after() {
            if st.delivered + 1 >= after {
                st.crashed = true;
                self.log.push(FaultEvent::Crashed {
                    link: self.faults.link_id,
                    after,
                });
                return Err(GridError::Disconnected);
            }
        }
        st.delivered += 1;
        Ok((msg, charged))
    }

    /// Releases an outbound reorder hold. Called when the link turns
    /// around to receive (the burst is over — nothing left to swap with)
    /// and on clean drop, so a held trailing message is delayed, never
    /// stranded. Send failures are ignored: the peer may already be gone,
    /// and the fault schedule was recorded when the hold was taken.
    fn flush_held_out(&self, st: &mut FaultState) {
        if let Some(held) = st.hold_out.take() {
            let _ = self.inner.send(&held);
        }
    }

    /// Applies the schedule to one freshly received message. `Ok(None)`
    /// means the message was consumed (dropped or held) and the caller
    /// should pull the next one.
    fn admit_in(
        &self,
        st: &mut FaultState,
        msg: Message,
        charged: u64,
    ) -> Result<Option<(Message, u64)>, GridError> {
        let seq = st.in_seq;
        st.in_seq += 1;
        let link = self.faults.link_id;
        let direction = LinkDirection::Inbound;
        match self.faults.decision(direction, seq) {
            FaultDecision::Drop => {
                self.log.push(FaultEvent::Dropped {
                    link,
                    direction,
                    seq,
                });
                Ok(None)
            }
            FaultDecision::Duplicate => {
                self.log.push(FaultEvent::Duplicated {
                    link,
                    direction,
                    seq,
                });
                st.pending_in.push_back((msg.clone(), charged));
                self.deliver_in(st, msg, charged).map(Some)
            }
            FaultDecision::Delay(micros) => {
                self.log.push(FaultEvent::Delayed {
                    link,
                    direction,
                    seq,
                    micros,
                });
                // Stalls only this participant's thread: the broker pump
                // and every other link keep flowing.
                std::thread::sleep(std::time::Duration::from_micros(u64::from(micros)));
                self.deliver_in(st, msg, charged).map(Some)
            }
            FaultDecision::Deliver | FaultDecision::Reorder => {
                self.deliver_in(st, msg, charged).map(Some)
            }
        }
    }
}

impl GridLink for FaultyEndpoint {
    fn send_counted(&self, msg: &Message) -> Result<u64, GridError> {
        let mut st = self.lock();
        if st.crashed {
            return Err(GridError::Disconnected);
        }
        let seq = st.out_seq;
        st.out_seq += 1;
        let link = self.faults.link_id;
        let direction = LinkDirection::Outbound;
        let nominal = msg.wire_len() + FRAME_HEADER_BYTES;
        match self.faults.decision(direction, seq) {
            FaultDecision::Drop => {
                self.log.push(FaultEvent::Dropped {
                    link,
                    direction,
                    seq,
                });
                // The caller is told the nominal charge; nothing crossed.
                return Ok(nominal);
            }
            FaultDecision::Duplicate => {
                self.log.push(FaultEvent::Duplicated {
                    link,
                    direction,
                    seq,
                });
                self.inner.send_counted(msg)?;
            }
            FaultDecision::Reorder if st.hold_out.is_none() => {
                self.log.push(FaultEvent::Reordered {
                    link,
                    direction,
                    seq,
                });
                st.hold_out = Some(msg.clone());
                return Ok(nominal);
            }
            FaultDecision::Delay(micros) => {
                self.log.push(FaultEvent::Delayed {
                    link,
                    direction,
                    seq,
                    micros,
                });
                std::thread::sleep(std::time::Duration::from_micros(u64::from(micros)));
            }
            FaultDecision::Deliver | FaultDecision::Reorder => {}
        }
        let charged = self.inner.send_counted(msg)?;
        // The adjacent swap completes: the held predecessor follows.
        if let Some(held) = st.hold_out.take() {
            self.inner.send_counted(&held)?;
        }
        Ok(charged)
    }

    fn recv_counted(&self) -> Result<(Message, u64), GridError> {
        loop {
            let mut st = self.lock();
            if st.crashed {
                return Err(GridError::Disconnected);
            }
            // Turning around to receive ends the send burst: release any
            // reorder hold before (possibly) blocking on the peer.
            self.flush_held_out(&mut st);
            if let Some((msg, charged)) = st.pending_in.pop_front() {
                return self.deliver_in(&mut st, msg, charged);
            }
            drop(st);
            match self.inner.recv_counted() {
                Ok((msg, charged)) => {
                    let mut st = self.lock();
                    if let Some(delivery) = self.admit_in(&mut st, msg, charged)? {
                        return Ok(delivery);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv_counted(&self) -> Result<(Message, u64), GridError> {
        loop {
            let mut st = self.lock();
            if st.crashed {
                return Err(GridError::Disconnected);
            }
            self.flush_held_out(&mut st);
            if let Some((msg, charged)) = st.pending_in.pop_front() {
                return self.deliver_in(&mut st, msg, charged);
            }
            drop(st);
            match self.inner.try_recv_counted() {
                Ok((msg, charged)) => {
                    let mut st = self.lock();
                    if let Some(delivery) = self.admit_in(&mut st, msg, charged)? {
                        return Ok(delivery);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }
}

impl Drop for FaultyEndpoint {
    fn drop(&mut self) {
        let st = self.state.get_mut().expect("fault state poisoned");
        // A crashed participant loses its held mail; a clean shutdown
        // flushes it (the peer may still be waiting on that verdict).
        if !st.crashed {
            if let Some(held) = st.hold_out.take() {
                let _ = self.inner.send(&held);
            }
        }
    }
}
