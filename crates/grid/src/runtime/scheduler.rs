//! Cooperative participant scheduler: many poll-driven tasks over a
//! fixed pool of OS threads, with per-worker run queues and work
//! stealing.
//!
//! The thread-per-participant runtime of PR 4 caps a campaign at however
//! many OS threads the host tolerates — tens, not the "huge pool of
//! untrusted participants" the paper supervises. This module removes
//! that cap the same way the supervisor side did in the
//! `SessionEngine`: participants become non-blocking state machines
//! ([`GridTask`]s whose [`poll`](GridTask::poll) never blocks), and a
//! [`GridScheduler`] multiplexes thousands of them over `workers` OS
//! threads (default: one per available core).
//!
//! PR 5's scheduler funnelled every pop and push through one shared
//! round-robin queue, so at scale the workers spent their time fighting
//! over a single mutex. The current design shards that state per
//! worker:
//!
//! ```text
//!            ┌──────────────── GridScheduler ────────────────┐
//!            │  wkr 0             wkr 1        …  wkr W      │
//!            │ ┌────────┐       ┌────────┐      ┌────────┐   │
//!   ready ─▶ │ │[t17][t4]│◀──── │[t952]… │      │[t31]…  │   │  per-worker
//!            │ └───▲────┘ steal └────────┘      └────────┘   │  run queues
//!            │     │ local pop (front);                      │
//!            │     │ steals take the back half               │
//!   parked ─▶│ [t3][t89]…  (re-queued in one batch per       │  idle tasks
//!            │  worker — on that worker's progress or its    │
//!            │  next idle sweep, after a shared exponential  │
//!            │  backoff)                                     │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! Scheduling policy, in full:
//!
//! * **Per-worker ready queues** — tasks are dealt round-robin across
//!   the workers up front; each worker pops its own queue from the
//!   front (FIFO, so no task on a queue can starve another on the same
//!   queue), uncontended while every worker has local work.
//! * **Work stealing** — a worker whose queue runs dry picks a victim
//!   in a *seeded* pseudo-random order (SplitMix64 over the scheduler's
//!   [`steal seed`](GridScheduler::with_steal_seed), worker index and
//!   sweep count — no ambient RNG, so a replay walks the same victim
//!   sequence) and steals the back half of the victim's ready queue in
//!   one lock acquisition. Scheduling-only: verdicts, fault logs and
//!   byte counts are interleaving-independent by construction, so the
//!   steal order can never reach a digest.
//! * **Parked list** — a task that reported [`TaskPoll::Idle`] (nothing
//!   to receive right now) is set aside on the polling worker's parked
//!   list so it stops consuming a worker.
//! * **Wake-up, batched per worker** — when a worker makes progress (or
//!   completes a task), it re-queues *its own* parked list in a single
//!   batch under one lock; an idle worker does the same after each
//!   backoff sweep. Parked tasks re-enter that worker's ready queue and
//!   can be stolen from there like any other work. When every task is
//!   parked, workers wait on the shared exponential [`Backoff`] ladder
//!   (yield → 10 µs → 100 µs → 1 ms), so a fully idle pool costs ~zero
//!   CPU while a busy one reacts in nanoseconds.
//! * **Completion** — [`TaskPoll::Complete`] removes the task; the run
//!   ends when none remain, and [`GridScheduler::run`] hands every task
//!   back in its original order so callers can harvest results.
//!
//! Determinism: the scheduler's only pseudo-randomness is the seeded
//! steal order, and the fault-injection layer keys every decision on
//! per-link sequence numbers, so a campaign's fault log and verdicts
//! are identical at any worker count *and any steal seed* —
//! property-tested in `tests/scheduler_equivalence.rs` and
//! `tests/scale_soak.rs` at `workers ∈ {1, 4, 8, participants}`.
//!
//! # Example
//!
//! A thousand counters, four workers — each task parks between steps and
//! the scheduler keeps them all moving:
//!
//! ```
//! use ugc_grid::runtime::{GridScheduler, GridTask, TaskPoll};
//!
//! struct Countdown {
//!     left: u32,
//!     parked_once: bool,
//! }
//!
//! impl GridTask for Countdown {
//!     fn poll(&mut self) -> TaskPoll {
//!         if self.left == 0 {
//!             return TaskPoll::Complete;
//!         }
//!         if !self.parked_once {
//!             self.parked_once = true; // simulate "no mail yet"
//!             return TaskPoll::Idle;
//!         }
//!         self.parked_once = false;
//!         self.left -= 1;
//!         TaskPoll::Progress
//!     }
//! }
//!
//! let tasks: Vec<Countdown> = (0..1000)
//!     .map(|i| Countdown { left: 1 + (i % 5), parked_once: false })
//!     .collect();
//! let done = GridScheduler::new(4).run(tasks);
//! assert_eq!(done.len(), 1000);
//! assert!(done.iter().all(|t| t.left == 0));
//! ```

use crate::{Backoff, BackoffPolicy};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What one [`GridTask::poll`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// The task did useful work (e.g. processed an inbound message) and
    /// should be polled again soon — it goes back on the ready queue.
    Progress,
    /// Nothing to do right now (e.g. the peer has not answered yet); the
    /// task is parked until the pool's next wake-up.
    Idle,
    /// The task is finished and leaves the scheduler.
    Complete,
}

/// A non-blocking unit of scheduled work: one participant session, one
/// relay pump — anything that advances in short, poll-sized steps.
///
/// `poll` must not block indefinitely: a task waiting on its peer
/// returns [`TaskPoll::Idle`] and is parked instead of pinning a worker.
/// (A `poll` that *does* block — e.g. a legacy blocking closure run as a
/// single step — simply occupies its worker until it returns, which is
/// exactly how [`run_brokered`](crate::runtime::run_brokered) recovers
/// the old thread-per-participant semantics.)
pub trait GridTask: Send {
    /// Advances the task one step.
    fn poll(&mut self) -> TaskPoll;
}

/// One worker's shard of the run-queue state. The owner pops `ready`
/// from the front; thieves split off its back half. `parked` is only
/// ever touched by the worker that owns the shard.
struct LocalQueue<T> {
    /// Runnable tasks tagged with their original index.
    ready: VecDeque<(usize, T)>,
    /// Tasks that had nothing to do on their last poll; re-queued in one
    /// batch on this worker's next progress or idle sweep.
    parked: Vec<(usize, T)>,
}

/// State shared by the whole pool.
struct Pool<T> {
    /// One run-queue shard per worker.
    locals: Vec<Mutex<LocalQueue<T>>>,
    /// Completed tasks, parked at their original index.
    finished: Mutex<Vec<Option<T>>>,
    /// Tasks not yet complete (including any currently inside a worker's
    /// `poll` call).
    remaining: AtomicUsize,
    /// Bumped on every poll that made progress (or completed a task):
    /// sleeping workers compare generations to reset their backoff the
    /// moment the pool is busy again.
    progress: AtomicU64,
}

/// One SplitMix64 step — the steal-order generator. Seeded and
/// self-contained (no ambient RNG), so every replay of a campaign walks
/// the identical victim sequence.
fn next_steal(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded per-worker steal-order state: deterministic for a given
/// `(steal_seed, worker)` pair, distinct across workers so they do not
/// all mob the same victim.
fn steal_rng(steal_seed: u64, worker: usize) -> u64 {
    steal_seed ^ (worker as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Which victim a steal sweep starts from: a seeded offset into the
/// `others` workers that are not the thief. The narrowing cast is safe:
/// the modulus is a worker count, far below `u32::MAX`.
fn steal_start(rng: &mut u64, others: usize) -> usize {
    (next_steal(rng) % others as u64) as usize
}

/// A cooperative work-stealing scheduler multiplexing [`GridTask`]s over
/// a fixed pool of OS threads.
///
/// See the [module docs](self) for the scheduling policy and an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridScheduler {
    workers: usize,
    backoff: BackoffPolicy,
    steal_seed: u64,
}

impl Default for GridScheduler {
    /// One worker per available core.
    fn default() -> Self {
        Self::available()
    }
}

impl GridScheduler {
    /// A scheduler with a fixed worker pool (`workers == 0` is clamped
    /// to 1 — a pool must have at least one thread).
    #[must_use]
    pub const fn new(workers: usize) -> Self {
        GridScheduler {
            workers: if workers == 0 { 1 } else { workers },
            backoff: BackoffPolicy::new(10, 1_000),
            steal_seed: 0,
        }
    }

    /// Reshapes the idle-backoff ladder the pool's workers climb while
    /// their ready queues are dry. Timing-only: scheduling order and
    /// results are unaffected.
    #[must_use]
    pub const fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Seeds the pseudo-random (SplitMix64) victim order workers walk
    /// when they steal. Scheduling-only: any seed yields the same task
    /// results, fault logs and byte counts — property-tested in
    /// `tests/scheduler_equivalence.rs` — so this knob exists to *prove*
    /// that, not to tune anything.
    #[must_use]
    pub const fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// One worker per available core — the default for campaigns whose
    /// tasks are genuinely non-blocking.
    #[must_use]
    pub fn available() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The configured pool size.
    #[must_use]
    pub const fn workers(&self) -> usize {
        self.workers
    }

    /// The configured steal-order seed.
    #[must_use]
    pub const fn steal_seed(&self) -> u64 {
        self.steal_seed
    }

    /// Runs every task to [`TaskPoll::Complete`], returning the tasks in
    /// their original order so callers can harvest per-task results.
    ///
    /// The pool spawns `min(workers, tasks.len())` scoped threads; the
    /// calling thread only coordinates. Tasks are dealt round-robin
    /// across the workers' ready queues up front; imbalance is repaired
    /// by stealing. Panics in a task's `poll` propagate as a panic here
    /// (the run cannot meaningfully continue).
    ///
    /// # Panics
    ///
    /// If a task's `poll` panics.
    #[must_use]
    pub fn run<T: GridTask>(&self, tasks: Vec<T>) -> Vec<T> {
        if tasks.is_empty() {
            return tasks;
        }
        let count = tasks.len();
        let workers = self.workers.min(count);
        let mut locals: Vec<LocalQueue<T>> = (0..workers)
            .map(|_| LocalQueue {
                ready: VecDeque::new(),
                parked: Vec::new(),
            })
            .collect();
        for (index, task) in tasks.into_iter().enumerate() {
            locals[index % workers].ready.push_back((index, task));
        }
        let pool = Pool {
            locals: locals.into_iter().map(Mutex::new).collect(),
            finished: Mutex::new((0..count).map(|_| None).collect()),
            remaining: AtomicUsize::new(count),
            progress: AtomicU64::new(0),
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let pool = &pool;
                    scope.spawn(move || worker_loop(pool, me, self.steal_seed, self.backoff))
                })
                .collect();
            for handle in handles {
                handle.join().expect("scheduler worker panicked");
            }
        });
        let finished = pool.finished.into_inner().expect("finished list poisoned");
        finished
            .into_iter()
            .map(|t| t.expect("every task completed"))
            .collect()
    }
}

fn lock<T>(queue: &Mutex<LocalQueue<T>>) -> MutexGuard<'_, LocalQueue<T>> {
    queue.lock().expect("run queue poisoned")
}

/// Moves the worker's whole parked list back onto its ready queue in one
/// batch (one lock acquisition) — the batched wake-up.
fn requeue_parked<T>(q: &mut LocalQueue<T>) {
    let parked = std::mem::take(&mut q.parked);
    q.ready.extend(parked);
}

/// Attempts to steal work for worker `me`: walks the other workers in a
/// seeded pseudo-random order and splits off the back half of the first
/// non-empty ready queue found. Returns one task to run now; the rest of
/// the batch lands on `me`'s own queue.
fn steal<T>(pool: &Pool<T>, me: usize, rng: &mut u64) -> Option<(usize, T)> {
    let n = pool.locals.len();
    if n <= 1 {
        return None;
    }
    let start = steal_start(rng, n - 1);
    for step in 0..n - 1 {
        let victim = (me + 1 + (start + step) % (n - 1)) % n;
        let mut grabbed = {
            let mut q = lock(&pool.locals[victim]);
            let len = q.ready.len();
            if len == 0 {
                continue;
            }
            q.ready.split_off(len - len.div_ceil(2))
        };
        let first = grabbed.pop_front().expect("steal batch is non-empty");
        if !grabbed.is_empty() {
            lock(&pool.locals[me]).ready.extend(grabbed);
        }
        return Some(first);
    }
    None
}

/// One worker: pop the local ready queue (stealing when it runs dry),
/// poll the task outside any lock, act on the verdict; when no work is
/// reachable anywhere, climb the backoff ladder and re-queue the local
/// parked list in one batch.
fn worker_loop<T: GridTask>(pool: &Pool<T>, me: usize, steal_seed: u64, policy: BackoffPolicy) {
    let mut backoff = Backoff::with_policy(policy);
    let mut seen = pool.progress.load(Ordering::Acquire);
    let mut rng = steal_rng(steal_seed, me);
    loop {
        if pool.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let job = {
            let popped = lock(&pool.locals[me]).ready.pop_front();
            match popped {
                Some(job) => Some(job),
                None => steal(pool, me, &mut rng),
            }
        };
        let Some((index, mut task)) = job else {
            // Nothing runnable anywhere visible. Wait on the shared
            // ladder (resetting if the pool made progress since we last
            // looked), then wake our parked batch for a fresh sweep.
            let now = pool.progress.load(Ordering::Acquire);
            if now != seen {
                seen = now;
                backoff.reset();
            }
            backoff.wait();
            requeue_parked(&mut lock(&pool.locals[me]));
            continue;
        };
        let verdict = task.poll();
        if matches!(verdict, TaskPoll::Progress | TaskPoll::Complete) {
            // The single productive-verdict site: publish the pool-wide
            // progress epoch and return this worker's ladder to the hot
            // state exactly once per poll, whatever the verdict arm does
            // with the task afterwards.
            pool.progress.fetch_add(1, Ordering::Release);
            backoff.reset();
        }
        match verdict {
            TaskPoll::Progress => {
                let mut q = lock(&pool.locals[me]);
                q.ready.push_back((index, task));
                // Progress usually means traffic flowed: wake this
                // worker's parked batch so they see their share of it.
                requeue_parked(&mut q);
            }
            TaskPoll::Idle => {
                lock(&pool.locals[me]).parked.push((index, task));
            }
            TaskPoll::Complete => {
                {
                    let mut done = pool.finished.lock().expect("finished list poisoned");
                    done[index] = Some(task);
                }
                pool.remaining.fetch_sub(1, Ordering::AcqRel);
                requeue_parked(&mut lock(&pool.locals[me]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A task that must be polled `steps` times (interleaving Idle and
    /// Progress) before completing, recording the max observed
    /// concurrency.
    struct Step<'a> {
        steps: u32,
        in_flight: &'a AtomicUsize,
        peak: &'a AtomicUsize,
    }

    impl GridTask for Step<'_> {
        fn poll(&mut self) -> TaskPoll {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            let verdict = match self.steps {
                0 => TaskPoll::Complete,
                n if n % 2 == 0 => TaskPoll::Idle,
                _ => TaskPoll::Progress,
            };
            self.steps = self.steps.saturating_sub(1);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            verdict
        }
    }

    #[test]
    fn completes_every_task_in_original_order() {
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Step<'_>> = (0..100)
            .map(|i| Step {
                steps: i % 7,
                in_flight: &in_flight,
                peak: &peak,
            })
            .collect();
        let done = GridScheduler::new(4).run(tasks);
        assert_eq!(done.len(), 100);
        assert!(done.iter().all(|t| t.steps == 0));
    }

    #[test]
    fn pool_never_exceeds_worker_count() {
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Step<'_>> = (0..64)
            .map(|_| Step {
                steps: 9,
                in_flight: &in_flight,
                peak: &peak,
            })
            .collect();
        let _ = GridScheduler::new(3).run(tasks);
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak concurrency {} exceeded the 3-worker pool",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn single_worker_drains_parked_tasks() {
        // A task that reports Idle until some *other* task has completed
        // exercises the park/requeue path: with one worker, nothing else
        // can be concurrently in flight.
        struct Waiter<'a> {
            done: &'a AtomicUsize,
            needs: usize,
        }
        impl GridTask for Waiter<'_> {
            fn poll(&mut self) -> TaskPoll {
                if self.needs == 0 {
                    self.done.fetch_add(1, Ordering::SeqCst);
                    return TaskPoll::Complete;
                }
                if self.done.load(Ordering::SeqCst) >= self.needs {
                    self.needs = 0;
                    return TaskPoll::Progress;
                }
                TaskPoll::Idle
            }
        }
        let done = AtomicUsize::new(0);
        // Task i waits for i completions: a dependency chain that forces
        // repeated park/requeue cycles in reverse queue order.
        let tasks: Vec<Waiter<'_>> = (0..8)
            .map(|i| Waiter {
                done: &done,
                needs: i,
            })
            .collect();
        let finished = GridScheduler::new(1).run(tasks);
        assert_eq!(finished.len(), 8);
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn dependency_chain_crosses_worker_queues() {
        // The same dependency chain, but spread over more workers than
        // tasks-with-work at any instant: completing it requires parked
        // tasks on one worker's shard to be woken while other workers
        // sit idle — the cross-shard steal/requeue interplay.
        struct Waiter<'a> {
            done: &'a AtomicUsize,
            needs: usize,
        }
        impl GridTask for Waiter<'_> {
            fn poll(&mut self) -> TaskPoll {
                if self.needs == 0 {
                    self.done.fetch_add(1, Ordering::SeqCst);
                    return TaskPoll::Complete;
                }
                if self.done.load(Ordering::SeqCst) >= self.needs {
                    self.needs = 0;
                    return TaskPoll::Progress;
                }
                TaskPoll::Idle
            }
        }
        let done = AtomicUsize::new(0);
        let tasks: Vec<Waiter<'_>> = (0..24)
            .map(|i| Waiter {
                done: &done,
                needs: i,
            })
            .collect();
        let finished = GridScheduler::new(8).run(tasks);
        assert_eq!(finished.len(), 24);
        assert_eq!(done.load(Ordering::SeqCst), 24);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(GridScheduler::new(0).workers(), 1);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let done = GridScheduler::new(0).run(vec![Step {
            steps: 3,
            in_flight: &in_flight,
            peak: &peak,
        }]);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn empty_task_list_returns_immediately() {
        let done: Vec<Step<'_>> = GridScheduler::new(4).run(Vec::new());
        assert!(done.is_empty());
    }

    #[test]
    fn default_uses_available_cores() {
        assert_eq!(
            GridScheduler::default().workers(),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        );
    }

    #[test]
    fn steal_order_is_deterministic_per_seed_and_worker() {
        // The victim sequence is a pure function of (steal_seed, worker):
        // replaying the same seed walks the same victims, different seeds
        // or workers walk different ones (no ambient entropy anywhere).
        let sequence = |seed: u64, worker: usize| -> Vec<usize> {
            let mut rng = steal_rng(seed, worker);
            (0..64).map(|_| steal_start(&mut rng, 7)).collect()
        };
        assert_eq!(sequence(0x5EED, 0), sequence(0x5EED, 0));
        assert_eq!(sequence(0x5EED, 3), sequence(0x5EED, 3));
        assert_ne!(sequence(0x5EED, 0), sequence(0x5EED, 1));
        assert_ne!(sequence(0x5EED, 0), sequence(0xBEEF, 0));
        // Every start stays inside the victim range.
        assert!(sequence(0x5EED, 2).iter().all(|&s| s < 7));
    }

    #[test]
    fn steal_seed_never_changes_results() {
        // The steal order decides who runs what where — never what any
        // task computes. Same tasks, different seeds, identical results.
        let run = |seed: u64| -> Vec<u32> {
            let in_flight = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            let tasks: Vec<Step<'_>> = (0..200)
                .map(|i| Step {
                    steps: i % 11,
                    in_flight: &in_flight,
                    peak: &peak,
                })
                .collect();
            GridScheduler::new(4)
                .with_steal_seed(seed)
                .run(tasks)
                .iter()
                .map(|t| t.steps)
                .collect()
        };
        let reference = run(0);
        for seed in [1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(reference, run(seed), "seed {seed:#x}");
        }
    }

    #[test]
    fn progress_epoch_ticks_once_per_productive_poll() {
        // Drive worker_loop directly over a scripted pool: the shared
        // progress epoch must advance exactly once per Progress/Complete
        // verdict (the single hoisted productive-verdict site) and never
        // on Idle polls.
        struct Scripted {
            verdicts: Vec<TaskPoll>,
        }
        impl GridTask for Scripted {
            fn poll(&mut self) -> TaskPoll {
                self.verdicts.pop().unwrap_or(TaskPoll::Complete)
            }
        }
        // Popped back-to-front: 3 Idle sweeps, then Progress, Progress,
        // Complete — 3 productive polls out of 6.
        let script = vec![
            TaskPoll::Complete,
            TaskPoll::Progress,
            TaskPoll::Progress,
            TaskPoll::Idle,
            TaskPoll::Idle,
            TaskPoll::Idle,
        ];
        let mut ready = VecDeque::new();
        ready.push_back((0usize, Scripted { verdicts: script }));
        let pool = Pool {
            locals: vec![Mutex::new(LocalQueue {
                ready,
                parked: Vec::new(),
            })],
            finished: Mutex::new(vec![None]),
            remaining: AtomicUsize::new(1),
            progress: AtomicU64::new(0),
        };
        worker_loop(&pool, 0, 0, BackoffPolicy::default());
        assert_eq!(pool.progress.load(Ordering::Acquire), 3);
        assert_eq!(pool.remaining.load(Ordering::Acquire), 0);
        assert!(pool.finished.lock().unwrap()[0].is_some());
    }

    #[test]
    fn builder_round_trips_steal_seed() {
        let scheduler = GridScheduler::new(4).with_steal_seed(42);
        assert_eq!(scheduler.steal_seed(), 42);
        assert_eq!(scheduler.workers(), 4);
        assert_eq!(GridScheduler::new(4).steal_seed(), 0);
    }
}
