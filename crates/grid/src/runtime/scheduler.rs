//! Cooperative participant scheduler: many poll-driven tasks over a
//! fixed pool of OS threads.
//!
//! The thread-per-participant runtime of PR 4 caps a campaign at however
//! many OS threads the host tolerates — tens, not the "huge pool of
//! untrusted participants" the paper supervises. This module removes
//! that cap the same way the supervisor side did in the
//! `SessionEngine`: participants become non-blocking state machines
//! ([`GridTask`]s whose [`poll`](GridTask::poll) never blocks), and a
//! [`GridScheduler`] multiplexes thousands of them over `workers` OS
//! threads (default: one per available core).
//!
//! ```text
//!              ┌───────────── GridScheduler ─────────────┐
//!   ready ──▶  │ [task 17] [task 4] [task 952] …         │  round-robin
//!              │     ▲  pop / poll() / push  ▲           │  run-queue
//!              │  ┌──┴───┐  ┌──────┐     ┌───┴──┐        │
//!              │  │ wkr 0│  │ wkr 1│  …  │ wkr W│        │  fixed pool
//!              │  └──────┘  └──────┘     └──────┘        │
//!   parked ──▶ │ [task 3] [task 89] …  (re-queued when   │  idle tasks
//!              │  the ready queue drains, after a shared │
//!              │  exponential backoff)                   │
//!              └─────────────────────────────────────────┘
//! ```
//!
//! Scheduling policy, in full:
//!
//! * **Ready queue** — tasks that reported [`TaskPoll::Progress`] cycle
//!   round-robin through a FIFO; no task can starve another.
//! * **Parked list** — a task that reported [`TaskPoll::Idle`] (nothing
//!   to receive right now) is set aside so it stops consuming a worker.
//! * **Wake-up** — any completed poll that made progress re-queues the
//!   parked list (new traffic may have arrived for anyone); when every
//!   task is parked, workers wait on the shared exponential
//!   [`Backoff`] ladder (yield → 10 µs → 100 µs → 1 ms)
//!   before re-queueing, so a fully idle pool costs ~zero CPU while a
//!   busy one reacts in nanoseconds.
//! * **Completion** — [`TaskPoll::Complete`] removes the task; the run
//!   ends when none remain, and [`GridScheduler::run`] hands every task
//!   back in its original order so callers can harvest results.
//!
//! Determinism: the scheduler adds no randomness of its own, and the
//! fault-injection layer keys every decision on per-link sequence
//! numbers, so a campaign's fault log and verdicts are identical at any
//! worker count — property-tested in `tests/scheduler_equivalence.rs`
//! and `tests/scale_soak.rs` at `workers ∈ {1, 4, participants}`.
//!
//! # Example
//!
//! A thousand counters, four workers — each task parks between steps and
//! the scheduler keeps them all moving:
//!
//! ```
//! use ugc_grid::runtime::{GridScheduler, GridTask, TaskPoll};
//!
//! struct Countdown {
//!     left: u32,
//!     parked_once: bool,
//! }
//!
//! impl GridTask for Countdown {
//!     fn poll(&mut self) -> TaskPoll {
//!         if self.left == 0 {
//!             return TaskPoll::Complete;
//!         }
//!         if !self.parked_once {
//!             self.parked_once = true; // simulate "no mail yet"
//!             return TaskPoll::Idle;
//!         }
//!         self.parked_once = false;
//!         self.left -= 1;
//!         TaskPoll::Progress
//!     }
//! }
//!
//! let tasks: Vec<Countdown> = (0..1000)
//!     .map(|i| Countdown { left: 1 + (i % 5), parked_once: false })
//!     .collect();
//! let done = GridScheduler::new(4).run(tasks);
//! assert_eq!(done.len(), 1000);
//! assert!(done.iter().all(|t| t.left == 0));
//! ```

use crate::{Backoff, BackoffPolicy};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What one [`GridTask::poll`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// The task did useful work (e.g. processed an inbound message) and
    /// should be polled again soon — it goes back on the ready queue.
    Progress,
    /// Nothing to do right now (e.g. the peer has not answered yet); the
    /// task is parked until the pool's next wake-up.
    Idle,
    /// The task is finished and leaves the scheduler.
    Complete,
}

/// A non-blocking unit of scheduled work: one participant session, one
/// relay pump — anything that advances in short, poll-sized steps.
///
/// `poll` must not block indefinitely: a task waiting on its peer
/// returns [`TaskPoll::Idle`] and is parked instead of pinning a worker.
/// (A `poll` that *does* block — e.g. a legacy blocking closure run as a
/// single step — simply occupies its worker until it returns, which is
/// exactly how [`run_brokered`](crate::runtime::run_brokered) recovers
/// the old thread-per-participant semantics.)
pub trait GridTask: Send {
    /// Advances the task one step.
    fn poll(&mut self) -> TaskPoll;
}

/// Shared run-queue state: which tasks are runnable, which are parked,
/// which are done.
struct RunQueue<T> {
    /// Runnable tasks, polled round-robin (FIFO), tagged with their
    /// original index.
    ready: VecDeque<(usize, T)>,
    /// Tasks that had nothing to do on their last poll; re-queued on the
    /// pool's next wake-up.
    parked: Vec<(usize, T)>,
    /// Completed tasks, parked at their original index.
    finished: Vec<Option<T>>,
    /// Tasks not yet complete (including any currently inside a worker's
    /// `poll` call).
    remaining: usize,
}

impl<T> RunQueue<T> {
    /// Moves every parked task back onto the ready queue.
    fn requeue_parked(&mut self) {
        let parked = std::mem::take(&mut self.parked);
        self.ready.extend(parked);
    }
}

/// A cooperative scheduler multiplexing [`GridTask`]s over a fixed pool
/// of OS threads.
///
/// See the [module docs](self) for the scheduling policy and an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridScheduler {
    workers: usize,
    backoff: BackoffPolicy,
}

impl Default for GridScheduler {
    /// One worker per available core.
    fn default() -> Self {
        Self::available()
    }
}

impl GridScheduler {
    /// A scheduler with a fixed worker pool (`workers == 0` is clamped
    /// to 1 — a pool must have at least one thread).
    #[must_use]
    pub const fn new(workers: usize) -> Self {
        GridScheduler {
            workers: if workers == 0 { 1 } else { workers },
            backoff: BackoffPolicy::new(10, 1_000),
        }
    }

    /// Reshapes the idle-backoff ladder the pool's workers climb while
    /// the ready queue is dry. Timing-only: scheduling order and results
    /// are unaffected.
    #[must_use]
    pub const fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// One worker per available core — the default for campaigns whose
    /// tasks are genuinely non-blocking.
    #[must_use]
    pub fn available() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The configured pool size.
    #[must_use]
    pub const fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task to [`TaskPoll::Complete`], returning the tasks in
    /// their original order so callers can harvest per-task results.
    ///
    /// The pool spawns `min(workers, tasks.len())` scoped threads; the
    /// calling thread only coordinates. Panics in a task's `poll`
    /// propagate as a panic here (the run cannot meaningfully continue).
    ///
    /// # Panics
    ///
    /// If a task's `poll` panics.
    #[must_use]
    pub fn run<T: GridTask>(&self, tasks: Vec<T>) -> Vec<T> {
        if tasks.is_empty() {
            return tasks;
        }
        let count = tasks.len();
        let queue = Mutex::new(RunQueue {
            ready: tasks.into_iter().enumerate().collect(),
            parked: Vec::new(),
            finished: (0..count).map(|_| None).collect(),
            remaining: count,
        });
        // Bumped on every poll that made progress (or completed a task):
        // sleeping workers compare generations to reset their backoff the
        // moment the pool is busy again.
        let progress = AtomicU64::new(0);
        let pool = self.workers.min(count);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..pool)
                .map(|_| scope.spawn(|| worker_loop(&queue, &progress, self.backoff)))
                .collect();
            for handle in handles {
                handle.join().expect("scheduler worker panicked");
            }
        });
        let finished = queue.into_inner().expect("run queue poisoned").finished;
        finished
            .into_iter()
            .map(|t| t.expect("every task completed"))
            .collect()
    }
}

fn lock<T>(queue: &Mutex<RunQueue<T>>) -> MutexGuard<'_, RunQueue<T>> {
    queue.lock().expect("run queue poisoned")
}

/// One worker: pop a ready task, poll it outside the lock, act on the
/// verdict; when the ready queue is dry, climb the backoff ladder and
/// re-queue the parked list.
fn worker_loop<T: GridTask>(
    queue: &Mutex<RunQueue<T>>,
    progress: &AtomicU64,
    policy: BackoffPolicy,
) {
    let mut backoff = Backoff::with_policy(policy);
    let mut seen = progress.load(Ordering::Acquire);
    loop {
        let job = {
            let mut q = lock(queue);
            if q.remaining == 0 {
                return;
            }
            q.ready.pop_front()
        };
        let Some((index, mut task)) = job else {
            // Every task is parked or inside another worker. Wait on the
            // shared ladder (resetting if the pool made progress since we
            // last looked), then wake the parked list for a fresh sweep.
            let now = progress.load(Ordering::Acquire);
            if now != seen {
                seen = now;
                backoff.reset();
            }
            backoff.wait();
            let mut q = lock(queue);
            if q.remaining == 0 {
                return;
            }
            q.requeue_parked();
            continue;
        };
        match task.poll() {
            TaskPoll::Progress => {
                progress.fetch_add(1, Ordering::Release);
                backoff.reset();
                let mut q = lock(queue);
                q.ready.push_back((index, task));
                // Progress usually means traffic flowed: give parked
                // tasks a chance to see their share of it.
                q.requeue_parked();
            }
            TaskPoll::Idle => {
                lock(queue).parked.push((index, task));
            }
            TaskPoll::Complete => {
                progress.fetch_add(1, Ordering::Release);
                backoff.reset();
                let mut q = lock(queue);
                q.finished[index] = Some(task);
                q.remaining -= 1;
                q.requeue_parked();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A task that must be polled `steps` times (interleaving Idle and
    /// Progress) before completing, recording the max observed
    /// concurrency.
    struct Step<'a> {
        steps: u32,
        in_flight: &'a AtomicUsize,
        peak: &'a AtomicUsize,
    }

    impl GridTask for Step<'_> {
        fn poll(&mut self) -> TaskPoll {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            let verdict = match self.steps {
                0 => TaskPoll::Complete,
                n if n % 2 == 0 => TaskPoll::Idle,
                _ => TaskPoll::Progress,
            };
            self.steps = self.steps.saturating_sub(1);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            verdict
        }
    }

    #[test]
    fn completes_every_task_in_original_order() {
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Step<'_>> = (0..100)
            .map(|i| Step {
                steps: i % 7,
                in_flight: &in_flight,
                peak: &peak,
            })
            .collect();
        let done = GridScheduler::new(4).run(tasks);
        assert_eq!(done.len(), 100);
        assert!(done.iter().all(|t| t.steps == 0));
    }

    #[test]
    fn pool_never_exceeds_worker_count() {
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Step<'_>> = (0..64)
            .map(|_| Step {
                steps: 9,
                in_flight: &in_flight,
                peak: &peak,
            })
            .collect();
        let _ = GridScheduler::new(3).run(tasks);
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak concurrency {} exceeded the 3-worker pool",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn single_worker_drains_parked_tasks() {
        // A task that reports Idle until some *other* task has completed
        // exercises the park/requeue path: with one worker, nothing else
        // can be concurrently in flight.
        struct Waiter<'a> {
            done: &'a AtomicUsize,
            needs: usize,
        }
        impl GridTask for Waiter<'_> {
            fn poll(&mut self) -> TaskPoll {
                if self.needs == 0 {
                    self.done.fetch_add(1, Ordering::SeqCst);
                    return TaskPoll::Complete;
                }
                if self.done.load(Ordering::SeqCst) >= self.needs {
                    self.needs = 0;
                    return TaskPoll::Progress;
                }
                TaskPoll::Idle
            }
        }
        let done = AtomicUsize::new(0);
        // Task i waits for i completions: a dependency chain that forces
        // repeated park/requeue cycles in reverse queue order.
        let tasks: Vec<Waiter<'_>> = (0..8)
            .map(|i| Waiter {
                done: &done,
                needs: i,
            })
            .collect();
        let finished = GridScheduler::new(1).run(tasks);
        assert_eq!(finished.len(), 8);
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(GridScheduler::new(0).workers(), 1);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let done = GridScheduler::new(0).run(vec![Step {
            steps: 3,
            in_flight: &in_flight,
            peak: &peak,
        }]);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn empty_task_list_returns_immediately() {
        let done: Vec<Step<'_>> = GridScheduler::new(4).run(Vec::new());
        assert!(done.is_empty());
    }

    #[test]
    fn default_uses_available_cores() {
        assert_eq!(
            GridScheduler::default().workers(),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        );
    }
}
