//! The grid runtime: participants multiplexed over a worker pool.
//!
//! Everything below the verification schemes is assembled here: a
//! supervisor link, a relaying [`Broker`] pumping on its own OS thread,
//! and the participants — poll-driven [`GridTask`]s multiplexed by a
//! [`GridScheduler`] over a fixed worker pool ([`run_brokered_tasks`]),
//! or legacy blocking closures run one-per-worker ([`run_brokered`], a
//! thin wrapper over the same scheduler). Every participant link sits
//! behind a deterministic fault-injection decorator ([`FaultyEndpoint`]).
//! The harness measures wall-clock time and collects the injected-fault
//! log so callers can report throughput and verify bit-identical replays.
//!
//! The scheme-aware wiring (which session runs on which participant) lives
//! in `ugc-core`'s orchestrator; this module is deliberately ignorant of
//! sessions — it only knows how to connect, decorate, schedule and join.
//!
//! ```
//! use ugc_grid::runtime::{run_brokered, RuntimeOptions};
//! use ugc_grid::{GridLink, Message};
//!
//! // Two echo participants behind the broker, no fault injection.
//! let report = run_brokered(
//!     2,
//!     &RuntimeOptions::default(),
//!     |_, link| {
//!         while let Ok(msg) = link.recv() {
//!             link.send(&Message::Commit {
//!                 task_id: msg.task_id(),
//!                 root: vec![0xAB; 16],
//!             })
//!             .unwrap();
//!         }
//!     },
//!     |supervisor| {
//!         use ugc_grid::Assignment;
//!         use ugc_task::Domain;
//!         for task_id in 0..2 {
//!             supervisor
//!                 .send(&Message::Assign(Assignment {
//!                     task_id,
//!                     domain: Domain::new(0, 8),
//!                 }))
//!                 .unwrap();
//!         }
//!         (0..2).map(|_| supervisor.recv().unwrap().task_id()).sum::<u64>()
//!     },
//! );
//! assert_eq!(report.supervisor, 1);
//! assert_eq!(report.relay.outward, 2);
//! assert!(report.events.is_empty());
//! ```

mod fault;
pub mod scheduler;

pub use fault::{
    FaultDecision, FaultEvent, FaultLog, FaultPlan, FaultyEndpoint, LinkDirection, LinkFaults,
};
pub use scheduler::{GridScheduler, GridTask, TaskPoll};

use crate::{duplex, BackoffPolicy, Broker, Endpoint, RelayStats};
use std::time::{Duration, Instant};

/// Configuration of one [`run_brokered`] / [`run_brokered_tasks`] round.
///
/// Build it with the `Default` impl plus the builder-style setters:
///
/// ```
/// use ugc_grid::runtime::{FaultPlan, RuntimeOptions};
/// use ugc_grid::BackoffPolicy;
///
/// let options = RuntimeOptions::default()
///     .with_fault(FaultPlan::chaos(7))
///     .with_link_id_base(1 << 32)
///     .with_workers(4)
///     .with_backoff(BackoffPolicy::new(1, 100));
/// assert_eq!(options.workers, Some(4));
/// assert_eq!(options.backoff.cap_micros, 100);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Fault schedule applied to every participant link (`None` injects
    /// nothing).
    pub fault: Option<FaultPlan>,
    /// Offset added to participant indices to form link ids, so retry
    /// rounds draw fresh fault schedules for their replacement
    /// participants.
    pub link_id_base: u64,
    /// Size of the [`GridScheduler`] worker pool. `None` keeps one
    /// worker per participant (the thread-per-participant semantics of
    /// the PR 4 runtime — the only safe choice for [`run_brokered`]'s
    /// blocking closures); `Some(w)` multiplexes all participants over
    /// `w` OS threads, which poll-driven [`GridTask`]s tolerate at any
    /// value.
    pub workers: Option<usize>,
    /// Idle-backoff ladder shape for the scheduler's worker pool (first
    /// sleep rung and cap); the default is the historical
    /// 10 µs → 100 µs → 1 ms ladder.
    pub backoff: BackoffPolicy,
    /// Seed for the scheduler's work-stealing victim order.
    /// Scheduling-only: any seed produces identical verdicts, fault logs
    /// and byte counts (property-tested in
    /// `tests/scheduler_equivalence.rs`), so this knob exists to prove
    /// that invariant, not to tune throughput.
    pub steal_seed: u64,
}

impl RuntimeOptions {
    /// Sets the fault schedule applied to every participant link.
    #[must_use]
    pub const fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the link-id offset for this round (retry rounds pass a fresh
    /// base so replacement participants draw fresh fault schedules).
    #[must_use]
    pub const fn with_link_id_base(mut self, base: u64) -> Self {
        self.link_id_base = base;
        self
    }

    /// Fixes the scheduler pool at `workers` OS threads.
    #[must_use]
    pub const fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Reshapes the worker pool's idle-backoff ladder. Purely a
    /// latency/CPU trade-off: backoff timing never feeds verdicts,
    /// schedules or byte counts, so any policy preserves digests.
    #[must_use]
    pub const fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Seeds the scheduler's work-stealing victim order. Scheduling-only:
    /// digests are identical under any seed.
    #[must_use]
    pub const fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }
}

/// What one [`run_brokered`] round produced.
#[derive(Debug)]
pub struct RuntimeReport<S, P> {
    /// The supervisor closure's return value.
    pub supervisor: S,
    /// Each participant closure's return value, in link order.
    pub participants: Vec<P>,
    /// Broker relay counters for the round.
    pub relay: RelayStats,
    /// Wall-clock time of the whole round (spawn to last join).
    pub wall: Duration,
    /// Every injected fault, sorted (deterministic for a given seed).
    pub events: Vec<FaultEvent>,
}

/// Runs one brokered grid round with poll-driven participants: `n`
/// [`GridTask`]s (each built around a [`FaultyEndpoint`] drawing link id
/// `link_id_base + index`) multiplexed by a [`GridScheduler`] over
/// `options.workers` OS threads (one per participant when unset), a
/// broker pump thread, and the supervisor closure on the calling thread.
///
/// The supervisor closure owns its [`Endpoint`]; dropping it (by
/// returning) is what winds the pump down once the participants finish,
/// so a deadlocked supervisor — not a chaos-stalled participant — is the
/// only way this function can hang. Parked participants whose mail was
/// dropped observe the hang-up once the pump exits and closes their
/// links, and complete with an error.
///
/// Completed tasks are returned (in link order) in
/// [`RuntimeReport::participants`] so callers can harvest whatever state
/// they accumulated.
///
/// # Panics
///
/// Panics if `n == 0` or a task's `poll` panics.
pub fn run_brokered_tasks<S, T, TF, SF>(
    n: usize,
    options: &RuntimeOptions,
    make_task: TF,
    supervisor: SF,
) -> RuntimeReport<S, T>
where
    TF: Fn(usize, FaultyEndpoint) -> T,
    T: GridTask,
    SF: FnOnce(Endpoint) -> S,
{
    assert!(n > 0, "runtime needs at least one participant");
    let plan = options.fault.unwrap_or(FaultPlan::quiet(0));
    let scheduler = GridScheduler::new(options.workers.unwrap_or(n))
        .with_backoff(options.backoff)
        .with_steal_seed(options.steal_seed);
    // ugc-lint: allow(wall-clock): reporting-only — feeds RuntimeReport.wall, never a verdict or schedule
    let started = Instant::now();
    let (sup_endpoint, broker_up) = duplex();
    let mut broker_down = Vec::with_capacity(n);
    let mut tasks = Vec::with_capacity(n);
    let mut logs = Vec::with_capacity(n);
    for index in 0..n {
        let (b, p) = duplex();
        broker_down.push(b);
        let link = FaultyEndpoint::new(p, plan.link(options.link_id_base + index as u64));
        logs.push(link.log());
        tasks.push(make_task(index, link));
    }
    let broker = Broker::new(broker_up, broker_down);

    let (supervisor_out, participants, relay) = std::thread::scope(|scope| {
        let pump = scope.spawn(move || broker.pump_until_closed());
        let pool = scope.spawn(move || scheduler.run(tasks));
        let supervisor_out = supervisor(sup_endpoint);
        let participants = pool.join().expect("scheduler pool panicked");
        let relay = pump.join().expect("broker pump panicked");
        (supervisor_out, participants, relay)
    });

    let mut events: Vec<FaultEvent> = logs.iter().flat_map(|log| log.snapshot()).collect();
    events.sort_unstable();
    RuntimeReport {
        supervisor: supervisor_out,
        participants,
        relay,
        wall: started.elapsed(),
        events,
    }
}

/// A legacy blocking participant closure, run to completion as a single
/// scheduler step. One poll == the whole session, so it occupies its
/// worker for the duration — which is why [`run_brokered`] sizes the
/// pool at one worker per participant unless told otherwise.
struct BlockingTask<'a, PF, P> {
    index: usize,
    body: &'a PF,
    link: Option<FaultyEndpoint>,
    output: Option<P>,
}

impl<PF, P> GridTask for BlockingTask<'_, PF, P>
where
    PF: Fn(usize, FaultyEndpoint) -> P + Sync,
    P: Send,
{
    fn poll(&mut self) -> TaskPoll {
        let link = self
            .link
            .take()
            .expect("a completed task is never re-polled");
        self.output = Some((self.body)(self.index, link));
        TaskPoll::Complete
    }
}

/// Runs one brokered grid round with legacy *blocking* participant
/// closures — a thin wrapper over [`run_brokered_tasks`] that wraps each
/// closure as a single-step [`GridTask`] and (unless
/// [`RuntimeOptions::workers`] overrides it) sizes the scheduler pool at
/// one worker per participant, which reproduces the PR 4
/// thread-per-participant semantics exactly.
///
/// Prefer [`run_brokered_tasks`] with genuinely poll-driven tasks for
/// campaigns bigger than the host's comfortable thread count: a blocking
/// closure pins its worker until the session ends, so an undersized pool
/// can stall closures that wait on dropped messages until the round
/// winds down.
///
/// # Panics
///
/// Panics if `n == 0` or a participant closure panics.
pub fn run_brokered<S, P, SF, PF>(
    n: usize,
    options: &RuntimeOptions,
    participant: PF,
    supervisor: SF,
) -> RuntimeReport<S, P>
where
    PF: Fn(usize, FaultyEndpoint) -> P + Sync,
    P: Send,
    SF: FnOnce(Endpoint) -> S,
{
    let participant = &participant;
    let report = run_brokered_tasks(
        n,
        options,
        |index, link| BlockingTask {
            index,
            body: participant,
            link: Some(link),
            output: None,
        },
        supervisor,
    );
    RuntimeReport {
        supervisor: report.supervisor,
        participants: report
            .participants
            .into_iter()
            .map(|task| task.output.expect("completed closure has an output"))
            .collect(),
        relay: report.relay,
        wall: report.wall,
        events: report.events,
    }
}
