//! Thread-per-participant grid runtime.
//!
//! Everything below the verification schemes is assembled here: a
//! supervisor link, a relaying [`Broker`] pumping on its own OS thread,
//! and one OS thread per participant, each behind a deterministic
//! fault-injection decorator ([`FaultyEndpoint`]). The harness measures
//! wall-clock time and collects the injected-fault log so callers can
//! report throughput and verify bit-identical replays.
//!
//! The scheme-aware wiring (which session runs on which participant) lives
//! in `ugc-core`'s orchestrator; this module is deliberately ignorant of
//! sessions — it only knows how to spawn, connect, decorate and join.
//!
//! ```
//! use ugc_grid::runtime::{run_brokered, RuntimeOptions};
//! use ugc_grid::{GridLink, Message};
//!
//! // Two echo participants behind the broker, no fault injection.
//! let report = run_brokered(
//!     2,
//!     &RuntimeOptions::default(),
//!     |_, link| {
//!         while let Ok(msg) = link.recv() {
//!             link.send(&Message::Commit {
//!                 task_id: msg.task_id(),
//!                 root: vec![0xAB; 16],
//!             })
//!             .unwrap();
//!         }
//!     },
//!     |supervisor| {
//!         use ugc_grid::Assignment;
//!         use ugc_task::Domain;
//!         for task_id in 0..2 {
//!             supervisor
//!                 .send(&Message::Assign(Assignment {
//!                     task_id,
//!                     domain: Domain::new(0, 8),
//!                 }))
//!                 .unwrap();
//!         }
//!         (0..2).map(|_| supervisor.recv().unwrap().task_id()).sum::<u64>()
//!     },
//! );
//! assert_eq!(report.supervisor, 1);
//! assert_eq!(report.relay.outward, 2);
//! assert!(report.events.is_empty());
//! ```

mod fault;

pub use fault::{
    FaultDecision, FaultEvent, FaultLog, FaultPlan, FaultyEndpoint, LinkDirection, LinkFaults,
};

use crate::{duplex, Broker, Endpoint, RelayStats};
use std::time::{Duration, Instant};

/// Configuration of one [`run_brokered`] round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Fault schedule applied to every participant link (`None` injects
    /// nothing).
    pub fault: Option<FaultPlan>,
    /// Offset added to participant indices to form link ids, so retry
    /// rounds draw fresh fault schedules for their replacement
    /// participants.
    pub link_id_base: u64,
}

/// What one [`run_brokered`] round produced.
#[derive(Debug)]
pub struct RuntimeReport<S, P> {
    /// The supervisor closure's return value.
    pub supervisor: S,
    /// Each participant closure's return value, in link order.
    pub participants: Vec<P>,
    /// Broker relay counters for the round.
    pub relay: RelayStats,
    /// Wall-clock time of the whole round (spawn to last join).
    pub wall: Duration,
    /// Every injected fault, sorted (deterministic for a given seed).
    pub events: Vec<FaultEvent>,
}

/// Runs one brokered grid round: `n` participant threads (each behind a
/// [`FaultyEndpoint`] drawing link id `link_id_base + index`), a broker
/// pump thread, and the supervisor closure on the calling thread.
///
/// The supervisor closure owns its [`Endpoint`]; dropping it (by
/// returning) is what winds the pump down once the participants finish,
/// so a deadlocked supervisor — not a chaos-stalled participant — is the
/// only way this function can hang. Participants stalled on dropped
/// messages are unblocked when the pump exits and closes their links.
///
/// # Panics
///
/// Panics if `n == 0` or a participant closure panics.
pub fn run_brokered<S, P, SF, PF>(
    n: usize,
    options: &RuntimeOptions,
    participant: PF,
    supervisor: SF,
) -> RuntimeReport<S, P>
where
    PF: Fn(usize, FaultyEndpoint) -> P + Sync,
    P: Send,
    SF: FnOnce(Endpoint) -> S,
{
    assert!(n > 0, "runtime needs at least one participant");
    let plan = options.fault.unwrap_or(FaultPlan::quiet(0));
    let started = Instant::now();
    let (sup_endpoint, broker_up) = duplex();
    let mut broker_down = Vec::with_capacity(n);
    let mut links = Vec::with_capacity(n);
    for index in 0..n {
        let (b, p) = duplex();
        broker_down.push(b);
        links.push(FaultyEndpoint::new(
            p,
            plan.link(options.link_id_base + index as u64),
        ));
    }
    let logs: Vec<FaultLog> = links.iter().map(FaultyEndpoint::log).collect();
    let broker = Broker::new(broker_up, broker_down);

    let (supervisor_out, participants, relay) = std::thread::scope(|scope| {
        let pump = scope.spawn(move || broker.pump_until_closed());
        let participant = &participant;
        let handles: Vec<_> = links
            .drain(..)
            .enumerate()
            .map(|(index, link)| scope.spawn(move || participant(index, link)))
            .collect();
        let supervisor_out = supervisor(sup_endpoint);
        let participants: Vec<P> = handles
            .into_iter()
            .map(|h| h.join().expect("participant thread panicked"))
            .collect();
        let relay = pump.join().expect("broker pump panicked");
        (supervisor_out, participants, relay)
    });

    let mut events: Vec<FaultEvent> = logs.iter().flat_map(|log| log.snapshot()).collect();
    events.sort_unstable();
    RuntimeReport {
        supervisor: supervisor_out,
        participants,
        relay,
        wall: started.elapsed(),
        events,
    }
}
