//! Protocol messages exchanged between supervisor, broker and participants.
//!
//! One message enum covers every scheme in the evaluation so that byte
//! counts are directly comparable:
//!
//! | Scheme | Messages used |
//! |--------|---------------|
//! | double-check / naive sampling | [`Assign`](Message::Assign), [`AllResults`](Message::AllResults), [`Verdict`](Message::Verdict) |
//! | CBS (§3.1) | [`Assign`](Message::Assign), [`Commit`](Message::Commit), [`Challenge`](Message::Challenge), [`Proofs`](Message::Proofs), [`Reports`](Message::Reports), [`Verdict`](Message::Verdict) |
//! | NI-CBS (§4) | [`Assign`](Message::Assign), [`CommitAndProofs`](Message::CommitAndProofs), [`Reports`](Message::Reports), [`Verdict`](Message::Verdict) |
//! | ringer (Golle–Mironov, §1.1) | [`RingerChallenge`](Message::RingerChallenge), [`RingerFound`](Message::RingerFound), … |

use crate::codec::{
    get_bytes, get_u32, get_u64, get_u64_list, put_bytes, put_u32, put_u64, put_u64_list,
};
use crate::GridError;
use ugc_task::Domain;

/// A task assignment: evaluate `f` on every input of `domain`.
///
/// The compute function itself ships out of band (participants install the
/// project binary once); assignments are therefore `O(1)` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Supervisor-chosen identifier for this task.
    pub task_id: u64,
    /// The sub-domain this participant must evaluate.
    pub domain: Domain,
}

/// One sample's proof of honesty: the claimed `f(x_i)` plus the Merkle
/// authentication path (Step 3 of the CBS scheme).
///
/// Digest siblings are raw bytes so the wire format is independent of the
/// hash algorithm in use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleProof {
    /// Leaf index of the sample within the assigned domain.
    pub index: u64,
    /// The claimed result `f(x_i)`.
    pub leaf_value: Vec<u8>,
    /// The sibling leaf's raw value (`λ_1`).
    pub leaf_sibling: Vec<u8>,
    /// The digest siblings `λ_2 … λ_H`, bottom-up.
    pub digest_siblings: Vec<Vec<u8>>,
}

impl SampleProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.index);
        put_bytes(buf, &self.leaf_value);
        put_bytes(buf, &self.leaf_sibling);
        put_u64(buf, self.digest_siblings.len() as u64);
        for d in &self.digest_siblings {
            put_bytes(buf, d);
        }
    }

    /// Exact encoded size in bytes, without encoding.
    fn encoded_len(&self) -> usize {
        8 + (8 + self.leaf_value.len())
            + (8 + self.leaf_sibling.len())
            + 8
            + self
                .digest_siblings
                .iter()
                .map(|d| 8 + d.len())
                .sum::<usize>()
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, GridError> {
        let index = get_u64(buf, "proof.index")?;
        let leaf_value = get_bytes(buf, "proof.leaf_value")?;
        let leaf_sibling = get_bytes(buf, "proof.leaf_sibling")?;
        let count = get_u64(buf, "proof.sibling_count")?;
        if count > 64 {
            return Err(GridError::LengthOverflow { declared: count });
        }
        // ugc-lint: allow(lossy-cast): bounded above by 64 on the line before, cannot truncate
        let mut digest_siblings = Vec::with_capacity(count as usize);
        for _ in 0..count {
            digest_siblings.push(get_bytes(buf, "proof.digest_sibling")?);
        }
        Ok(SampleProof {
            index,
            leaf_value,
            leaf_sibling,
            digest_siblings,
        })
    }
}

/// A protocol message. See the module docs for which schemes use which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Supervisor → participant: evaluate `f` over a domain.
    Assign(Assignment),
    /// Participant → supervisor: the Merkle-root commitment `Φ(R)`
    /// (Step 1 of CBS).
    Commit {
        /// Task this commitment belongs to.
        task_id: u64,
        /// The root digest `Φ(R)`.
        root: Vec<u8>,
    },
    /// Supervisor → participant: the sample indices (Step 2 of CBS).
    Challenge {
        /// Task being challenged.
        task_id: u64,
        /// Sampled leaf indices `i_1 … i_m`.
        samples: Vec<u64>,
    },
    /// Participant → supervisor: proofs of honesty for each sample
    /// (Step 3 of CBS).
    Proofs {
        /// Task being proven.
        task_id: u64,
        /// One proof per sampled index, in challenge order.
        proofs: Vec<SampleProof>,
    },
    /// Participant → supervisor: NI-CBS single-shot commitment plus the
    /// self-derived sample proofs (Section 4.1).
    CommitAndProofs {
        /// Task being proven.
        task_id: u64,
        /// The root digest `Φ(R)`.
        root: Vec<u8>,
        /// Proofs for the samples derived from `Φ(R)` via Eq. (4).
        proofs: Vec<SampleProof>,
    },
    /// Participant → supervisor: every result, flattened — the naive
    /// schemes' `O(n)` upload.
    AllResults {
        /// Task these results belong to.
        task_id: u64,
        /// Width of each result record in bytes.
        leaf_width: u32,
        /// `n × leaf_width` bytes of results, in index order.
        data: Vec<u8>,
    },
    /// Participant → supervisor: the screened "results of interest".
    Reports {
        /// Task these reports belong to.
        task_id: u64,
        /// `(input, payload)` pairs that passed the screener.
        reports: Vec<(u64, Vec<u8>)>,
    },
    /// Supervisor → participant: precomputed ringer results whose inputs
    /// are secret (Golle–Mironov baseline).
    RingerChallenge {
        /// Task the ringers are planted in.
        task_id: u64,
        /// The precomputed `f(x)` values to find.
        ringers: Vec<Vec<u8>>,
    },
    /// Participant → supervisor: the inputs found to produce the ringers.
    RingerFound {
        /// Task the ringers were planted in.
        task_id: u64,
        /// Claimed preimage inputs, one per discovered ringer.
        inputs: Vec<u64>,
    },
    /// Supervisor → participant: accept/reject decision.
    Verdict {
        /// Task being judged.
        task_id: u64,
        /// Whether the participant's work was accepted.
        accepted: bool,
    },
    /// A session envelope: any protocol message wrapped with an explicit
    /// session identifier, so one shared link can multiplex sessions whose
    /// task ids collide (e.g. mixed-scheme campaigns that all use task 1).
    ///
    /// When session ids coincide with task ids — the common case — the
    /// engine sends payloads bare and the envelope costs nothing; routing
    /// falls back to [`Message::task_id`]. Envelopes do not nest.
    Session {
        /// The multiplexing key assigned by the session engine.
        session_id: u64,
        /// The wrapped protocol message (never itself a `Session`).
        payload: Box<Message>,
    },
    /// Broker → supervisor: the participant that owned this task hung up
    /// before its session completed — a store-and-forward NACK, so a
    /// multiplexing supervisor can fail the session instead of waiting
    /// forever for a reply that will never come.
    Gone {
        /// The routing id (task or session id) whose owner disconnected.
        task_id: u64,
    },
}

const TAG_ASSIGN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CHALLENGE: u8 = 3;
const TAG_PROOFS: u8 = 4;
const TAG_COMMIT_AND_PROOFS: u8 = 5;
const TAG_ALL_RESULTS: u8 = 6;
const TAG_REPORTS: u8 = 7;
const TAG_RINGER_CHALLENGE: u8 = 8;
const TAG_RINGER_FOUND: u8 = 9;
const TAG_VERDICT: u8 = 10;
const TAG_SESSION: u8 = 11;
const TAG_GONE: u8 = 12;

impl Message {
    /// Encodes the message to its wire form in one exact-capacity
    /// allocation (sized by [`encoded_len`](Self::encoded_len)).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the message's wire form to `buf` — the zero-alloc hot
    /// path. Callers that reuse a buffer (or assemble an envelope around
    /// a payload, like [`Message::Session`]) pay no allocation here
    /// beyond whatever growth `buf` itself needs.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Assign(a) => {
                buf.push(TAG_ASSIGN);
                put_u64(buf, a.task_id);
                put_u64(buf, a.domain.start());
                put_u64(buf, a.domain.len());
            }
            Message::Commit { task_id, root } => {
                buf.push(TAG_COMMIT);
                put_u64(buf, *task_id);
                put_bytes(buf, root);
            }
            Message::Challenge { task_id, samples } => {
                buf.push(TAG_CHALLENGE);
                put_u64(buf, *task_id);
                put_u64_list(buf, samples);
            }
            Message::Proofs { task_id, proofs } => {
                buf.push(TAG_PROOFS);
                put_u64(buf, *task_id);
                put_u64(buf, proofs.len() as u64);
                for p in proofs {
                    p.encode(buf);
                }
            }
            Message::CommitAndProofs {
                task_id,
                root,
                proofs,
            } => {
                buf.push(TAG_COMMIT_AND_PROOFS);
                put_u64(buf, *task_id);
                put_bytes(buf, root);
                put_u64(buf, proofs.len() as u64);
                for p in proofs {
                    p.encode(buf);
                }
            }
            Message::AllResults {
                task_id,
                leaf_width,
                data,
            } => {
                buf.push(TAG_ALL_RESULTS);
                put_u64(buf, *task_id);
                put_u32(buf, *leaf_width);
                put_bytes(buf, data);
            }
            Message::Reports { task_id, reports } => {
                buf.push(TAG_REPORTS);
                put_u64(buf, *task_id);
                put_u64(buf, reports.len() as u64);
                for (input, payload) in reports {
                    put_u64(buf, *input);
                    put_bytes(buf, payload);
                }
            }
            Message::RingerChallenge { task_id, ringers } => {
                buf.push(TAG_RINGER_CHALLENGE);
                put_u64(buf, *task_id);
                put_u64(buf, ringers.len() as u64);
                for r in ringers {
                    put_bytes(buf, r);
                }
            }
            Message::RingerFound { task_id, inputs } => {
                buf.push(TAG_RINGER_FOUND);
                put_u64(buf, *task_id);
                put_u64_list(buf, inputs);
            }
            Message::Verdict { task_id, accepted } => {
                buf.push(TAG_VERDICT);
                put_u64(buf, *task_id);
                buf.push(u8::from(*accepted));
            }
            Message::Session {
                session_id,
                payload,
            } => {
                assert!(
                    !matches!(payload.as_ref(), Message::Session { .. }),
                    "session envelopes must not nest"
                );
                buf.push(TAG_SESSION);
                put_u64(buf, *session_id);
                // Zero-alloc envelope: the payload encodes straight into
                // the same buffer instead of via a nested Vec.
                payload.encode_into(buf);
            }
            Message::Gone { task_id } => {
                buf.push(TAG_GONE);
                put_u64(buf, *task_id);
            }
        }
    }

    /// Exact encoded size in bytes, computed without encoding — what
    /// [`encode`](Self::encode) pre-allocates and what
    /// [`wire_len`](Self::wire_len) charges.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Message::Assign(_) => 24,
            Message::Commit { root, .. } => 8 + (8 + root.len()),
            Message::Challenge { samples, .. } => 8 + 8 + 8 * samples.len(),
            Message::Proofs { proofs, .. } => {
                8 + 8 + proofs.iter().map(SampleProof::encoded_len).sum::<usize>()
            }
            Message::CommitAndProofs { root, proofs, .. } => {
                8 + (8 + root.len())
                    + 8
                    + proofs.iter().map(SampleProof::encoded_len).sum::<usize>()
            }
            Message::AllResults { data, .. } => 8 + 4 + (8 + data.len()),
            Message::Reports { reports, .. } => {
                8 + 8
                    + reports
                        .iter()
                        .map(|(_, payload)| 8 + (8 + payload.len()))
                        .sum::<usize>()
            }
            Message::RingerChallenge { ringers, .. } => {
                8 + 8 + ringers.iter().map(|r| 8 + r.len()).sum::<usize>()
            }
            Message::RingerFound { inputs, .. } => 8 + 8 + 8 * inputs.len(),
            Message::Verdict { .. } => 8 + 1,
            Message::Session { payload, .. } => 8 + payload.encoded_len(),
            Message::Gone { .. } => 8,
        }
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// Any [`GridError`] codec variant on malformed input; the entire frame
    /// must be consumed.
    pub fn decode(frame: &[u8]) -> Result<Self, GridError> {
        let mut buf = frame;
        let mut tag = *buf
            .first()
            .ok_or(GridError::UnexpectedEof { context: "tag" })?;
        buf = &buf[1..];
        let mut session_id = None;
        if tag == TAG_SESSION {
            session_id = Some(get_u64(&mut buf, "session.id")?);
            tag = *buf.first().ok_or(GridError::UnexpectedEof {
                context: "session.payload_tag",
            })?;
            buf = &buf[1..];
            if tag == TAG_SESSION {
                // Nested envelopes are hostile framing, not a protocol state.
                return Err(GridError::UnknownTag { tag });
            }
        }
        let msg = match tag {
            TAG_ASSIGN => {
                let task_id = get_u64(&mut buf, "assign.task_id")?;
                let start = get_u64(&mut buf, "assign.start")?;
                let len = get_u64(&mut buf, "assign.len")?;
                let domain = Domain::try_new(start, len)
                    .map_err(|_| GridError::LengthOverflow { declared: len })?;
                Message::Assign(Assignment { task_id, domain })
            }
            TAG_COMMIT => Message::Commit {
                task_id: get_u64(&mut buf, "commit.task_id")?,
                root: get_bytes(&mut buf, "commit.root")?,
            },
            TAG_CHALLENGE => Message::Challenge {
                task_id: get_u64(&mut buf, "challenge.task_id")?,
                samples: get_u64_list(&mut buf, "challenge.samples")?,
            },
            TAG_PROOFS => {
                let task_id = get_u64(&mut buf, "proofs.task_id")?;
                let count = get_u64(&mut buf, "proofs.count")?;
                if count > 1 << 20 {
                    return Err(GridError::LengthOverflow { declared: count });
                }
                // ugc-lint: allow(lossy-cast): bounded above by 1<<20 on the line before, cannot truncate
                let mut proofs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    proofs.push(SampleProof::decode(&mut buf)?);
                }
                Message::Proofs { task_id, proofs }
            }
            TAG_COMMIT_AND_PROOFS => {
                let task_id = get_u64(&mut buf, "cap.task_id")?;
                let root = get_bytes(&mut buf, "cap.root")?;
                let count = get_u64(&mut buf, "cap.count")?;
                if count > 1 << 20 {
                    return Err(GridError::LengthOverflow { declared: count });
                }
                // ugc-lint: allow(lossy-cast): bounded above by 1<<20 on the line before, cannot truncate
                let mut proofs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    proofs.push(SampleProof::decode(&mut buf)?);
                }
                Message::CommitAndProofs {
                    task_id,
                    root,
                    proofs,
                }
            }
            TAG_ALL_RESULTS => Message::AllResults {
                task_id: get_u64(&mut buf, "all.task_id")?,
                leaf_width: get_u32(&mut buf, "all.leaf_width")?,
                data: get_bytes(&mut buf, "all.data")?,
            },
            TAG_REPORTS => {
                let task_id = get_u64(&mut buf, "reports.task_id")?;
                let count = get_u64(&mut buf, "reports.count")?;
                if count > 1 << 24 {
                    return Err(GridError::LengthOverflow { declared: count });
                }
                // ugc-lint: allow(lossy-cast): bounded above by 1<<24 on the line before, cannot truncate
                let mut reports = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let input = get_u64(&mut buf, "reports.input")?;
                    let payload = get_bytes(&mut buf, "reports.payload")?;
                    reports.push((input, payload));
                }
                Message::Reports { task_id, reports }
            }
            TAG_RINGER_CHALLENGE => {
                let task_id = get_u64(&mut buf, "ringer.task_id")?;
                let count = get_u64(&mut buf, "ringer.count")?;
                if count > 1 << 20 {
                    return Err(GridError::LengthOverflow { declared: count });
                }
                // ugc-lint: allow(lossy-cast): bounded above by 1<<20 on the line before, cannot truncate
                let mut ringers = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ringers.push(get_bytes(&mut buf, "ringer.value")?);
                }
                Message::RingerChallenge { task_id, ringers }
            }
            TAG_RINGER_FOUND => Message::RingerFound {
                task_id: get_u64(&mut buf, "found.task_id")?,
                inputs: get_u64_list(&mut buf, "found.inputs")?,
            },
            TAG_GONE => Message::Gone {
                task_id: get_u64(&mut buf, "gone.task_id")?,
            },
            TAG_VERDICT => {
                let task_id = get_u64(&mut buf, "verdict.task_id")?;
                let flag = *buf.first().ok_or(GridError::UnexpectedEof {
                    context: "verdict.flag",
                })?;
                buf = &buf[1..];
                Message::Verdict {
                    task_id,
                    accepted: flag != 0,
                }
            }
            other => return Err(GridError::UnknownTag { tag: other }),
        };
        if !buf.is_empty() {
            return Err(GridError::TrailingBytes {
                remaining: buf.len(),
            });
        }
        Ok(match session_id {
            Some(session_id) => Message::Session {
                session_id,
                payload: Box::new(msg),
            },
            None => msg,
        })
    }

    /// Encoded size in bytes (what the transport will charge), computed
    /// without allocating.
    #[must_use]
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }

    /// The task this message concerns (an envelope answers for its
    /// payload).
    #[must_use]
    pub fn task_id(&self) -> u64 {
        match self {
            Message::Assign(a) => a.task_id,
            Message::Commit { task_id, .. }
            | Message::Challenge { task_id, .. }
            | Message::Proofs { task_id, .. }
            | Message::CommitAndProofs { task_id, .. }
            | Message::AllResults { task_id, .. }
            | Message::Reports { task_id, .. }
            | Message::RingerChallenge { task_id, .. }
            | Message::RingerFound { task_id, .. }
            | Message::Verdict { task_id, .. }
            | Message::Gone { task_id } => *task_id,
            Message::Session { payload, .. } => payload.task_id(),
        }
    }

    /// The key a multiplexer routes this message by: the explicit envelope
    /// session id when present, the task id otherwise.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        match self {
            Message::Session { session_id, .. } => *session_id,
            other => other.task_id(),
        }
    }

    /// The assignment this message carries, looking through an envelope —
    /// what a broker inspects to pin a task to a participant.
    #[must_use]
    pub fn as_assign(&self) -> Option<&Assignment> {
        match self {
            Message::Assign(a) => Some(a),
            Message::Session { payload, .. } => payload.as_assign(),
            _ => None,
        }
    }

    /// Strips a session envelope, returning `(explicit session id, payload)`;
    /// bare messages pass through with `None`.
    #[must_use]
    pub fn into_payload(self) -> (Option<u64>, Message) {
        match self {
            Message::Session {
                session_id,
                payload,
            } => (Some(session_id), *payload),
            other => (None, other),
        }
    }

    /// Wraps a message in a session envelope.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is already an envelope — envelopes do not nest.
    #[must_use]
    pub fn in_session(session_id: u64, payload: Message) -> Message {
        assert!(
            !matches!(payload, Message::Session { .. }),
            "session envelopes must not nest"
        );
        Message::Session {
            session_id,
            payload: Box::new(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_proof() -> SampleProof {
        SampleProof {
            index: 5,
            leaf_value: vec![1, 2, 3, 4],
            leaf_sibling: vec![5, 6, 7, 8],
            digest_siblings: vec![vec![9; 32], vec![10; 32]],
        }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Assign(Assignment {
                task_id: 1,
                domain: Domain::new(100, 50),
            }),
            Message::Commit {
                task_id: 2,
                root: vec![7; 32],
            },
            Message::Challenge {
                task_id: 3,
                samples: vec![1, 2, 3],
            },
            Message::Proofs {
                task_id: 4,
                proofs: vec![sample_proof(), sample_proof()],
            },
            Message::CommitAndProofs {
                task_id: 5,
                root: vec![8; 16],
                proofs: vec![sample_proof()],
            },
            Message::AllResults {
                task_id: 6,
                leaf_width: 8,
                data: vec![0; 64],
            },
            Message::Reports {
                task_id: 7,
                reports: vec![(3, vec![1, 2]), (9, vec![])],
            },
            Message::RingerChallenge {
                task_id: 8,
                ringers: vec![vec![1; 16], vec![2; 16]],
            },
            Message::RingerFound {
                task_id: 9,
                inputs: vec![42, 43],
            },
            Message::Verdict {
                task_id: 10,
                accepted: true,
            },
            Message::in_session(
                0xfeed,
                Message::Verdict {
                    task_id: 11,
                    accepted: false,
                },
            ),
            Message::Gone { task_id: 12 },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in all_messages() {
            let encoded = msg.encode();
            let decoded = Message::decode(&encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn task_id_accessor_covers_all_variants() {
        for (expected, msg) in all_messages().into_iter().enumerate() {
            assert_eq!(msg.task_id(), expected as u64 + 1);
        }
    }

    #[test]
    fn session_envelope_routes_by_session_id() {
        let bare = Message::Commit {
            task_id: 7,
            root: vec![1; 16],
        };
        assert_eq!(bare.session_id(), 7);
        let wrapped = Message::in_session(99, bare.clone());
        assert_eq!(wrapped.session_id(), 99);
        assert_eq!(wrapped.task_id(), 7);
        assert_eq!(wrapped.clone().into_payload(), (Some(99), bare.clone()));
        assert_eq!(bare.clone().into_payload(), (None, bare));
    }

    #[test]
    fn session_envelope_exposes_assignment() {
        let assign = Message::Assign(Assignment {
            task_id: 3,
            domain: Domain::new(0, 8),
        });
        let wrapped = Message::in_session(12, assign);
        assert_eq!(wrapped.as_assign().unwrap().task_id, 3);
        assert!(Message::Verdict {
            task_id: 3,
            accepted: true
        }
        .as_assign()
        .is_none());
    }

    #[test]
    fn nested_session_envelope_rejected_on_decode() {
        let inner = Message::in_session(
            1,
            Message::Verdict {
                task_id: 2,
                accepted: true,
            },
        );
        // Hand-build the hostile frame: TAG_SESSION + id + encoded envelope.
        let mut frame = vec![TAG_SESSION];
        put_u64(&mut frame, 5);
        frame.extend_from_slice(&inner.encode());
        assert_eq!(
            Message::decode(&frame),
            Err(GridError::UnknownTag { tag: TAG_SESSION })
        );
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_session_envelope_rejected_on_build() {
        let inner = Message::in_session(
            1,
            Message::Verdict {
                task_id: 2,
                accepted: true,
            },
        );
        let _ = Message::in_session(2, inner);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            Message::decode(&[0xEE]),
            Err(GridError::UnknownTag { tag: 0xEE })
        );
    }

    #[test]
    fn empty_frame_rejected() {
        assert!(matches!(
            Message::decode(&[]),
            Err(GridError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = Message::Verdict {
            task_id: 1,
            accepted: false,
        }
        .encode();
        encoded.push(0);
        assert_eq!(
            Message::decode(&encoded),
            Err(GridError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn truncation_anywhere_fails_cleanly() {
        for msg in all_messages() {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                let err = Message::decode(&encoded[..cut]);
                assert!(err.is_err(), "truncation at {cut} decoded successfully");
            }
        }
    }

    #[test]
    fn verdict_flag_nonzero_is_true() {
        let mut encoded = Message::Verdict {
            task_id: 1,
            accepted: true,
        }
        .encode();
        *encoded.last_mut().unwrap() = 7;
        assert_eq!(
            Message::decode(&encoded).unwrap(),
            Message::Verdict {
                task_id: 1,
                accepted: true
            }
        );
    }

    #[test]
    fn wire_len_matches_encoding() {
        for msg in all_messages() {
            assert_eq!(msg.wire_len(), msg.encode().len() as u64);
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_variant() {
        // encode() pre-allocates encoded_len() bytes; if the computed
        // size ever drifted from the actual encoding, either byte
        // accounting (wire_len) or the exact-capacity claim would lie.
        for msg in all_messages() {
            let encoded = msg.encode();
            assert_eq!(msg.encoded_len(), encoded.len(), "{msg:?}");
            assert_eq!(encoded.capacity(), encoded.len(), "{msg:?}");
        }
    }

    #[test]
    fn encode_into_appends_without_rewriting() {
        // The zero-alloc path appends to whatever is already in the
        // buffer, so a caller can reuse one Vec across frames.
        let mut buf = vec![0xAA, 0xBB];
        let msg = Message::Verdict {
            task_id: 9,
            accepted: true,
        };
        msg.encode_into(&mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], msg.encode().as_slice());
    }

    #[test]
    fn challenge_size_scales_with_samples() {
        let small = Message::Challenge {
            task_id: 1,
            samples: vec![0; 10],
        };
        let big = Message::Challenge {
            task_id: 1,
            samples: vec![0; 100],
        };
        assert_eq!(big.wire_len() - small.wire_len(), 90 * 8);
    }

    #[test]
    fn hostile_proof_count_rejected() {
        let mut buf = vec![TAG_PROOFS];
        put_u64(&mut buf, 1);
        put_u64(&mut buf, u64::MAX);
        assert!(matches!(
            Message::decode(&buf),
            Err(GridError::LengthOverflow { .. })
        ));
    }
}
