//! Shared idle-backoff policy for polling loops.
//!
//! Every spin-poll loop in the stack (the broker pump, the engine's
//! transport sweeps, multi-endpoint supervisors) faces the same trade-off:
//! react to traffic in nanoseconds while it is flowing, but stop burning a
//! core once the peers are deep in compute (tree builds take seconds at
//! scale). [`Backoff`] encodes one policy for all of them — spin-yield
//! first, then sleep on an exponential ladder — and resets to the hot
//! state the moment traffic resumes. The ladder's shape (where the sleeps
//! start and where they cap) is a [`BackoffPolicy`]: the default is
//! 10 µs → 100 µs → 1 ms, and deployments whose latency/CPU trade-off
//! differs (a battery-bound participant, a latency-critical broker) tune
//! it through [`RuntimeOptions::with_backoff`](crate::runtime::RuntimeOptions::with_backoff).

use std::time::Duration;

/// How many idle sweeps spin-yield before the loop starts sleeping.
const YIELD_SWEEPS: u32 = 32;
/// Sweeps spent at each sleep rung before escalating to the next.
const SWEEPS_PER_RUNG: u32 = 8;

/// The shape of the sleep ladder: the first rung and the cap, in
/// microseconds. Rungs climb ×10 from `initial_micros` and clamp at
/// `cap_micros`; zero values are treated as 1 µs (a ladder must sleep
/// *some* positive time once it stops spinning).
///
/// # Examples
///
/// ```
/// use ugc_grid::BackoffPolicy;
///
/// // The default ladder: 10 µs → 100 µs → 1 ms cap.
/// assert_eq!(BackoffPolicy::default(), BackoffPolicy::new(10, 1_000));
/// // A snappier ladder for latency-critical pumps: 1 µs → 10 µs → 50 µs.
/// let fast = BackoffPolicy::new(1, 50);
/// assert_eq!(fast.initial_micros, 1);
/// assert_eq!(fast.cap_micros, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Sleep length of the first rung, in microseconds.
    pub initial_micros: u64,
    /// Upper bound every rung clamps to, in microseconds.
    pub cap_micros: u64,
}

impl BackoffPolicy {
    /// A ladder starting at `initial_micros` and capping at `cap_micros`.
    #[must_use]
    pub const fn new(initial_micros: u64, cap_micros: u64) -> Self {
        BackoffPolicy {
            initial_micros,
            cap_micros,
        }
    }

    /// The sleep length of rung `rung` (0-based): `initial × 10^rung`,
    /// saturating, clamped to the cap.
    fn rung_micros(self, rung: u32) -> u64 {
        let cap = self.cap_micros.max(1);
        let mut micros = self.initial_micros.max(1);
        let mut climbed = 0;
        while climbed < rung && micros < cap {
            micros = micros.saturating_mul(10);
            climbed += 1;
        }
        micros.min(cap)
    }
}

impl Default for BackoffPolicy {
    /// The historical ladder: 10 µs first rung, 1 ms cap.
    fn default() -> Self {
        BackoffPolicy::new(10, 1_000)
    }
}

/// Exponential idle backoff: yield, then sleep up the policy's ladder
/// (10 µs → 100 µs → 1 ms by default).
///
/// Call [`wait`](Self::wait) on every idle sweep and
/// [`reset`](Self::reset) whenever the loop makes progress. The schedule
/// itself is exposed through [`pause`](Self::pause) so it can be unit
/// tested without measuring real sleeps.
///
/// # Examples
///
/// ```
/// use ugc_grid::Backoff;
///
/// let mut backoff = Backoff::new();
/// assert_eq!(backoff.pause(), None); // hot: spin-yield
/// backoff.reset();                   // traffic seen: stay hot
/// assert_eq!(backoff.pause(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Backoff {
    step: u32,
    policy: BackoffPolicy,
}

impl Backoff {
    /// A fresh (hot) backoff on the default ladder.
    #[must_use]
    pub const fn new() -> Self {
        Self::with_policy(BackoffPolicy::new(10, 1_000))
    }

    /// A fresh (hot) backoff climbing `policy`'s ladder.
    #[must_use]
    pub const fn with_policy(policy: BackoffPolicy) -> Self {
        Backoff { step: 0, policy }
    }

    /// Returns to the hot state; call when the loop made progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the next sweep would still spin-yield (the loop has not
    /// been idle long enough to start sleeping). Lets callers observe
    /// the ladder state without advancing it.
    #[must_use]
    pub fn is_hot(&self) -> bool {
        self.step < YIELD_SWEEPS
    }

    /// Advances the schedule one idle sweep and returns what the sweep
    /// should do: `None` means spin-yield, `Some(d)` means sleep `d`.
    /// The returned durations climb the policy's ladder and then hold at
    /// its cap until [`reset`](Self::reset).
    pub fn pause(&mut self) -> Option<Duration> {
        let step = self.step;
        self.step = self.step.saturating_add(1);
        if step < YIELD_SWEEPS {
            return None;
        }
        let rung = (step - YIELD_SWEEPS) / SWEEPS_PER_RUNG;
        Some(Duration::from_micros(self.policy.rung_micros(rung)))
    }

    /// Performs one idle sweep: spin-yields while hot, sleeps per the
    /// ladder once the loop has been idle for a while.
    pub fn wait(&mut self) {
        match self.pause() {
            None => std::thread::yield_now(),
            Some(d) => std::thread::sleep(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_yield_then_exponential_ladder() {
        let mut backoff = Backoff::new();
        for sweep in 0..YIELD_SWEEPS {
            assert_eq!(backoff.pause(), None, "sweep {sweep} must spin-yield");
        }
        for micros in [10, 100, 1_000] {
            for sweep in 0..SWEEPS_PER_RUNG {
                assert_eq!(
                    backoff.pause(),
                    Some(Duration::from_micros(micros)),
                    "rung {micros} µs, sweep {sweep}"
                );
            }
        }
    }

    #[test]
    fn cap_holds_at_one_millisecond() {
        let mut backoff = Backoff::new();
        for _ in 0..(YIELD_SWEEPS + SWEEPS_PER_RUNG * 3) {
            let _ = backoff.pause();
        }
        for _ in 0..1000 {
            assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        }
    }

    #[test]
    fn is_hot_tracks_the_yield_phase_without_advancing_it() {
        let mut backoff = Backoff::new();
        assert!(backoff.is_hot());
        for _ in 0..YIELD_SWEEPS {
            assert!(backoff.is_hot(), "observation must not advance the ladder");
            let _ = backoff.pause();
        }
        assert!(!backoff.is_hot(), "past the yield phase the loop sleeps");
        backoff.reset();
        assert!(backoff.is_hot());
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut backoff = Backoff::new();
        for _ in 0..200 {
            let _ = backoff.pause();
        }
        assert!(backoff.pause().is_some());
        backoff.reset();
        assert_eq!(backoff.pause(), None);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut backoff = Backoff {
            step: u32::MAX - 1,
            policy: BackoffPolicy::default(),
        };
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
    }

    #[test]
    fn custom_policy_reshapes_the_ladder() {
        let mut backoff = Backoff::with_policy(BackoffPolicy::new(5, 70));
        for _ in 0..YIELD_SWEEPS {
            assert_eq!(backoff.pause(), None);
        }
        // 5 µs → 50 µs → clamped to the 70 µs cap, held forever.
        for micros in [5, 50, 70, 70, 70] {
            for _ in 0..SWEEPS_PER_RUNG {
                assert_eq!(backoff.pause(), Some(Duration::from_micros(micros)));
            }
        }
    }

    #[test]
    fn cap_below_initial_clamps_every_rung() {
        let policy = BackoffPolicy::new(500, 20);
        for rung in 0..10 {
            assert_eq!(policy.rung_micros(rung), 20);
        }
    }

    #[test]
    fn zero_values_are_treated_as_one_microsecond() {
        let policy = BackoffPolicy::new(0, 0);
        assert_eq!(policy.rung_micros(0), 1);
        assert_eq!(policy.rung_micros(5), 1);
        let policy = BackoffPolicy::new(0, 1_000);
        assert_eq!(policy.rung_micros(0), 1);
        assert_eq!(policy.rung_micros(1), 10);
    }

    #[test]
    fn huge_rungs_saturate_at_the_cap() {
        let policy = BackoffPolicy::new(10, u64::MAX);
        // 10 × 10^n saturates u64 without panicking, then holds.
        assert_eq!(policy.rung_micros(200), policy.rung_micros(199));
    }
}
