//! Shared idle-backoff policy for polling loops.
//!
//! Every spin-poll loop in the stack (the broker pump, the engine's
//! transport sweeps, multi-endpoint supervisors) faces the same trade-off:
//! react to traffic in nanoseconds while it is flowing, but stop burning a
//! core once the peers are deep in compute (tree builds take seconds at
//! scale). [`Backoff`] encodes one policy for all of them — spin-yield
//! first, then sleep on an exponential ladder capped at 1 ms — and resets
//! to the hot state the moment traffic resumes.

use std::time::Duration;

/// How many idle sweeps spin-yield before the loop starts sleeping.
const YIELD_SWEEPS: u32 = 32;
/// Sweeps spent at each sleep rung before escalating to the next.
const SWEEPS_PER_RUNG: u32 = 8;
/// The sleep ladder: 10 µs → 100 µs → 1 ms (the cap).
const LADDER_MICROS: [u64; 3] = [10, 100, 1_000];

/// Exponential idle backoff: yield → 10 µs → 100 µs → 1 ms cap.
///
/// Call [`wait`](Self::wait) on every idle sweep and
/// [`reset`](Self::reset) whenever the loop makes progress. The schedule
/// itself is exposed through [`pause`](Self::pause) so it can be unit
/// tested without measuring real sleeps.
///
/// # Examples
///
/// ```
/// use ugc_grid::Backoff;
///
/// let mut backoff = Backoff::new();
/// assert_eq!(backoff.pause(), None); // hot: spin-yield
/// backoff.reset();                   // traffic seen: stay hot
/// assert_eq!(backoff.pause(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh (hot) backoff.
    #[must_use]
    pub const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Returns to the hot state; call when the loop made progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Advances the schedule one idle sweep and returns what the sweep
    /// should do: `None` means spin-yield, `Some(d)` means sleep `d`.
    /// The returned durations climb 10 µs → 100 µs → 1 ms and then stay
    /// at the 1 ms cap until [`reset`](Self::reset).
    pub fn pause(&mut self) -> Option<Duration> {
        let step = self.step;
        self.step = self.step.saturating_add(1);
        if step < YIELD_SWEEPS {
            return None;
        }
        let rung = ((step - YIELD_SWEEPS) / SWEEPS_PER_RUNG) as usize;
        let micros = LADDER_MICROS[rung.min(LADDER_MICROS.len() - 1)];
        Some(Duration::from_micros(micros))
    }

    /// Performs one idle sweep: spin-yields while hot, sleeps per the
    /// ladder once the loop has been idle for a while.
    pub fn wait(&mut self) {
        match self.pause() {
            None => std::thread::yield_now(),
            Some(d) => std::thread::sleep(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_yield_then_exponential_ladder() {
        let mut backoff = Backoff::new();
        for sweep in 0..YIELD_SWEEPS {
            assert_eq!(backoff.pause(), None, "sweep {sweep} must spin-yield");
        }
        for &micros in &LADDER_MICROS {
            for sweep in 0..SWEEPS_PER_RUNG {
                assert_eq!(
                    backoff.pause(),
                    Some(Duration::from_micros(micros)),
                    "rung {micros} µs, sweep {sweep}"
                );
            }
        }
    }

    #[test]
    fn cap_holds_at_one_millisecond() {
        let mut backoff = Backoff::new();
        for _ in 0..(YIELD_SWEEPS + SWEEPS_PER_RUNG * LADDER_MICROS.len() as u32) {
            let _ = backoff.pause();
        }
        for _ in 0..1000 {
            assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        }
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut backoff = Backoff::new();
        for _ in 0..200 {
            let _ = backoff.pause();
        }
        assert!(backoff.pause().is_some());
        backoff.reset();
        assert_eq!(backoff.pause(), None);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut backoff = Backoff { step: u32::MAX - 1 };
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
        assert_eq!(backoff.pause(), Some(Duration::from_millis(1)));
    }
}
