//! Property-based tests for the socket framing layer: every way a byte
//! stream can be torn, truncated, fragmented, or forged must surface as
//! a typed [`GridError`] (or a clean `Ok(None)` close) — never a panic,
//! a hang, or a silently wrong frame.

use proptest::prelude::*;
use std::io::{Cursor, Read};
use ugc_grid::wire::{
    read_frame, recv_hello, recv_welcome, send_hello, send_welcome, write_frame, Frame, Hello,
    Welcome, MAX_FRAME_LEN, WIRE_VERSION,
};
use ugc_grid::GridError;

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_bytes(300).prop_map(Frame::Data),
        arb_bytes(300).prop_map(Frame::Control),
    ]
}

/// A reader that hands out at most a few bytes per `read` call, with the
/// chunk sizes driven by a seed — models TCP segmentation, where a frame
/// rarely arrives in one `read`.
struct Trickle {
    data: Cursor<Vec<u8>>,
    seed: u64,
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.seed = self
            .seed
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        // ugc-lint: allow(lossy-cast): bounded to 1..=3 by the modulo, cannot truncate
        let chunk = ((self.seed >> 33) % 3 + 1) as usize;
        let take = chunk.min(buf.len());
        self.data.read(&mut buf[..take])
    }
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for frame in frames {
        write_frame(&mut buf, frame).expect("in-memory write");
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn frame_stream_roundtrips(frames in proptest::collection::vec(arb_frame(), 0..6)) {
        let mut cursor = Cursor::new(encode_stream(&frames));
        for frame in &frames {
            prop_assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(frame));
        }
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn fragmented_reads_reassemble_identically(
        frames in proptest::collection::vec(arb_frame(), 1..5),
        seed in any::<u64>(),
    ) {
        // A frame delivered one-to-three bytes at a time decodes exactly
        // as one delivered whole; read_frame must loop, not hang or tear.
        let mut trickle = Trickle { data: Cursor::new(encode_stream(&frames)), seed };
        for frame in &frames {
            prop_assert_eq!(read_frame(&mut trickle).unwrap().as_ref(), Some(frame));
        }
        prop_assert_eq!(read_frame(&mut trickle).unwrap(), None);
    }

    #[test]
    fn every_truncation_is_torn_or_clean(frame in arb_frame(), cut_seed in any::<proptest::sample::Index>()) {
        let buf = encode_stream(std::slice::from_ref(&frame));
        let cut = cut_seed.index(buf.len());
        let result = read_frame(&mut Cursor::new(&buf[..cut]));
        if cut == 0 {
            // EOF on the boundary: a clean close, not an error.
            prop_assert_eq!(result, Ok(None));
        } else {
            prop_assert!(
                matches!(result, Err(GridError::TornFrame { .. })),
                "cut {} of {}: {:?}", cut, buf.len(), result
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation(
        excess in 1u64..=u64::from(u32::MAX >> 1) - MAX_FRAME_LEN,
        control in any::<bool>(),
    ) {
        // A hostile header declaring up to ~2 GiB must be refused from
        // the four header bytes alone (the test would OOM otherwise).
        let declared = MAX_FRAME_LEN + excess;
        // ugc-lint: allow(lossy-cast): declared stays below 1<<31 by construction; this forges a hostile header
        let mut word = declared as u32;
        if control {
            word |= 1 << 31;
        }
        let result = read_frame(&mut Cursor::new(word.to_le_bytes().to_vec()));
        prop_assert_eq!(result, Err(GridError::LengthOverflow { declared }));
    }

    #[test]
    fn random_bytes_never_panic_or_hang(stream in arb_bytes(64)) {
        // Arbitrary garbage either decodes as some frame (if the length
        // word happens to be satisfied), ends clean, or errors typed.
        let _ = read_frame(&mut Cursor::new(stream));
    }

    #[test]
    fn hello_roundtrips(role in any::<u8>(), params in arb_bytes(128)) {
        let hello = Hello { role, params };
        let mut buf = Vec::new();
        send_hello(&mut buf, &hello).unwrap();
        prop_assert_eq!(recv_hello(&mut Cursor::new(buf)).unwrap(), hello);
    }

    #[test]
    fn welcome_roundtrips(peer_index in any::<u32>(), peer_count in any::<u32>(), params in arb_bytes(128)) {
        let welcome = Welcome { peer_index, peer_count, params };
        let mut buf = Vec::new();
        send_welcome(&mut buf, &welcome).unwrap();
        prop_assert_eq!(recv_welcome(&mut Cursor::new(buf)).unwrap(), welcome);
    }

    #[test]
    fn any_foreign_version_is_a_typed_mismatch(version in any::<u32>(), params in arb_bytes(32)) {
        prop_assume!(version != WIRE_VERSION);
        // Re-encode a hello with a forged version word (bytes 8..12 of
        // the payload, after the 8-byte magic).
        let mut payload = Hello { role: 1, params }.encode();
        payload[8..12].copy_from_slice(&version.to_le_bytes());
        let result = Hello::decode(&payload);
        prop_assert_eq!(
            result,
            Err(GridError::HandshakeMismatch { ours: WIRE_VERSION, theirs: version })
        );
    }

    #[test]
    fn hostile_handshake_payloads_never_panic(payload in arb_bytes(96)) {
        let _ = Hello::decode(&payload);
        let _ = Welcome::decode(&payload);
    }

    #[test]
    fn truncated_handshake_is_typed(params in arb_bytes(64), cut_seed in any::<proptest::sample::Index>()) {
        let payload = Welcome { peer_index: 2, peer_count: 5, params }.encode();
        let cut = cut_seed.index(payload.len());
        prop_assert!(Welcome::decode(&payload[..cut]).is_err());
    }
}
