//! Property-based tests for the wire codec (DESIGN.md §5: encode→decode
//! roundtrip for every message type, exact length framing).

use proptest::prelude::*;
use ugc_grid::{Assignment, GridError, Message, SampleProof};
use ugc_task::Domain;

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_proof() -> impl Strategy<Value = SampleProof> {
    (
        any::<u64>(),
        arb_bytes(64),
        arb_bytes(64),
        proptest::collection::vec(arb_bytes(40), 0..6),
    )
        .prop_map(
            |(index, leaf_value, leaf_sibling, digest_siblings)| SampleProof {
                index,
                leaf_value,
                leaf_sibling,
                digest_siblings,
            },
        )
}

/// Every bare (non-envelope) message variant.
fn arb_bare_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), 1u64..1 << 40).prop_map(|(id, start, len)| {
            let start = start.min(u64::MAX - len);
            Message::Assign(Assignment {
                task_id: id,
                domain: Domain::new(start, len),
            })
        }),
        (any::<u64>(), arb_bytes(64)).prop_map(|(task_id, root)| Message::Commit { task_id, root }),
        (any::<u64>(), proptest::collection::vec(any::<u64>(), 0..64))
            .prop_map(|(task_id, samples)| Message::Challenge { task_id, samples }),
        (any::<u64>(), proptest::collection::vec(arb_proof(), 0..5))
            .prop_map(|(task_id, proofs)| Message::Proofs { task_id, proofs }),
        (
            any::<u64>(),
            arb_bytes(32),
            proptest::collection::vec(arb_proof(), 0..4)
        )
            .prop_map(|(task_id, root, proofs)| Message::CommitAndProofs {
                task_id,
                root,
                proofs
            }),
        (any::<u64>(), any::<u32>(), arb_bytes(256)).prop_map(|(task_id, leaf_width, data)| {
            Message::AllResults {
                task_id,
                leaf_width,
                data,
            }
        }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), arb_bytes(32)), 0..8)
        )
            .prop_map(|(task_id, reports)| Message::Reports { task_id, reports }),
        (any::<u64>(), proptest::collection::vec(arb_bytes(32), 0..8))
            .prop_map(|(task_id, ringers)| Message::RingerChallenge { task_id, ringers }),
        (any::<u64>(), proptest::collection::vec(any::<u64>(), 0..32))
            .prop_map(|(task_id, inputs)| Message::RingerFound { task_id, inputs }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(task_id, accepted)| Message::Verdict { task_id, accepted }),
        any::<u64>().prop_map(|task_id| Message::Gone { task_id }),
    ]
}

/// Every message variant, including the session envelope around every
/// bare variant.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_bare_message(),
        (any::<u64>(), arb_bare_message())
            .prop_map(|(session_id, payload)| Message::in_session(session_id, payload)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(msg in arb_message()) {
        let encoded = msg.encode();
        let decoded = Message::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn wire_len_is_exact(msg in arb_message()) {
        prop_assert_eq!(msg.wire_len(), msg.encode().len() as u64);
    }

    #[test]
    fn any_truncation_fails(msg in arb_message(), cut_seed in any::<proptest::sample::Index>()) {
        let encoded = msg.encode();
        let cut = cut_seed.index(encoded.len());
        prop_assert!(Message::decode(&encoded[..cut]).is_err());
    }

    #[test]
    fn any_suffix_garbage_fails(msg in arb_message(), garbage in proptest::collection::vec(any::<u8>(), 1..8)) {
        let mut encoded = msg.encode();
        encoded.extend_from_slice(&garbage);
        // Must fail: either trailing bytes, or a length field that now
        // reads into the garbage and mismatches.
        prop_assert!(Message::decode(&encoded).is_err());
    }

    #[test]
    fn random_bytes_never_panic(frame in arb_bytes(256)) {
        // Decoding hostile input must return an error, never panic.
        let _ = Message::decode(&frame);
    }

    #[test]
    fn envelope_preserves_payload_and_routing(session_id in any::<u64>(), payload in arb_bare_message()) {
        let wrapped = Message::in_session(session_id, payload.clone());
        // Envelope framing costs exactly tag + id: 9 bytes.
        prop_assert_eq!(wrapped.wire_len(), payload.wire_len() + 9);
        prop_assert_eq!(wrapped.session_id(), session_id);
        prop_assert_eq!(wrapped.task_id(), payload.task_id());
        let decoded = Message::decode(&wrapped.encode()).unwrap();
        prop_assert_eq!(decoded.into_payload(), (Some(session_id), payload));
    }

    #[test]
    fn truncated_envelope_rejected(session_id in any::<u64>(), payload in arb_bare_message(), cut_seed in any::<proptest::sample::Index>()) {
        let encoded = Message::in_session(session_id, payload).encode();
        let cut = cut_seed.index(encoded.len());
        prop_assert!(Message::decode(&encoded[..cut]).is_err());
    }

    #[test]
    fn transport_preserves_any_message(msg in arb_message()) {
        let (a, b) = ugc_grid::duplex();
        a.send(&msg).unwrap();
        let got = b.recv().unwrap();
        prop_assert_eq!(got, msg.clone());
        prop_assert_eq!(
            a.stats().bytes_sent,
            msg.wire_len() + ugc_grid::FRAME_HEADER_BYTES
        );
    }
}

#[test]
fn decode_error_types_are_actionable() {
    // Unknown tag.
    assert!(matches!(
        Message::decode(&[0x7F]),
        Err(GridError::UnknownTag { tag: 0x7F })
    ));
    // Empty frame.
    assert!(matches!(
        Message::decode(&[]),
        Err(GridError::UnexpectedEof { .. })
    ));
}
