//! Properties of the deterministic fault-injection decorator: the same
//! seed must reproduce the exact same delivery schedule and event log,
//! and the zero-rate plan must be byte-for-byte invisible — these are the
//! guarantees the chaos soak's replayability rests on.

use proptest::prelude::*;
use ugc_grid::runtime::{FaultDecision, FaultEvent, FaultPlan, FaultyEndpoint, LinkDirection};
use ugc_grid::{duplex, GridError, GridLink, Message};

/// Distinct, compact messages for scripted traffic.
fn msg(i: u64) -> Message {
    Message::Verdict {
        task_id: i,
        accepted: i % 2 == 0,
    }
}

/// Pushes `inbound` messages at a decorated endpoint and sends `outbound`
/// from it, returning what the decorated side received, what the raw peer
/// received, and the recorded fault events.
fn script(
    plan: FaultPlan,
    link_id: u64,
    inbound: u64,
    outbound: u64,
) -> (Vec<Message>, Vec<Message>, Vec<FaultEvent>) {
    let (peer, raw) = duplex();
    let decorated = FaultyEndpoint::new(raw, plan.link(link_id));
    let log = decorated.log();
    for i in 0..inbound {
        peer.send(&msg(i)).unwrap();
    }
    for i in 0..outbound {
        // May fail once a seeded crash latches; the schedule is the point.
        let _ = GridLink::send(&decorated, &msg(1000 + i));
    }
    let mut delivered = Vec::new();
    // Drains until Empty, or Disconnected after a seeded crash.
    while let Ok(m) = GridLink::try_recv(&decorated) {
        delivered.push(m);
    }
    let mut peer_saw = Vec::new();
    while let Ok(m) = peer.try_recv() {
        peer_saw.push(m);
    }
    drop(decorated); // flushes an outbound reorder hold (unless crashed)
    while let Ok(m) = peer.try_recv() {
        peer_saw.push(m);
    }
    (delivered, peer_saw, log.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quiet_plan_is_byte_identical_to_undecorated(
        seed in any::<u64>(),
        link in any::<u64>(),
        inbound in 0u64..20,
        outbound in 0u64..20,
    ) {
        // Reference run over a raw endpoint pair.
        let (peer, raw) = duplex();
        for i in 0..inbound {
            peer.send(&msg(i)).unwrap();
        }
        for i in 0..outbound {
            raw.send(&msg(1000 + i)).unwrap();
        }
        let mut raw_delivered = Vec::new();
        while let Ok(m) = raw.try_recv() {
            raw_delivered.push(m);
        }
        let mut raw_peer_saw = Vec::new();
        while let Ok(m) = peer.try_recv() {
            raw_peer_saw.push(m);
        }
        let raw_stats = raw.stats();

        // Same traffic through the quiet decorator.
        let (peer2, inner) = duplex();
        let quiet = FaultyEndpoint::new(inner, FaultPlan::quiet(seed).link(link));
        for i in 0..inbound {
            peer2.send(&msg(i)).unwrap();
        }
        for i in 0..outbound {
            GridLink::send(&quiet, &msg(1000 + i)).unwrap();
        }
        let mut delivered = Vec::new();
        while let Ok(m) = GridLink::try_recv(&quiet) {
            delivered.push(m);
        }
        let mut peer_saw = Vec::new();
        while let Ok(m) = peer2.try_recv() {
            peer_saw.push(m);
        }
        prop_assert_eq!(delivered, raw_delivered);
        prop_assert_eq!(peer_saw, raw_peer_saw);
        // Byte-identical accounting, not just the same messages.
        prop_assert_eq!(GridLink::stats(&quiet), raw_stats);
        prop_assert!(quiet.log().snapshot().is_empty());
    }

    #[test]
    fn same_seed_reproduces_schedule_and_events(
        seed in any::<u64>(),
        link in any::<u64>(),
        drop_rate in 0u16..200,
        dup in 0u16..200,
        reorder in 0u16..200,
        crash in 0u16..1024,
        inbound in 0u64..24,
        outbound in 0u64..24,
    ) {
        let plan = FaultPlan {
            seed,
            drop_per_1024: drop_rate,
            dup_per_1024: dup,
            reorder_per_1024: reorder,
            max_delay_micros: 0, // keep the property test fast
            crash_per_1024: crash,
        };
        let first = script(plan, link, inbound, outbound);
        let second = script(plan, link, inbound, outbound);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn decisions_are_pure_functions(
        seed in any::<u64>(),
        link in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let plan = FaultPlan::chaos(seed).with_churn(300).with_drops(50);
        let faults = plan.link(link);
        for direction in [LinkDirection::Inbound, LinkDirection::Outbound] {
            prop_assert_eq!(faults.decision(direction, seq), faults.decision(direction, seq));
        }
        prop_assert_eq!(faults.crash_after(), faults.crash_after());
    }
}

/// A plan whose every message duplicates: each delivery appears twice.
#[test]
fn always_duplicate_delivers_everything_twice() {
    let plan = FaultPlan {
        seed: 1,
        drop_per_1024: 0,
        dup_per_1024: 1024,
        reorder_per_1024: 0,
        max_delay_micros: 0,
        crash_per_1024: 0,
    };
    let (delivered, peer_saw, events) = script(plan, 0, 3, 2);
    let ids: Vec<u64> = delivered.iter().map(Message::task_id).collect();
    assert_eq!(ids, vec![0, 0, 1, 1, 2, 2]);
    let out_ids: Vec<u64> = peer_saw.iter().map(Message::task_id).collect();
    assert_eq!(out_ids, vec![1000, 1000, 1001, 1001]);
    assert_eq!(events.len(), 5);
}

/// A plan whose every message drops: nothing is ever delivered.
#[test]
fn always_drop_delivers_nothing() {
    let plan = FaultPlan::quiet(9).with_drops(1024);
    let (delivered, peer_saw, events) = script(plan, 7, 4, 3);
    assert!(delivered.is_empty());
    assert!(peer_saw.is_empty());
    assert_eq!(events.len(), 7); // every message logged as dropped
}

/// A plan whose every message reorders: outbound adjacent pairs swap (a
/// trailing hold is flushed when the link turns around to receive), while
/// inbound traffic — request-paced, nothing to swap with — is untouched.
#[test]
fn always_reorder_swaps_adjacent_outbound_messages() {
    let plan = FaultPlan {
        seed: 2,
        drop_per_1024: 0,
        dup_per_1024: 0,
        reorder_per_1024: 1024,
        max_delay_micros: 0,
        crash_per_1024: 0,
    };
    let (delivered, peer_saw, _) = script(plan, 3, 4, 3);
    let ids: Vec<u64> = delivered.iter().map(Message::task_id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3], "inbound must never be held");
    // Outbound: 1000 held, 1001 sent + 1000 flushed behind it, 1002 held
    // and flushed by the first receive.
    let out_ids: Vec<u64> = peer_saw.iter().map(Message::task_id).collect();
    assert_eq!(out_ids, vec![1001, 1000, 1002]);
}

/// A crashing link dies at its seeded inbound message and loses held
/// mail; the peer observes a plain disconnect.
#[test]
fn crash_fires_at_the_seeded_point_and_latches() {
    let plan = FaultPlan::quiet(0).with_churn(1024);
    // Find a link id whose participant crashes on its 2nd message, so the
    // test does not depend on the draw for any particular id.
    let link_id = (0..)
        .find(|&id| plan.link(id).crash_after() == Some(2))
        .unwrap();
    let (peer, raw) = duplex();
    let faulty = FaultyEndpoint::new(raw, plan.link(link_id));
    for i in 0..4 {
        peer.send(&msg(i)).unwrap();
    }
    assert_eq!(GridLink::recv(&faulty).unwrap().task_id(), 0);
    assert_eq!(
        GridLink::recv(&faulty).unwrap_err(),
        GridError::Disconnected
    );
    // The crash latches: sends and receives both fail from now on.
    assert_eq!(
        GridLink::send(&faulty, &msg(9)).unwrap_err(),
        GridError::Disconnected
    );
    assert_eq!(
        GridLink::recv(&faulty).unwrap_err(),
        GridError::Disconnected
    );
    let events = faulty.log().snapshot();
    assert!(events.contains(&FaultEvent::Crashed {
        link: link_id,
        after: 2
    }));
    // Dropping the crashed endpoint closes the wire for the peer.
    drop(faulty);
    assert_eq!(peer.recv().unwrap_err(), GridError::Disconnected);
}

/// The chaos preset never drops or crashes (sessions always complete);
/// churn and drops are explicit opt-ins.
#[test]
fn chaos_preset_is_lossless_by_default() {
    let plan = FaultPlan::chaos(42);
    assert_eq!(plan.drop_per_1024, 0);
    assert_eq!(plan.crash_per_1024, 0);
    let churned = plan.with_churn(128).with_drops(16);
    assert_eq!(churned.crash_per_1024, 128);
    assert_eq!(churned.drop_per_1024, 16);
    // Rates materialise as decisions at roughly the configured frequency.
    let faults = FaultPlan::quiet(7).with_drops(512).link(0);
    let drops = (0..1000)
        .filter(|&seq| faults.decision(LinkDirection::Inbound, seq) == FaultDecision::Drop)
        .count();
    assert!((350..650).contains(&drops), "drop rate off: {drops}/1000");
}
