//! Property-based tests for the cheating behaviours (the Section 2.2
//! models must realise their parameters exactly, or every downstream
//! detection experiment is biased).

use proptest::prelude::*;
use ugc_grid::{CheatSelection, CostLedger, HonestWorker, SemiHonestCheater, WorkerBehaviour};
use ugc_task::workloads::PasswordSearch;
use ugc_task::{ComputeTask, Domain, ZeroGuesser};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prefix_selection_is_exactly_floor_rn(r in 0.0f64..=1.0, n in 1u64..5000) {
        let cheater = SemiHonestCheater::new(r, CheatSelection::Prefix, ZeroGuesser::new(0), 0);
        let honest = (0..n).filter(|&i| cheater.is_honest_index(n, i)).count() as u64;
        prop_assert_eq!(honest, (r * n as f64).floor() as u64);
    }

    #[test]
    fn scattered_selection_is_deterministic(r in 0.0f64..=1.0, seed in any::<u64>()) {
        let a = SemiHonestCheater::new(r, CheatSelection::Scattered, ZeroGuesser::new(1), seed);
        let b = SemiHonestCheater::new(r, CheatSelection::Scattered, ZeroGuesser::new(1), seed);
        for i in 0..200u64 {
            prop_assert_eq!(a.is_honest_index(200, i), b.is_honest_index(200, i));
        }
    }

    #[test]
    fn committed_leaves_are_stable(r in 0.1f64..0.9, seed in any::<u64>()) {
        // The same cheater must commit identical leaves when asked twice —
        // otherwise its own Merkle proofs would not verify.
        let task = PasswordSearch::with_hidden_password(3, 4);
        let cheater = SemiHonestCheater::new(r, CheatSelection::Scattered, ZeroGuesser::new(7), seed);
        let domain = Domain::new(0, 64);
        let ledger = CostLedger::new();
        for i in 0..64 {
            prop_assert_eq!(
                cheater.leaf_value(&task, domain, i, &ledger),
                cheater.leaf_value(&task, domain, i, &ledger)
            );
        }
    }

    #[test]
    fn cheater_cost_equals_honest_subset(r in 0.0f64..=1.0, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(3, 4);
        let cheater = SemiHonestCheater::new(r, CheatSelection::Scattered, ZeroGuesser::new(7), seed);
        let domain = Domain::new(0, 256);
        let ledger = CostLedger::new();
        let honest_count = (0..256)
            .filter(|&i| cheater.is_honest_index(256, i))
            .count() as u64;
        for i in 0..256 {
            let _ = cheater.leaf_value(&task, domain, i, &ledger);
        }
        prop_assert_eq!(ledger.report().f_evals, honest_count * task.unit_cost());
    }

    #[test]
    fn honest_worker_matches_task_everywhere(n in 1u64..128, seed in any::<u64>()) {
        let task = PasswordSearch::with_hidden_password(seed, 0);
        let domain = Domain::new(0, n);
        let ledger = CostLedger::new();
        for i in 0..n {
            prop_assert_eq!(
                HonestWorker.leaf_value(&task, domain, i, &ledger),
                task.compute(i)
            );
        }
    }
}

#[test]
fn scattered_ratio_converges_statistically() {
    for (r, seed) in [(0.25f64, 1u64), (0.5, 2), (0.75, 3)] {
        let cheater =
            SemiHonestCheater::new(r, CheatSelection::Scattered, ZeroGuesser::new(4), seed);
        let n = 40_000u64;
        let honest = (0..n).filter(|&i| cheater.is_honest_index(n, i)).count() as f64;
        let rate = honest / n as f64;
        assert!((rate - r).abs() < 0.01, "r={r}: measured {rate}");
    }
}
