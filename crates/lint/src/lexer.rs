//! A small hand-rolled Rust lexer, aware of comments, strings, raw
//! strings and char-vs-lifetime quotes.
//!
//! The rule engine only needs a faithful *token* stream — it must never
//! mistake `"Instant::now"` inside a string literal (or a doc-comment
//! example) for a wall-clock read — so this lexer does exactly the
//! bracketing work and nothing more: it classifies every byte of a source
//! file as whitespace, comment, literal or token, tracks line numbers
//! through all of them, and hands the rule engine identifiers and
//! punctuation with the noise already stripped.
//!
//! Deliberate simplifications (documented so nobody mistakes this for a
//! full grammar): numeric literals are lexed greedily without validating
//! suffixes, a raw identifier `r#foo` lexes as `r` `#` `foo`, and `::` is
//! the only fused multi-character punctuator (the rules match on it).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`routes`, `as`, `unsafe`).
    Ident,
    /// A punctuation character, or the fused `::`.
    Punct,
    /// A string, raw-string, char or numeric literal (content dropped —
    /// no rule inspects literal contents, which is the point).
    Literal,
}

/// One lexed token with the line it starts on (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification of this lexeme.
    pub kind: TokenKind,
    /// The token text (empty for [`TokenKind::Literal`] strings).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment content without the `//` / `/* */` delimiters.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Every non-comment token in source order.
    pub tokens: Vec<Token>,
    /// Every comment in source order (suppression annotations live here).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The set of lines (1-based) that carry at least one code token —
    /// used to resolve which line a standalone annotation comment covers.
    #[must_use]
    pub fn token_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// constructs simply run to end-of-file (the compiler is the arbiter of
/// validity; the auditor only needs bracketing that matches it on code
/// that compiles).
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j; // the '\n' itself is handled by the main loop
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            i = j;
            continue;
        }
        // Cooked string literal.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                match chars[j] {
                    '\\' => {
                        // Skip the escaped char (incl. \" and \\) — but a
                        // line-continuation escapes the newline itself,
                        // which still ends a line for counting purposes.
                        if j + 1 < n && chars[j + 1] == '\n' {
                            line += 1;
                        }
                        j += 2;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: skip the escaped char, then run to
                // the closing quote (covers '\n', '\'', '\\', '\u{…}').
                let mut j = i + 3;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j + 1;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                // Plain char literal 'x'.
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                i += 3;
                continue;
            }
            // A lifetime: emit the quote as punctuation; the name lexes as
            // a normal identifier next iteration.
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "'".to_string(),
                line,
            });
            i += 1;
            continue;
        }
        // Numeric literal (greedy; suffixes and hex digits ride along).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(chars[j])) {
                j += 1;
            }
            if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                j += 2;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier — possibly a raw/byte string prefix.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            if matches!(word.as_str(), "r" | "b" | "br") {
                // Raw or byte string? Count hashes, require a quote.
                let mut k = j;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    let start_line = line;
                    k += 1;
                    // Consume until `"` followed by `hashes` hashes.
                    'scan: while k < n {
                        if chars[k] == '\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'scan;
                            }
                        }
                        if word == "b" && chars[k] == '\\' {
                            // b"…" honours escapes; r"…"/br"…" do not.
                            k += 2;
                            continue;
                        }
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: word,
                line,
            });
            i = j;
            continue;
        }
        // Punctuation; `::` fuses (the only sequence the rules match on).
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn code_inside_strings_and_comments_is_invisible() {
        let src = concat!(
            "// Instant::now in a comment\n",
            "/* HashMap.iter() in /* a nested */ block */\n",
            "let s = \"Instant::now()\";\n",
            "let r = r#\"thread_rng() \"quoted\" inside\"#;\n",
            "let real = 1;\n",
        );
        let lexed = lex(src);
        let ids = idents(&lexed);
        assert!(!ids.contains(&"Instant"), "{ids:?}");
        assert!(!ids.contains(&"HashMap"), "{ids:?}");
        assert!(!ids.contains(&"thread_rng"), "{ids:?}");
        assert!(ids.contains(&"real"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let nl = '\\n'; x }";
        let lexed = lex(src);
        let ids = idents(&lexed);
        // The lifetime names appear as idents, but the char literals do not
        // desynchronise the stream: `x` is still visible after them.
        assert_eq!(ids.iter().filter(|t| **t == "a").count(), 3);
        assert!(ids.contains(&"nl"));
        assert_eq!(*ids.last().unwrap(), "x");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\n/* b\nlock */\nlet b = 2;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn line_continuation_in_string_still_counts_the_line() {
        // `"… \` at end of line escapes the newline; the next line still
        // has to count or every finding below it is off by one.
        let src = "let a = \"one \\\n two\";\nlet b = 2;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn double_colon_fuses() {
        let lexed = lex("Instant::now()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn raw_string_with_hashes_terminates_correctly() {
        let src = "let x = r##\"contains \"# inside\"##; let y = 1;";
        let lexed = lex(src);
        assert!(idents(&lexed).contains(&"y"));
    }

    #[test]
    fn byte_string_escapes_honoured() {
        let src = "let x = b\"\\\"\"; let y = 1;";
        let lexed = lex(src);
        assert!(idents(&lexed).contains(&"y"));
    }
}
