//! The determinism rules and the per-file rule engine.
//!
//! Every rule guards the same contract: a campaign must replay
//! bit-identically from its seed — same verdicts, same ledgers, same
//! fault log — under any thread interleaving, worker count, platform or
//! process boundary. Anything that lets ambient state (the clock, hash
//! randomization, the OS entropy pool, thread identity, pointer widths)
//! leak into a semantic path breaks that contract silently, and silent is
//! the expensive way to find out once campaigns span processes.
//!
//! Findings are suppressible only by an explicit, *reasoned* annotation:
//!
//! ```text
//! // ugc-lint: allow(wall-clock): reporting-only wall duration
//! ```
//!
//! on the offending line or the comment line(s) directly above it. The
//! reason is mandatory — an allow without one is itself a finding — so
//! every escape hatch in the tree documents why it is safe.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// The determinism rules `ugc-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`): real time is
    /// different on every run, so it must never influence verdicts,
    /// schedules or encoded bytes — only reporting.
    WallClock,
    /// Iteration over `HashMap`/`HashSet`: iteration order is
    /// unspecified and differs across runs. Keyed lookup is fine.
    UnorderedIter,
    /// RNG construction not derived from an explicit seed
    /// (`thread_rng`, `OsRng`, `from_entropy`, `rand::random`).
    AmbientRng,
    /// Thread identity (`thread::current`, `ThreadId`) influencing
    /// anything: which worker polls a task is scheduling, never
    /// semantics.
    ThreadIdentity,
    /// Potentially truncating `as` casts in codec/ledger paths, where a
    /// platform-dependent result would diverge the wire format or the
    /// replay digest across machines.
    LossyCast,
    /// `unsafe` in first-party code (every workspace crate root must
    /// carry `#![forbid(unsafe_code)]`; vendor usage is inventoried, not
    /// failed).
    UnsafeCode,
    /// A workspace crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A malformed or unused `ugc-lint:` annotation (missing reason,
    /// unknown rule, or suppressing nothing).
    Annotation,
}

impl Rule {
    /// The rule's stable kebab-case name, as used in `allow(<rule>)`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::AmbientRng => "ambient-rng",
            Rule::ThreadIdentity => "thread-identity",
            Rule::LossyCast => "lossy-cast",
            Rule::UnsafeCode => "unsafe-code",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::Annotation => "annotation",
        }
    }

    /// Parses an `allow(<rule>)` rule name. [`Rule::Annotation`] is not
    /// allowable — a broken annotation cannot excuse itself.
    #[must_use]
    pub fn parse_allowable(name: &str) -> Option<Rule> {
        match name {
            "wall-clock" => Some(Rule::WallClock),
            "unordered-iter" => Some(Rule::UnorderedIter),
            "ambient-rng" => Some(Rule::AmbientRng),
            "thread-identity" => Some(Rule::ThreadIdentity),
            "lossy-cast" => Some(Rule::LossyCast),
            "unsafe-code" => Some(Rule::UnsafeCode),
            "forbid-unsafe" => Some(Rule::ForbidUnsafe),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding: a rule violated at a file:line, with a message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One honoured `ugc-lint: allow` annotation, with its mandatory reason —
/// the auditor reports these so every suppression in the tree stays
/// visible.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowRecord {
    /// Repo-relative path of the annotated file.
    pub file: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// The rule being suppressed.
    pub rule: Rule,
    /// The annotation's stated reason.
    pub reason: String,
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Unsuppressed findings, sorted by line.
    pub findings: Vec<Finding>,
    /// Allow annotations that suppressed at least one finding.
    pub allows: Vec<AllowRecord>,
}

/// The annotation marker looked for inside comments.
const MARKER: &str = "ugc-lint:";

/// Method names whose call on a `HashMap`/`HashSet` observes iteration
/// order. Keyed accessors (`get`, `insert`, `remove`, `contains_key`,
/// `entry`, `len`, …) are deliberately absent: keyed lookup is fine.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Cast-target types that can truncate (or change width per platform).
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// RNG constructors that pull ambient entropy instead of an explicit seed.
const AMBIENT_RNG_IDENTS: &[&str] = &["thread_rng", "ThreadRng", "OsRng", "from_entropy"];

/// Whether `path` is a codec/ledger path, where the [`Rule::LossyCast`]
/// rule applies (truncation there diverges wire bytes or replay digests
/// across platforms). The multi-lane digest kernels (`lanes`) count:
/// they feed Merkle commitments and campaign digests, so a truncating
/// cast there corrupts replay identity exactly like a codec would.
#[must_use]
pub fn is_codec_path(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    [
        "codec", "message", "ledger", "wire", "journal", "tcp", "lanes",
    ]
    .iter()
    .any(|stem| file.contains(stem))
}

/// A parsed `ugc-lint: allow(<rule>): <reason>` annotation.
struct ParsedAllow {
    rule: Rule,
    reason: String,
    line: u32,
}

/// Parses the annotations out of a file's comments; malformed ones become
/// findings immediately.
fn parse_allows(path: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<ParsedAllow> {
    let mut allows = Vec::new();
    for comment in comments {
        // Doc comments (`///`, `//!` — text starts with the extra `/` or
        // `!`) are documentation, not pragmas: the grammar can be cited
        // there without registering as a (then unused) suppression.
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        let Some(pos) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = comment.text[pos + MARKER.len()..].trim_start();
        let malformed = |findings: &mut Vec<Finding>, detail: &str| {
            findings.push(Finding {
                file: path.to_string(),
                line: comment.line,
                rule: Rule::Annotation,
                message: format!(
                    "malformed ugc-lint annotation ({detail}); \
                     expected `ugc-lint: allow(<rule>): <reason>`"
                ),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed(findings, "missing `allow(`");
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed(findings, "unclosed `allow(`");
            continue;
        };
        let rule_name = args[..close].trim();
        let Some(rule) = Rule::parse_allowable(rule_name) else {
            malformed(findings, &format!("unknown rule {rule_name:?}"));
            continue;
        };
        let after = args[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            malformed(findings, "missing `: <reason>`");
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            malformed(findings, "empty reason");
            continue;
        }
        allows.push(ParsedAllow {
            rule,
            reason: reason.to_string(),
            line: comment.line,
        });
    }
    allows
}

/// The line an annotation covers: its own line if code shares it (a
/// trailing comment), otherwise the next line that carries any code —
/// so a stack of annotations above one statement all cover that
/// statement.
fn covered_line(allow_line: u32, token_lines: &BTreeSet<u32>) -> Option<u32> {
    if token_lines.contains(&allow_line) {
        return Some(allow_line);
    }
    token_lines.range(allow_line + 1..).next().copied()
}

fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Collects the names bound to a `HashMap`/`HashSet` in this file: struct
/// fields and bindings (`routes: HashMap<…>`), initialisations
/// (`routes = HashMap::new()`) and parameters (`routes: &mut HashMap<…>`).
fn unordered_container_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || (token.text != "HashMap" && token.text != "HashSet") {
            continue;
        }
        // Walk left over `&`, `mut` and lifetime quotes to the binding.
        let mut j = i;
        while j > 0 && (is_punct(tokens, j - 1, "&") || is_ident(tokens, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2
            && (is_punct(tokens, j - 1, ":") || is_punct(tokens, j - 1, "="))
            && tokens[j - 2].kind == TokenKind::Ident
            && tokens[j - 2].text != "self"
        {
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

/// Runs every token-level rule over one lexed file.
fn token_findings(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut found = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        found.push(Finding {
            file: path.to_string(),
            line,
            rule,
            message,
        });
    };

    // wall-clock, ambient-rng, thread-identity, unsafe-code, lossy-cast —
    // simple token-sequence matches.
    let codec_path = is_codec_path(path);
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        match token.text.as_str() {
            clock @ ("Instant" | "SystemTime")
                if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "now") =>
            {
                push(
                    token.line,
                    Rule::WallClock,
                    format!(
                        "wall-clock read `{clock}::now()`: real time differs on every run \
                         and must not influence verdicts, schedules or encoded bytes"
                    ),
                );
            }
            rng if AMBIENT_RNG_IDENTS.contains(&rng) => {
                push(
                    token.line,
                    Rule::AmbientRng,
                    format!(
                        "ambient randomness `{rng}`: every RNG must be constructed from an \
                         explicit seed so campaigns replay bit-identically"
                    ),
                );
            }
            "rand" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "random") => {
                push(
                    token.line,
                    Rule::AmbientRng,
                    "ambient randomness `rand::random`: derive values from an explicit seed"
                        .to_string(),
                );
            }
            "thread" if is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "current") => {
                push(
                    token.line,
                    Rule::ThreadIdentity,
                    "thread identity `thread::current()`: which worker runs a task is \
                     scheduling, never semantics"
                        .to_string(),
                );
            }
            "ThreadId" => {
                push(
                    token.line,
                    Rule::ThreadIdentity,
                    "thread identity `ThreadId`: worker identity must not influence semantics"
                        .to_string(),
                );
            }
            "unsafe" => {
                push(
                    token.line,
                    Rule::UnsafeCode,
                    "`unsafe` in first-party code: the workspace is `#![forbid(unsafe_code)]`"
                        .to_string(),
                );
            }
            "as" if codec_path => {
                if let Some(ty) = tokens.get(i + 1).filter(|t| {
                    t.kind == TokenKind::Ident && NARROW_INTS.contains(&t.text.as_str())
                }) {
                    push(
                        token.line,
                        Rule::LossyCast,
                        format!(
                            "potentially truncating cast `as {}` in a codec/ledger path: \
                             use `try_from`, or bound the value and annotate",
                            ty.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // unordered-iter: two passes — learn the map/set names, then flag
    // order-observing uses of them.
    let containers = unordered_container_names(tokens);
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || !containers.contains(&token.text) {
            continue;
        }
        let ordered_use = is_punct(tokens, i + 1, ".")
            && tokens.get(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && UNORDERED_METHODS.contains(&t.text.as_str())
            })
            && is_punct(tokens, i + 3, "(");
        // `for x in [&][mut] [self.]name` — walk left over the place
        // expression to see whether the container itself is the iterated
        // operand.
        let mut j = i;
        if j >= 2 && is_punct(tokens, j - 1, ".") && is_ident(tokens, j - 2, "self") {
            j -= 2;
        }
        while j >= 1 && (is_punct(tokens, j - 1, "&") || is_ident(tokens, j - 1, "mut")) {
            j -= 1;
        }
        let for_loop = j >= 1 && is_ident(tokens, j - 1, "in");
        if ordered_use || for_loop {
            push(
                token.line,
                Rule::UnorderedIter,
                format!(
                    "iteration over unordered container `{}` (a HashMap/HashSet): order is \
                     unspecified and varies across runs — use a BTreeMap/BTreeSet or sort \
                     deterministically before observing order",
                    token.text
                ),
            );
        }
    }

    found
}

/// Lints one file's source: runs every token rule, resolves `ugc-lint:
/// allow` annotations (same line or the comment block directly above),
/// and reports malformed or unused annotations as findings.
///
/// `path` is the label used in findings — pass the repo-relative path.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> FileLint {
    let lexed = lex(source);
    let mut findings = Vec::new();
    let allows = parse_allows(path, &lexed.comments, &mut findings);
    let token_lines = lexed.token_lines();
    let raw = token_findings(path, &lexed);

    let mut used = vec![false; allows.len()];
    for finding in raw {
        let suppressed = allows.iter().enumerate().find(|(_, a)| {
            a.rule == finding.rule && covered_line(a.line, &token_lines) == Some(finding.line)
        });
        match suppressed {
            Some((idx, _)) => used[idx] = true,
            None => findings.push(finding),
        }
    }

    let mut out = FileLint::default();
    for (allow, used) in allows.into_iter().zip(used) {
        if used {
            out.allows.push(AllowRecord {
                file: path.to_string(),
                line: allow.line,
                rule: allow.rule,
                reason: allow.reason,
            });
        } else {
            findings.push(Finding {
                file: path.to_string(),
                line: allow.line,
                rule: Rule::Annotation,
                message: format!(
                    "unused annotation: allow({}) suppresses nothing on its line",
                    allow.rule
                ),
            });
        }
    }
    findings.sort();
    out.findings = findings;
    out.allows.sort();
    out
}

/// Counts `unsafe` tokens in `source` (comments and strings excluded) —
/// the vendor inventory.
#[must_use]
pub fn count_unsafe_tokens(source: &str) -> u64 {
    lex(source)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == "unsafe")
        .count() as u64
}

/// Whether a crate-root source carries `#![forbid(unsafe_code)]` as real
/// tokens (a mention in a comment does not count).
#[must_use]
pub fn has_forbid_unsafe(source: &str) -> bool {
    let lexed = lex(source);
    let t = &lexed.tokens;
    (0..t.len()).any(|i| {
        is_punct(t, i, "#")
            && is_punct(t, i + 1, "!")
            && is_punct(t, i + 2, "[")
            && is_ident(t, i + 3, "forbid")
            && is_punct(t, i + 4, "(")
            && is_ident(t, i + 5, "unsafe_code")
            && is_punct(t, i + 6, ")")
            && is_punct(t, i + 7, "]")
    })
}
