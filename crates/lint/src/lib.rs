//! `ugc-lint` — the workspace determinism auditor.
//!
//! The uncheatability guarantees rest on *replay*: the supervisor (and
//! every test from `scheduler_equivalence` to `scale_soak`) re-derives
//! exactly what a participant must have computed, so a campaign must be a
//! pure function of its seed — same verdicts, ledgers and fault log under
//! any thread interleaving, worker count, platform or process boundary.
//! The dynamic tests prove today's code replays; this crate keeps the
//! *next* PR from silently breaking it with a `HashMap` iteration, an
//! ambient RNG or a wall-clock read in a semantic path.
//!
//! The auditor walks every non-vendored `.rs` file in the workspace with
//! a comment/string/raw-string-aware [lexer] and applies the [rules]:
//!
//! | rule | guards against |
//! |------|----------------|
//! | `wall-clock` | `Instant::now` / `SystemTime::now` outside reporting |
//! | `unordered-iter` | iterating a `HashMap`/`HashSet` (keyed lookup is fine) |
//! | `ambient-rng` | RNGs not constructed from an explicit seed |
//! | `thread-identity` | `thread::current()` / `ThreadId` leaking into semantics |
//! | `lossy-cast` | truncating `as` casts in codec/ledger paths |
//! | `unsafe-code` / `forbid-unsafe` | `unsafe` in first-party code; crate roots missing `#![forbid(unsafe_code)]` |
//!
//! Findings are suppressible only by an annotation with a mandatory
//! reason — `ugc-lint: allow(<rule>): <reason>` in a plain `//` comment
//! on the offending line or directly above it — and every honoured
//! suppression is reported alongside the findings, so the escape hatches
//! stay as auditable as the violations. `unsafe` usage in `vendor/` is
//! inventoried (counted, never failed): vendored stand-ins are reviewed
//! wholesale, not line by line.
//!
//! # Example
//!
//! ```
//! use ugc_lint::{lint_source, Rule};
//!
//! let report = lint_source(
//!     "demo.rs",
//!     "fn ts() -> std::time::Instant { std::time::Instant::now() }",
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, Rule::WallClock);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{
    count_unsafe_tokens, has_forbid_unsafe, is_codec_path, lint_source, AllowRecord, FileLint,
    Finding, Rule,
};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The aggregated result of auditing a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every unsuppressed finding, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every honoured suppression with its reason, sorted likewise.
    pub allows: Vec<AllowRecord>,
    /// `unsafe` tokens counted across `vendor/` (inventory, not failure).
    pub vendor_unsafe: u64,
    /// First-party `.rs` files audited.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as line-oriented human-readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if !self.allows.is_empty() {
            let _ = writeln!(out, "suppressions ({}):", self.allows.len());
            for a in &self.allows {
                let _ = writeln!(
                    out,
                    "  {}:{}: allow({}): {}",
                    a.file, a.line, a.rule, a.reason
                );
            }
        }
        let _ = writeln!(
            out,
            "ugc-lint: {} finding(s) in {} file(s); {} suppression(s); vendor unsafe count: {}",
            self.findings.len(),
            self.files_scanned,
            self.allows.len(),
            self.vendor_unsafe,
        );
        out
    }

    /// Renders the report as a single JSON object (hand-rolled; the
    /// workspace has no serializer dependency, by design).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_string(f.rule.name()),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressions\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                if i == 0 { "" } else { "," },
                json_string(a.rule.name()),
                json_string(&a.file),
                a.line,
                json_string(&a.reason),
            );
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"vendor_unsafe\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}",
            self.vendor_unsafe,
            self.files_scanned,
            self.is_clean()
        );
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directory names never descended into (vendored code is inventoried
/// separately; build products and VCS metadata are not source).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git"];

/// Walks `dir` recursively, collecting `.rs` files and `Cargo.toml`
/// manifests in deterministic (sorted) order — an auditor of determinism
/// must itself be deterministic, and `read_dir` order is OS-dependent.
fn walk(dir: &Path, rs_files: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, rs_files, manifests)?;
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            rs_files.push(path);
        }
    }
    Ok(())
}

/// The path label used in findings: `path` relative to `root`, with
/// forward slashes.
fn label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Audits the crate roots of every first-party package: each existing
/// `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` must carry
/// `#![forbid(unsafe_code)]` as real tokens.
fn check_crate_roots(
    root: &Path,
    manifests: &[PathBuf],
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for manifest in manifests {
        let Some(pkg_dir) = manifest.parent() else {
            continue;
        };
        let mut roots: Vec<PathBuf> = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|r| pkg_dir.join(r))
            .filter(|p| p.is_file())
            .collect();
        let bin_dir = pkg_dir.join("src/bin");
        if bin_dir.is_dir() {
            let mut bins: Vec<PathBuf> = fs::read_dir(&bin_dir)?
                .map(|e| e.map(|e| e.path()))
                .collect::<io::Result<_>>()?;
            bins.sort();
            roots.extend(
                bins.into_iter()
                    .filter(|p| p.extension().is_some_and(|e| e == "rs")),
            );
        }
        for root_file in roots {
            let source = fs::read_to_string(&root_file)?;
            if !has_forbid_unsafe(&source) {
                findings.push(Finding {
                    file: label(root, &root_file),
                    line: 1,
                    rule: Rule::ForbidUnsafe,
                    message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Audits the workspace rooted at `root`: lints every non-vendored `.rs`
/// file, checks every first-party crate root for
/// `#![forbid(unsafe_code)]`, and inventories `unsafe` usage in
/// `vendor/`.
///
/// # Errors
///
/// I/O errors reading the tree (a non-UTF-8 source file is an error: the
/// workspace has none, and the auditor must not silently skip what it
/// cannot read).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, &mut rs_files, &mut manifests)?;

    let mut report = LintReport::default();
    for path in &rs_files {
        let source = fs::read_to_string(path)?;
        let file = lint_source(&label(root, path), &source);
        report.findings.extend(file.findings);
        report.allows.extend(file.allows);
        report.files_scanned += 1;
    }
    check_crate_roots(root, &manifests, &mut report.findings)?;

    let vendor = root.join("vendor");
    if vendor.is_dir() {
        let mut vendor_rs = Vec::new();
        let mut vendor_manifests = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(&vendor)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for entry in entries.into_iter().filter(|p| p.is_dir()) {
            walk(&entry, &mut vendor_rs, &mut vendor_manifests)?;
        }
        for path in vendor_rs {
            report.vendor_unsafe += count_unsafe_tokens(&fs::read_to_string(path)?);
        }
    }

    report.findings.sort();
    report.allows.sort();
    Ok(report)
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]` — how the CLI finds the audit root without
/// being told.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
