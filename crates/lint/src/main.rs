//! `ugc-lint` — command-line entry point for the workspace determinism
//! auditor. See the library crate for the rules and the annotation
//! grammar.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ugc-lint: statically audits the workspace for determinism hazards

USAGE:
    ugc-lint [--json] [--root <dir>]

OPTIONS:
    --json          emit the report as a single JSON object
    --root <dir>    audit <dir> instead of discovering the enclosing
                    workspace from the current directory
    -h, --help      print this help

Exits 0 when the tree is clean (every suppression carries a reason),
nonzero when any unsuppressed finding remains.";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ugc-lint: --root requires a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ugc-lint: unknown argument {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("ugc-lint: cannot determine current directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match ugc_lint::find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "ugc-lint: no workspace Cargo.toml found above {}; \
                         pass --root <dir>",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match ugc_lint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ugc-lint: audit failed: {err}");
            ExitCode::from(2)
        }
    }
}
