//! Fixture-based tests for every determinism rule: each rule has a
//! positive fixture (a seeded violation detected at the right file, line
//! and rule) and a negative fixture (an `allow` annotation suppresses it
//! and records its reason), plus the malformed/unused-annotation findings
//! and a self-test asserting the workspace itself is clean.
//!
//! Fixtures are inline raw strings: the lexer classifies them as literals,
//! so the violations seeded here are invisible when the auditor lints this
//! very file.

use ugc_lint::{lint_source, lint_workspace, Rule};

/// Asserts exactly one finding with the given rule and line.
fn assert_single(source: &str, rule: Rule, line: u32) {
    let report = lint_source("fixture.rs", source);
    assert_eq!(
        report.findings.len(),
        1,
        "expected one finding, got {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.file, "fixture.rs");
    assert_eq!((f.rule, f.line), (rule, line), "finding: {f:?}");
}

/// Asserts the source is clean and exactly one suppression was recorded,
/// with the given rule and reason.
fn assert_suppressed(source: &str, rule: Rule, reason: &str) {
    let report = lint_source("fixture.rs", source);
    assert_eq!(report.findings, vec![], "expected clean");
    assert_eq!(report.allows.len(), 1, "allows: {:?}", report.allows);
    assert_eq!(report.allows[0].rule, rule);
    assert_eq!(report.allows[0].reason, reason);
}

#[test]
fn wall_clock_detected() {
    let src = r#"
fn stamp() -> Instant {
    Instant::now()
}
"#;
    assert_single(src, Rule::WallClock, 3);
    let sys = "fn s() -> SystemTime { SystemTime::now() }";
    assert_single(sys, Rule::WallClock, 1);
}

#[test]
fn wall_clock_suppressed_with_reason() {
    let src = r#"
fn stamp() -> Instant {
    // ugc-lint: allow(wall-clock): reporting-only stopwatch
    Instant::now()
}
"#;
    assert_suppressed(src, Rule::WallClock, "reporting-only stopwatch");
}

#[test]
fn trailing_annotation_covers_its_own_line() {
    let src = "let t = Instant::now(); // ugc-lint: allow(wall-clock): trailing form";
    assert_suppressed(src, Rule::WallClock, "trailing form");
}

#[test]
fn unordered_iteration_detected() {
    let src = r#"
fn sweep(routes: &HashMap<u64, usize>) {
    for (id, idx) in routes.iter() {
        observe(id, idx);
    }
}
"#;
    assert_single(src, Rule::UnorderedIter, 3);
}

#[test]
fn unordered_for_loop_without_method_detected() {
    let src = r#"
fn sweep(seen: HashSet<u64>) {
    for id in &seen {
        observe(id);
    }
}
"#;
    assert_single(src, Rule::UnorderedIter, 3);
}

#[test]
fn keyed_lookup_is_fine() {
    let src = r#"
fn route(routes: &HashMap<u64, usize>, id: u64) -> Option<usize> {
    routes.get(&id).copied()
}
fn admit(routes: &mut HashMap<u64, usize>, id: u64) {
    routes.insert(id, 7);
    routes.remove(&id);
    let _ = routes.contains_key(&id);
    let _ = routes.len();
}
"#;
    let report = lint_source("fixture.rs", src);
    assert_eq!(report.findings, vec![], "keyed ops must not be flagged");
}

#[test]
fn btreemap_iteration_is_fine() {
    let src = r#"
fn sweep(routes: &BTreeMap<u64, usize>) {
    for (id, idx) in routes.iter() {
        observe(id, idx);
    }
}
"#;
    let report = lint_source("fixture.rs", src);
    assert_eq!(report.findings, vec![], "ordered maps must not be flagged");
}

#[test]
fn unordered_iteration_suppressed_with_reason() {
    let src = r#"
fn sweep(routes: &HashMap<u64, usize>) {
    // ugc-lint: allow(unordered-iter): results are re-sorted before use
    for id in routes.keys() {
        observe(id);
    }
}
"#;
    assert_suppressed(src, Rule::UnorderedIter, "results are re-sorted before use");
}

#[test]
fn ambient_rng_detected() {
    assert_single("let mut rng = thread_rng();", Rule::AmbientRng, 1);
    assert_single("let mut rng = OsRng;", Rule::AmbientRng, 1);
    assert_single("let mut rng = StdRng::from_entropy();", Rule::AmbientRng, 1);
    assert_single("let x: u64 = rand::random();", Rule::AmbientRng, 1);
}

#[test]
fn seeded_rng_is_fine() {
    let src = "let mut rng = StdRng::seed_from_u64(42);";
    assert_eq!(lint_source("fixture.rs", src).findings, vec![]);
}

#[test]
fn ambient_rng_suppressed_with_reason() {
    let src = r#"
// ugc-lint: allow(ambient-rng): one-off port selection, never replayed
let mut rng = thread_rng();
"#;
    assert_suppressed(
        src,
        Rule::AmbientRng,
        "one-off port selection, never replayed",
    );
}

#[test]
fn thread_identity_detected() {
    assert_single(
        "let me = std::thread::current().id();",
        Rule::ThreadIdentity,
        1,
    );
    assert_single("fn key(id: ThreadId) {}", Rule::ThreadIdentity, 1);
}

#[test]
fn thread_identity_suppressed_with_reason() {
    let src = r#"
// ugc-lint: allow(thread-identity): names the panic in a log line only
let name = std::thread::current();
"#;
    assert_suppressed(
        src,
        Rule::ThreadIdentity,
        "names the panic in a log line only",
    );
}

#[test]
fn lossy_cast_detected_only_in_codec_paths() {
    let src = "let n = declared as usize;";
    // In a codec path the truncating cast is a finding…
    let report = lint_source("src/codec.rs", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, Rule::LossyCast);
    // …and widening casts are not.
    let widen = "let n = declared as u64;";
    assert_eq!(lint_source("src/codec.rs", widen).findings, vec![]);
    // Outside codec/ledger paths the rule does not apply.
    assert_eq!(lint_source("src/engine.rs", src).findings, vec![]);
}

#[test]
fn lossy_cast_suppressed_with_reason() {
    // assert_suppressed lints "fixture.rs", which is not a codec path —
    // this fixture needs a codec-named label, so assert inline.
    let src = r#"
// ugc-lint: allow(lossy-cast): bounded above by MAX_LEN, cannot truncate
let n = declared as usize;
"#;
    let report = lint_source("src/wire.rs", src);
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::LossyCast);
    assert_eq!(
        report.allows[0].reason,
        "bounded above by MAX_LEN, cannot truncate"
    );
}

#[test]
fn journal_files_are_codec_paths_for_lossy_casts() {
    // The write-ahead journal is a wire format: a truncating cast while
    // decoding a record is exactly the bug the lossy-cast rule exists
    // for, so journal-named files must be inside the rule's scope.
    let src = "let keep = declared_records as u32;";
    let report = lint_source("src/journal.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, Rule::LossyCast);
    // A reasoned annotation suppresses it, recording the justification.
    let suppressed = r#"
// ugc-lint: allow(lossy-cast): record count is bounded by MAX_RECORD_LEN framing
let keep = declared_records as u32;
"#;
    let report = lint_source("crates/journal/src/wire.rs", suppressed);
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::LossyCast);
    // Widening casts in journal paths stay clean, annotation-free.
    let widen = "let total = kept as u64;";
    assert_eq!(lint_source("src/journal.rs", widen).findings, vec![]);
}

#[test]
fn lane_kernel_files_are_codec_paths_for_lossy_casts() {
    // The multi-lane digest kernels (PR 10) feed Merkle commitments and
    // campaign digests: a truncating cast while packing message words
    // or padding lengths corrupts replay identity exactly like a wire
    // codec would, so lanes-named files are inside the rule's scope.
    let src = "let word = lane_word as u32;";
    let report = lint_source("crates/hash/src/lanes.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, Rule::LossyCast);
    // A reasoned annotation suppresses it, recording the justification.
    let suppressed = r#"
// ugc-lint: allow(lossy-cast): block index is bounded by padded_blocks
let word = lane_word as u32;
"#;
    let report = lint_source("crates/hash/src/lanes.rs", suppressed);
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::LossyCast);
    // Widening casts in lane kernels stay clean, annotation-free.
    let widen = "let bits = 8 * total as u64;";
    assert_eq!(
        lint_source("crates/hash/src/lanes.rs", widen).findings,
        vec![]
    );
}

#[test]
fn tcp_files_are_codec_paths_for_lossy_casts() {
    // The TCP transport (PR 9) splices `[len][payload]` frames off a raw
    // byte stream: a truncating cast on a declared length is exactly the
    // codec bug class, so tcp-named files are inside the rule's scope.
    let src = "let len = header_word as usize;";
    let report = lint_source("crates/grid/src/tcp.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, Rule::LossyCast);
    // A reasoned annotation suppresses it, recording the justification.
    let suppressed = r#"
// ugc-lint: allow(lossy-cast): bounded above by MAX_FRAME_LEN framing
let len = header_word as usize;
"#;
    let report = lint_source("crates/grid/src/tcp.rs", suppressed);
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::LossyCast);
}

#[test]
fn bounded_waiting_is_not_a_wall_clock_read() {
    // The wire layer waits with timeouts (report patience, connect retry
    // pauses) without ever *reading* a clock into program state. Pin
    // that the idiom stays invisible to the wall-clock rule — it matches
    // clock reads (Instant::now / SystemTime::now), not bounded blocking.
    let src = r#"
fn pump(rx: &Receiver<Vec<u8>>) {
    let frame = rx.recv_timeout(Duration::from_secs(30));
    std::thread::sleep(Duration::from_millis(250));
}
"#;
    assert_eq!(
        lint_source("crates/grid/src/tcp.rs", src).findings,
        vec![],
        "bounded waits must not register as wall-clock reads"
    );
}

#[test]
fn seeded_steal_order_is_not_ambient_rng() {
    // The work-stealing scheduler's victim order (PR 8) is a SplitMix64
    // walk from an explicit seed — pure arithmetic, no entropy source.
    // Pin that the idiom stays invisible to the ambient-rng rule: if a
    // refactor ever reaches for `thread_rng()` instead, the rule fires.
    let src = r#"
fn next_steal(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}
fn steal_rng(steal_seed: u64, worker: usize) -> u64 {
    steal_seed ^ (worker as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
"#;
    let report = lint_source("crates/grid/src/runtime/scheduler.rs", src);
    assert_eq!(
        report.findings,
        vec![],
        "a seeded steal-order generator is not ambient RNG"
    );
}

#[test]
fn scheduler_files_are_outside_the_lossy_cast_scope() {
    // The scheduler's `% others as u64 → usize` narrowing never touches
    // wire bytes or replay digests, so scheduler files carry no
    // annotation — and must not need one. The identical cast inside a
    // codec path is still a finding.
    let src = "let start = (next_steal(rng) % others as u64) as usize;";
    assert_eq!(
        lint_source("crates/grid/src/runtime/scheduler.rs", src).findings,
        vec![],
        "scheduling-only casts need no suppression"
    );
    let report = lint_source("crates/grid/src/message.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, Rule::LossyCast);
}

#[test]
fn message_encoded_len_casts_stay_guarded() {
    // The zero-alloc codec path (PR 8) sizes buffers from encoded_len
    // and still narrows guarded lengths; pin the annotated idiom the
    // message module relies on.
    let suppressed = r#"
fn wire_len(payload: &[u8]) -> usize {
    // ugc-lint: allow(lossy-cast): bounded above by 1<<20 on the line before, cannot truncate
    let n = declared as usize;
    8 + payload.len() + n
}
"#;
    let report = lint_source("crates/grid/src/message.rs", suppressed);
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::LossyCast);
}

#[test]
fn unsafe_code_detected() {
    let src = r#"
fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_single(src, Rule::UnsafeCode, 3);
}

#[test]
fn malformed_annotation_is_a_finding() {
    // Missing reason.
    let src = "// ugc-lint: allow(wall-clock)\nlet t = Instant::now();";
    let report = lint_source("fixture.rs", src);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::Annotation && f.message.contains("missing `: <reason>`")),
        "findings: {:?}",
        report.findings
    );
    // Unknown rule.
    let src = "// ugc-lint: allow(no-such-rule): whatever\nlet x = 1;";
    let report = lint_source("fixture.rs", src);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::Annotation && f.message.contains("unknown rule")));
    // Empty reason.
    let src = "// ugc-lint: allow(wall-clock):\nlet t = Instant::now();";
    let report = lint_source("fixture.rs", src);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::Annotation && f.message.contains("empty reason")));
}

#[test]
fn unused_annotation_is_a_finding() {
    let src = "// ugc-lint: allow(wall-clock): nothing here needs it\nlet x = 1;";
    let report = lint_source("fixture.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, Rule::Annotation);
    assert!(report.findings[0].message.contains("unused annotation"));
    assert_eq!(
        report.allows,
        vec![],
        "an unused allow is not a suppression"
    );
}

#[test]
fn annotation_only_covers_matching_rule() {
    // A wall-clock allow must not excuse an ambient-rng violation on the
    // same line.
    let src = "// ugc-lint: allow(wall-clock): wrong rule\nlet r = thread_rng();";
    let report = lint_source("fixture.rs", src);
    let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&Rule::AmbientRng), "{:?}", report.findings);
    assert!(rules.contains(&Rule::Annotation), "{:?}", report.findings);
}

#[test]
fn violations_inside_strings_and_comments_are_invisible() {
    let src = r##"
let msg = "Instant::now() and thread_rng() in a string";
let raw = r#"unsafe { HashMap::iter() }"#;
// Instant::now() in a comment is documentation, not code.
"##;
    assert_eq!(lint_source("fixture.rs", src).findings, vec![]);
}

#[test]
fn workspace_is_clean() {
    // The standing self-test: the repo this crate lives in must audit
    // clean, with every suppression carrying a reason.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let report = lint_workspace(std::path::Path::new(root)).expect("workspace walk");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed findings:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "walker saw the whole workspace");
    for allow in &report.allows {
        assert!(
            !allow.reason.is_empty(),
            "suppression without a reason: {allow:?}"
        );
    }
    // Vendored stand-ins are ours and contain no unsafe today; if that
    // changes, this number is the inventory that must be bumped
    // consciously.
    assert_eq!(report.vendor_unsafe, 0);
}

#[test]
fn json_report_escapes_and_round_trips_structure() {
    let report = lint_source("fixture.rs", "let t = Instant::now();");
    let workspace = ugc_lint::LintReport {
        findings: report.findings,
        allows: report.allows,
        vendor_unsafe: 3,
        files_scanned: 1,
    };
    let json = workspace.render_json();
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"vendor_unsafe\": 3"));
    assert!(json.contains("\"clean\": false"));
    // The message contains backticks and a quote-free path; nothing in the
    // output may be an unescaped control character.
    assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
}
