//! The storage-usage improvement of Section 3.3 of the paper.
//!
//! Instead of holding the whole `O(|D|)` tree, the participant stores only
//! the top `H − ℓ` levels. Proving a sample then requires rebuilding the
//! height-`ℓ` subtree containing the sampled leaf — recomputing `f` for its
//! `2^ℓ` inputs — which is the time/storage trade-off the paper quantifies
//! as `rco = 2m/S`.

use crate::{padded_leaf_count, MerkleError, MerkleProof, MerkleTree};
use ugc_hash::{HashFunction, Sha256};

/// Cost of one on-demand subtree rebuild during [`PartialMerkleTree::prove_with`].
///
/// In the paper's accounting, the dominant term is `leaves_recomputed`
/// evaluations of `f` (up to `2^ℓ` per sample; fewer only at the padded
/// tail of the domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildStats {
    /// Calls made to the leaf provider (i.e., recomputations of `f`).
    pub leaves_recomputed: u64,
    /// Hash invocations spent rebuilding the subtree.
    pub hash_ops: u64,
}

impl RebuildStats {
    /// Accumulates another rebuild's costs into this one.
    pub fn absorb(&mut self, other: RebuildStats) {
        self.leaves_recomputed += other.leaves_recomputed;
        self.hash_ops += other.hash_ops;
    }
}

/// A Merkle tree stored only down to level `H − ℓ` (root = level 0).
///
/// Equivalent to [`MerkleTree`] for commitment and proofs — same root, same
/// proof bytes — but using `O(|D|/2^ℓ)` storage and paying `O(2^ℓ)`
/// recomputation per proof (Fig. 3 of the paper).
///
/// # Examples
///
/// ```
/// use ugc_merkle::{MerkleTree, PartialMerkleTree};
/// use ugc_hash::Sha256;
///
/// let f = |x: u64| (x * x).to_le_bytes().to_vec();
/// let full: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(64, 8, f)?;
/// let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(64, 8, 3, f)?;
/// assert_eq!(partial.root(), full.root());
///
/// let (proof, stats) = partial.prove_with(17, f)?;
/// assert_eq!(stats.leaves_recomputed, 8); // 2^ℓ f-evaluations
/// assert!(proof.verify(&full.root(), &f(17)));
/// # Ok::<(), ugc_merkle::MerkleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PartialMerkleTree<H: HashFunction = Sha256> {
    /// Heap-ordered digests for depths `0 ..= H−ℓ`; index 0 unused.
    /// The deepest stored level holds the `2^(H−ℓ)` subtree roots.
    stored: Vec<H::Digest>,
    leaf_count: u64,
    height: u32,
    subtree_height: u32,
    leaf_width: usize,
    build_stats: RebuildStats,
}

impl<H: HashFunction> PartialMerkleTree<H> {
    /// Builds the partial tree over `n` leaves of `leaf_width` bytes,
    /// storing levels `0 ..= H − subtree_height`.
    ///
    /// The `provider` computes `f(x_i)` for `i ∈ [0, n)`; it is called once
    /// per real leaf during the build (exactly as the participant would
    /// evaluate its task), after which leaf results are *discarded* — that
    /// is the point of the scheme.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::EmptyTree`] / [`MerkleError::ZeroLeafWidth`] on a
    ///   degenerate domain.
    /// * [`MerkleError::SubtreeHeightOutOfRange`] unless
    ///   `1 ≤ subtree_height ≤ H`.
    /// * [`MerkleError::MixedLeafWidth`] if the provider returns a
    ///   wrong-width leaf.
    pub fn build<F>(
        n: u64,
        leaf_width: usize,
        subtree_height: u32,
        mut provider: F,
    ) -> Result<Self, MerkleError>
    where
        F: FnMut(u64) -> Vec<u8>,
    {
        if n == 0 {
            return Err(MerkleError::EmptyTree);
        }
        if leaf_width == 0 {
            return Err(MerkleError::ZeroLeafWidth);
        }
        let padded = padded_leaf_count(n);
        let height = padded.trailing_zeros();
        if subtree_height == 0 || subtree_height > height {
            return Err(MerkleError::SubtreeHeightOutOfRange {
                subtree_height,
                tree_height: height,
            });
        }
        let stored_depth = height - subtree_height; // D = H − ℓ
        let num_subtrees = 1u64 << stored_depth;
        let subtree_leaves = 1u64 << subtree_height;

        let mut stored: Vec<H::Digest> = vec![H::digest(&[]); (2 * num_subtrees) as usize];
        let mut build_stats = RebuildStats::default();
        let mut scratch: Vec<Vec<u8>> = Vec::with_capacity(subtree_leaves as usize);
        for t in 0..num_subtrees {
            scratch.clear();
            let base = t * subtree_leaves;
            for j in 0..subtree_leaves {
                let global = base + j;
                if global < n {
                    let leaf = provider(global);
                    if leaf.len() != leaf_width {
                        return Err(MerkleError::MixedLeafWidth {
                            expected: leaf_width,
                            found: leaf.len(),
                            index: global,
                        });
                    }
                    build_stats.leaves_recomputed += 1;
                    scratch.push(leaf);
                } else {
                    scratch.push(vec![0u8; leaf_width]);
                }
            }
            let subtree: MerkleTree<H> = MerkleTree::build(&scratch)?;
            build_stats.hash_ops += subtree.hash_ops();
            stored[(num_subtrees + t) as usize] = subtree.root();
        }
        for i in (1..num_subtrees as usize).rev() {
            stored[i] = H::digest_pair(stored[2 * i].as_ref(), stored[2 * i + 1].as_ref());
            build_stats.hash_ops += 1;
        }
        Ok(PartialMerkleTree {
            stored,
            leaf_count: n,
            height,
            subtree_height,
            leaf_width,
            build_stats,
        })
    }

    /// The committed root `Φ(R)` — identical to the full tree's.
    #[must_use]
    pub fn root(&self) -> H::Digest {
        self.stored[1]
    }

    /// Number of real leaves `n = |D|`.
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Tree height `H`.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The unsaved-subtree height `ℓ`.
    #[must_use]
    pub fn subtree_height(&self) -> u32 {
        self.subtree_height
    }

    /// Number of digests held in memory (`2^(H−ℓ+1) − 1`, counting the
    /// root; the paper rounds this to `S = 2^(H−ℓ+1)`).
    #[must_use]
    pub fn stored_node_count(&self) -> u64 {
        self.stored.len() as u64 - 1
    }

    /// The paper's storage figure `S = 2^(H−ℓ+1)`, in tree nodes.
    #[must_use]
    pub fn paper_storage_units(&self) -> u64 {
        1u64 << (self.height - self.subtree_height + 1)
    }

    /// Bytes of digest storage actually used.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.stored_node_count() * H::DIGEST_LEN as u64
    }

    /// Costs incurred while building (each real leaf computed once).
    #[must_use]
    pub fn build_stats(&self) -> RebuildStats {
        self.build_stats
    }

    /// Proves leaf `index`, rebuilding the height-`ℓ` subtree that contains
    /// it (Fig. 3(b) of the paper: the shaded, unsaved area).
    ///
    /// `provider` must recompute the same `f(x_i)` values committed at build
    /// time. Returns the proof — byte-identical to the full tree's — and
    /// the rebuild cost.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::IndexOutOfRange`] if `index ≥ leaf_count`.
    /// * [`MerkleError::MixedLeafWidth`] if the provider returns a
    ///   wrong-width leaf.
    /// * [`MerkleError::ProviderMismatch`] if the rebuilt subtree root does
    ///   not match the stored digest (the provider is inconsistent with the
    ///   commitment).
    pub fn prove_with<F>(
        &self,
        index: u64,
        mut provider: F,
    ) -> Result<(MerkleProof<H>, RebuildStats), MerkleError>
    where
        F: FnMut(u64) -> Vec<u8>,
    {
        if index >= self.leaf_count {
            return Err(MerkleError::IndexOutOfRange {
                index,
                leaf_count: self.leaf_count,
            });
        }
        let subtree_leaves = 1u64 << self.subtree_height;
        let t = index >> self.subtree_height;
        let base = t << self.subtree_height;
        let mut stats = RebuildStats::default();
        let mut scratch: Vec<Vec<u8>> = Vec::with_capacity(subtree_leaves as usize);
        for j in 0..subtree_leaves {
            let global = base + j;
            if global < self.leaf_count {
                let leaf = provider(global);
                if leaf.len() != self.leaf_width {
                    return Err(MerkleError::MixedLeafWidth {
                        expected: self.leaf_width,
                        found: leaf.len(),
                        index: global,
                    });
                }
                stats.leaves_recomputed += 1;
                scratch.push(leaf);
            } else {
                scratch.push(vec![0u8; self.leaf_width]);
            }
        }
        let subtree: MerkleTree<H> = MerkleTree::build(&scratch)?;
        stats.hash_ops += subtree.hash_ops();
        let num_subtrees = 1u64 << (self.height - self.subtree_height);
        if subtree.root() != self.stored[(num_subtrees + t) as usize] {
            return Err(MerkleError::ProviderMismatch { subtree_index: t });
        }
        // Siblings inside the rebuilt subtree…
        let local = subtree.prove(index - base)?;
        let mut digest_siblings = local.digest_siblings().to_vec();
        // …then siblings from the stored upper levels.
        let mut node = num_subtrees + t;
        while node > 1 {
            digest_siblings.push(self.stored[(node ^ 1) as usize]);
            node >>= 1;
        }
        let proof = MerkleProof::from_parts(index, local.leaf_sibling().to_vec(), digest_siblings);
        Ok((proof, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_hash::{Md5, Sha256};

    fn f(x: u64) -> Vec<u8> {
        x.wrapping_mul(0x0123_4567_89ab_cdef).to_le_bytes().to_vec()
    }

    #[test]
    fn root_matches_full_tree_all_levels() {
        let n = 64;
        let full: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(n, 8, f).unwrap();
        for ell in 1..=6u32 {
            let partial: PartialMerkleTree<Sha256> =
                PartialMerkleTree::build(n, 8, ell, f).unwrap();
            assert_eq!(partial.root(), full.root(), "ℓ={ell}");
        }
    }

    #[test]
    fn root_matches_full_tree_unpadded_sizes() {
        for n in [3u64, 5, 17, 33, 100] {
            let full: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(n, 8, f).unwrap();
            let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(n, 8, 2, f).unwrap();
            assert_eq!(partial.root(), full.root(), "n={n}");
        }
    }

    #[test]
    fn proofs_identical_to_full_tree() {
        let n = 32;
        let full: MerkleTree<Md5> = MerkleTree::from_leaf_fn(n, 8, f).unwrap();
        let partial: PartialMerkleTree<Md5> = PartialMerkleTree::build(n, 8, 3, f).unwrap();
        for i in 0..n {
            let full_proof = full.prove(i).unwrap();
            let (partial_proof, _) = partial.prove_with(i, f).unwrap();
            assert_eq!(partial_proof, full_proof, "leaf {i}");
            assert!(partial_proof.verify(&full.root(), &f(i)));
        }
    }

    #[test]
    fn rebuild_cost_is_two_to_ell() {
        let n = 256;
        for ell in 1..=8u32 {
            let partial: PartialMerkleTree<Sha256> =
                PartialMerkleTree::build(n, 8, ell, f).unwrap();
            let (_, stats) = partial.prove_with(0, f).unwrap();
            assert_eq!(stats.leaves_recomputed, 1 << ell, "ℓ={ell}");
            assert_eq!(stats.hash_ops, (1 << ell) - 1, "ℓ={ell}");
        }
    }

    #[test]
    fn storage_shrinks_by_two_to_ell() {
        let n = 1 << 10;
        for ell in 1..=10u32 {
            let partial: PartialMerkleTree<Sha256> =
                PartialMerkleTree::build(n, 8, ell, f).unwrap();
            assert_eq!(partial.stored_node_count(), (1 << (10 - ell + 1)) - 1);
            assert_eq!(partial.paper_storage_units(), 1 << (10 - ell + 1));
        }
    }

    #[test]
    fn build_computes_each_leaf_once() {
        let n = 100;
        let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(n, 8, 3, f).unwrap();
        assert_eq!(partial.build_stats().leaves_recomputed, n);
    }

    #[test]
    fn subtree_height_bounds() {
        assert!(matches!(
            PartialMerkleTree::<Sha256>::build(16, 8, 0, f).unwrap_err(),
            MerkleError::SubtreeHeightOutOfRange { .. }
        ));
        assert!(matches!(
            PartialMerkleTree::<Sha256>::build(16, 8, 5, f).unwrap_err(),
            MerkleError::SubtreeHeightOutOfRange { .. }
        ));
        // ℓ = H stores the root only and rebuilds everything.
        let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(16, 8, 4, f).unwrap();
        let full: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(16, 8, f).unwrap();
        assert_eq!(partial.root(), full.root());
        let (_, stats) = partial.prove_with(7, f).unwrap();
        assert_eq!(stats.leaves_recomputed, 16);
    }

    #[test]
    fn inconsistent_provider_detected() {
        let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(32, 8, 3, f).unwrap();
        let bad = |x: u64| if x == 9 { vec![0xFFu8; 8] } else { f(x) };
        // Leaf 9 lives in subtree 1 (indices 8..16).
        assert_eq!(
            partial.prove_with(10, bad).unwrap_err(),
            MerkleError::ProviderMismatch { subtree_index: 1 }
        );
        // Other subtrees are unaffected.
        assert!(partial.prove_with(20, bad).is_ok());
    }

    #[test]
    fn prove_out_of_range() {
        let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(10, 8, 2, f).unwrap();
        assert!(matches!(
            partial.prove_with(10, f).unwrap_err(),
            MerkleError::IndexOutOfRange { .. }
        ));
    }

    #[test]
    fn tail_subtree_recomputes_only_real_leaves() {
        // n = 10 pads to 16; with ℓ = 2 the subtree over leaves 8..12
        // holds 2 real + 2 padding leaves … wait: 10 real leaves, so
        // subtree 2 (leaves 8..12) has real leaves 8 and 9 only.
        let partial: PartialMerkleTree<Sha256> = PartialMerkleTree::build(10, 8, 2, f).unwrap();
        let (_, stats) = partial.prove_with(9, f).unwrap();
        assert_eq!(stats.leaves_recomputed, 2);
    }

    #[test]
    fn rco_formula_matches_measured() {
        // Section 3.3: rco = m · 2^ℓ / 2^H. Measure it.
        let n: u64 = 1 << 12;
        let h = 12u32;
        let m = 16u64;
        for ell in [2u32, 4, 6] {
            let partial: PartialMerkleTree<Sha256> =
                PartialMerkleTree::build(n, 8, ell, f).unwrap();
            let mut total = RebuildStats::default();
            for s in 0..m {
                let idx = (s * 997) % n; // arbitrary in-range samples
                let (_, stats) = partial.prove_with(idx, f).unwrap();
                total.absorb(stats);
            }
            let measured_rco = total.leaves_recomputed as f64 / n as f64;
            let formula = (m as f64) * f64::from(1u32 << ell) / f64::from(1u32 << h);
            assert!(
                (measured_rco - formula).abs() < 1e-12,
                "ℓ={ell}: measured {measured_rco}, formula {formula}"
            );
        }
    }
}
