//! Tree persistence: serialise a committed tree to bytes and back.
//!
//! The paper's participants are home PCs donating idle cycles; between
//! sending the commitment and receiving the challenge they may reboot.
//! A participant that loses its tree must recompute the whole task to
//! answer the challenge — so the tree needs to survive on disk. The
//! format is self-describing and versioned; loading validates structure
//! and (optionally) the full hash integrity.

use crate::MerkleTree;
use ugc_hash::HashFunction;

/// Format magic: `UGCM` + version 1.
const MAGIC: [u8; 5] = *b"UGCM\x01";

/// Errors when loading a persisted tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// The byte length does not match the header's claimed geometry.
    LengthMismatch {
        /// Bytes expected from the header fields.
        expected: u64,
        /// Bytes actually provided.
        found: u64,
    },
    /// The stored digest length does not match hash function `H`.
    DigestLenMismatch {
        /// Digest length recorded in the header.
        stored: u32,
        /// Digest length of the hash the caller requested.
        expected: u32,
    },
    /// A recomputed node digest disagreed with the stored one
    /// (corrupted file), reported by [`MerkleTree::verify_integrity`].
    Corrupt {
        /// Heap index of the first corrupt node.
        node: u64,
    },
    /// The header geometry is internally inconsistent.
    BadGeometry,
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            PersistError::BadHeader => write!(f, "missing or unsupported tree header"),
            PersistError::LengthMismatch { expected, found } => {
                write!(f, "tree blob is {found} bytes, header implies {expected}")
            }
            PersistError::DigestLenMismatch { stored, expected } => {
                write!(
                    f,
                    "tree stored {stored}-byte digests, hash needs {expected}"
                )
            }
            PersistError::Corrupt { node } => write!(f, "node {node} fails integrity check"),
            PersistError::BadGeometry => write!(f, "inconsistent tree geometry in header"),
        }
    }
}

impl std::error::Error for PersistError {}

impl<H: HashFunction> MerkleTree<H> {
    /// Serialises the tree (leaves + digests) to a self-describing blob.
    ///
    /// Layout: magic ‖ leaf_count u64 ‖ leaf_width u32 ‖ digest_len u32 ‖
    /// leaf bytes (padded count × width) ‖ node digests (padded count × len,
    /// heap slots 0..padded, slot 0 unused but stored for alignment).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let padded = self.padded_leaf_count();
        let width = self.leaf_width();
        let digest_len = H::DIGEST_LEN;
        let mut out = Vec::with_capacity(
            MAGIC.len() + 16 + (padded as usize) * width + (padded as usize) * digest_len,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.leaf_count().to_le_bytes());
        out.extend_from_slice(&(width as u32).to_le_bytes());
        out.extend_from_slice(&(digest_len as u32).to_le_bytes());
        for i in 0..padded {
            out.extend_from_slice(self.padded_leaf_slice(i));
        }
        for i in 0..padded {
            out.extend_from_slice(self.node_digest(i.max(1)).as_ref());
        }
        out
    }

    /// Reloads a tree serialised by [`to_bytes`](Self::to_bytes).
    ///
    /// Structural checks only (`O(1)` beyond the copy); call
    /// [`verify_integrity`](Self::verify_integrity) to re-hash everything.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] structural variant.
    pub fn from_bytes(blob: &[u8]) -> Result<Self, PersistError> {
        if blob.len() < MAGIC.len() + 16 || blob[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadHeader);
        }
        let mut cursor = MAGIC.len();
        let leaf_count = u64::from_le_bytes(blob[cursor..cursor + 8].try_into().unwrap());
        cursor += 8;
        let width = u32::from_le_bytes(blob[cursor..cursor + 4].try_into().unwrap()) as usize;
        cursor += 4;
        let digest_len = u32::from_le_bytes(blob[cursor..cursor + 4].try_into().unwrap());
        cursor += 4;
        if digest_len as usize != H::DIGEST_LEN {
            return Err(PersistError::DigestLenMismatch {
                stored: digest_len,
                expected: H::DIGEST_LEN as u32,
            });
        }
        if leaf_count == 0 || width == 0 || leaf_count > (1 << 40) {
            return Err(PersistError::BadGeometry);
        }
        let padded = crate::padded_leaf_count(leaf_count);
        let leaves_len = (padded as usize) * width;
        let nodes_len = (padded as usize) * H::DIGEST_LEN;
        let expected = (cursor + leaves_len + nodes_len) as u64;
        if blob.len() as u64 != expected {
            return Err(PersistError::LengthMismatch {
                expected,
                found: blob.len() as u64,
            });
        }
        let leaves = blob[cursor..cursor + leaves_len].to_vec();
        cursor += leaves_len;
        let mut nodes = Vec::with_capacity(padded as usize);
        for i in 0..padded as usize {
            let start = cursor + i * H::DIGEST_LEN;
            let digest = H::digest_from_bytes(&blob[start..start + H::DIGEST_LEN])
                .expect("slice length checked");
            nodes.push(digest);
        }
        Ok(MerkleTree::from_raw_parts(leaves, nodes, leaf_count, width))
    }

    /// Recomputes every internal digest and compares with the stored ones.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] naming the first disagreeing heap node.
    pub fn verify_integrity(&self) -> Result<(), PersistError> {
        let padded = self.padded_leaf_count();
        for t in 0..padded / 2 {
            let expected = H::digest_pair(
                self.padded_leaf_slice(2 * t),
                self.padded_leaf_slice(2 * t + 1),
            );
            if expected != self.node_digest(padded / 2 + t) {
                return Err(PersistError::Corrupt {
                    node: padded / 2 + t,
                });
            }
        }
        for i in (1..padded / 2).rev() {
            let expected = H::digest_pair(
                self.node_digest(2 * i).as_ref(),
                self.node_digest(2 * i + 1).as_ref(),
            );
            if expected != self.node_digest(i) {
                return Err(PersistError::Corrupt { node: i });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_hash::{Md5, Sha256};

    fn tree(n: u64) -> MerkleTree<Sha256> {
        MerkleTree::from_leaf_fn(n, 8, |x| (x * 3).to_le_bytes().to_vec()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for n in [1u64, 2, 5, 16, 100] {
            let original = tree(n);
            let blob = original.to_bytes();
            let loaded: MerkleTree<Sha256> = MerkleTree::from_bytes(&blob).unwrap();
            assert_eq!(loaded.root(), original.root(), "n={n}");
            assert_eq!(loaded.leaf_count(), original.leaf_count());
            assert_eq!(loaded.leaf_width(), original.leaf_width());
            for i in 0..n {
                assert_eq!(loaded.leaf(i).unwrap(), original.leaf(i).unwrap());
                assert_eq!(loaded.prove(i).unwrap(), original.prove(i).unwrap());
            }
            loaded.verify_integrity().unwrap();
        }
    }

    #[test]
    fn proofs_from_reloaded_tree_verify_against_old_commitment() {
        // The restart scenario: commit, reboot, reload, answer.
        let original = tree(64);
        let commitment = original.root();
        let blob = original.to_bytes();
        drop(original);
        let reloaded: MerkleTree<Sha256> = MerkleTree::from_bytes(&blob).unwrap();
        let proof = reloaded.prove(17).unwrap();
        assert!(proof.verify(&commitment, &(17u64 * 3).to_le_bytes()));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = tree(4).to_bytes();
        blob[0] ^= 0xFF;
        assert_eq!(
            MerkleTree::<Sha256>::from_bytes(&blob).unwrap_err(),
            PersistError::BadHeader
        );
    }

    #[test]
    fn truncated_blob_rejected() {
        let blob = tree(4).to_bytes();
        let err = MerkleTree::<Sha256>::from_bytes(&blob[..blob.len() - 1]).unwrap_err();
        assert!(matches!(err, PersistError::LengthMismatch { .. }));
    }

    #[test]
    fn wrong_hash_function_rejected() {
        let blob = tree(4).to_bytes();
        let err = MerkleTree::<Md5>::from_bytes(&blob).unwrap_err();
        assert_eq!(
            err,
            PersistError::DigestLenMismatch {
                stored: 32,
                expected: 16
            }
        );
    }

    #[test]
    fn corrupted_leaf_detected_by_integrity_check() {
        let mut blob = tree(8).to_bytes();
        // Flip a byte inside the leaf region (after the 21-byte header).
        blob[30] ^= 1;
        let loaded: MerkleTree<Sha256> = MerkleTree::from_bytes(&blob).unwrap();
        assert!(matches!(
            loaded.verify_integrity(),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_digest_detected_by_integrity_check() {
        let t = tree(8);
        let mut blob = t.to_bytes();
        let last = blob.len() - 1;
        blob[last] ^= 1;
        let loaded: MerkleTree<Sha256> = MerkleTree::from_bytes(&blob).unwrap();
        assert!(matches!(
            loaded.verify_integrity(),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_blob_rejected() {
        assert_eq!(
            MerkleTree::<Sha256>::from_bytes(&[]).unwrap_err(),
            PersistError::BadHeader
        );
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            PersistError::Corrupt { node: 5 }.to_string(),
            "node 5 fails integrity check"
        );
        assert_eq!(
            PersistError::BadHeader.to_string(),
            "missing or unsupported tree header"
        );
    }
}
