//! Error type for Merkle-tree construction and proof generation.

use core::fmt;

/// Errors produced by Merkle-tree operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MerkleError {
    /// A tree was requested over zero leaves.
    EmptyTree,
    /// A leaf had a different width than the first leaf.
    MixedLeafWidth {
        /// Width of the first leaf, which fixes the tree's leaf width.
        expected: usize,
        /// Width of the offending leaf.
        found: usize,
        /// Index of the offending leaf.
        index: u64,
    },
    /// Leaves must carry at least one byte of computation result.
    ZeroLeafWidth,
    /// A leaf index was outside `[0, leaf_count)`.
    IndexOutOfRange {
        /// The requested index.
        index: u64,
        /// Number of (real) leaves in the tree.
        leaf_count: u64,
    },
    /// The requested stored-subtree height `ℓ` is outside `[1, H]`.
    SubtreeHeightOutOfRange {
        /// The requested subtree height.
        subtree_height: u32,
        /// The tree height `H`.
        tree_height: u32,
    },
    /// A rebuilt subtree root did not match the stored digest — the leaf
    /// provider returned different results than at commitment time.
    ProviderMismatch {
        /// Index of the subtree whose root mismatched.
        subtree_index: u64,
    },
}

impl fmt::Display for MerkleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MerkleError::EmptyTree => write!(f, "cannot build a Merkle tree over zero leaves"),
            MerkleError::MixedLeafWidth {
                expected,
                found,
                index,
            } => write!(
                f,
                "leaf {index} is {found} bytes but the tree's leaf width is {expected}"
            ),
            MerkleError::ZeroLeafWidth => write!(f, "leaf width must be at least one byte"),
            MerkleError::IndexOutOfRange { index, leaf_count } => {
                write!(f, "leaf index {index} out of range for {leaf_count} leaves")
            }
            MerkleError::SubtreeHeightOutOfRange {
                subtree_height,
                tree_height,
            } => write!(
                f,
                "subtree height {subtree_height} outside [1, {tree_height}]"
            ),
            MerkleError::ProviderMismatch { subtree_index } => write!(
                f,
                "rebuilt subtree {subtree_index} does not match the committed digest"
            ),
        }
    }
}

impl std::error::Error for MerkleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MerkleError::EmptyTree.to_string(),
            "cannot build a Merkle tree over zero leaves"
        );
        assert_eq!(
            MerkleError::MixedLeafWidth {
                expected: 8,
                found: 4,
                index: 3
            }
            .to_string(),
            "leaf 3 is 4 bytes but the tree's leaf width is 8"
        );
        assert_eq!(
            MerkleError::IndexOutOfRange {
                index: 9,
                leaf_count: 8
            }
            .to_string(),
            "leaf index 9 out of range for 8 leaves"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MerkleError>();
    }
}
