//! Merkle commitment trees for uncheatable grid computing.
//!
//! This crate implements the commitment structure at the centre of the
//! Commitment-Based Sampling (CBS) scheme of Du, Jia, Mangal and Murugesan
//! (*Uncheatable Grid Computing*, ICDCS 2004):
//!
//! * [`MerkleTree`] — the full tree of Section 3.1. Leaves hold the raw
//!   computation results `Φ(L_i) = f(x_i)`; every internal node holds
//!   `Φ(V) = hash(Φ(V_left) || Φ(V_right))` (Eq. 1). The root is the
//!   participant's commitment.
//! * [`MerkleProof`] — the per-sample *proof of honesty*: `f(x_i)` plus the
//!   `Φ` values of the siblings along the leaf-to-root path
//!   (`λ_1 … λ_H`). [`MerkleProof::verify`] is the supervisor's
//!   reconstruction `Λ(f(x), λ_1, …, λ_H) = Φ(R′)` compared against the
//!   commitment.
//! * [`StreamingBuilder`] — computes the root with an `O(log n)` frontier,
//!   so a participant never needs the whole tree in memory just to commit.
//! * [`Parallelism`] — the thread-count knob behind
//!   [`MerkleTree::build_parallel`] and
//!   [`StreamingBuilder::parallel_root`]: the padded leaf row splits into
//!   per-thread subtrees hashed independently, the top `log(threads)`
//!   levels fold serially, and the result is bit-identical to the serial
//!   build at any thread count.
//! * [`PartialMerkleTree`] — the storage-usage improvement of Section 3.3:
//!   store only the top `H − ℓ` levels and rebuild the height-`ℓ` subtree
//!   containing a sample on demand, trading `O(2^ℓ)` recomputation for a
//!   `2^ℓ`-fold storage reduction.
//!
//! # Tree shape
//!
//! The paper assumes a complete binary tree. This implementation pads the
//! leaf count to the next power of two (minimum 2) with all-zero leaves.
//! Padding leaves are never sampled by the CBS protocol — sample indices are
//! drawn from the real domain `[0, n)` — so padding affects only the root
//! value, not the security argument.
//!
//! # Examples
//!
//! The Fig. 1 walk-through of the paper: eight leaves, sample `x_3`
//! (0-indexed leaf 2), siblings `L4, A, D, F`:
//!
//! ```
//! use ugc_merkle::MerkleTree;
//! use ugc_hash::Sha256;
//!
//! let results: Vec<[u8; 8]> = (0u64..8).map(|x| (x * x).to_le_bytes()).collect();
//! let tree: MerkleTree<Sha256> = MerkleTree::build(&results)?;
//! let commitment = tree.root();
//!
//! let proof = tree.prove(2)?;
//! assert!(proof.verify(&commitment, &results[2]));
//! assert!(!proof.verify(&commitment, &0u64.to_le_bytes())); // wrong f(x)
//! # Ok::<(), ugc_merkle::MerkleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parallel;
mod partial;
mod persist;
mod proof;
mod streaming;
mod tree;

pub use error::MerkleError;
pub use parallel::Parallelism;
pub use partial::{PartialMerkleTree, RebuildStats};
pub use persist::PersistError;
pub use proof::MerkleProof;
pub use streaming::StreamingBuilder;
pub use tree::MerkleTree;
pub use ugc_hash::LaneWidth;

/// Rounds `n` up to the padded leaf count used by every tree in this crate:
/// the next power of two, and at least 2.
///
/// # Examples
///
/// ```
/// assert_eq!(ugc_merkle::padded_leaf_count(1), 2);
/// assert_eq!(ugc_merkle::padded_leaf_count(5), 8);
/// assert_eq!(ugc_merkle::padded_leaf_count(8), 8);
/// ```
#[must_use]
pub fn padded_leaf_count(n: u64) -> u64 {
    n.max(2).next_power_of_two()
}

/// Height `H = log₂(padded leaf count)` of the tree over `n` leaves.
///
/// A proof for any leaf carries exactly `H` sibling values (`λ_1 … λ_H` in
/// the paper): one raw leaf plus `H − 1` digests.
///
/// # Examples
///
/// ```
/// assert_eq!(ugc_merkle::tree_height(2), 1);
/// assert_eq!(ugc_merkle::tree_height(1024), 10);
/// assert_eq!(ugc_merkle::tree_height(1025), 11);
/// ```
#[must_use]
pub fn tree_height(n: u64) -> u32 {
    padded_leaf_count(n).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rounds_up() {
        assert_eq!(padded_leaf_count(0), 2);
        assert_eq!(padded_leaf_count(1), 2);
        assert_eq!(padded_leaf_count(2), 2);
        assert_eq!(padded_leaf_count(3), 4);
        assert_eq!(padded_leaf_count(1 << 20), 1 << 20);
        assert_eq!(padded_leaf_count((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn heights() {
        assert_eq!(tree_height(1), 1);
        assert_eq!(tree_height(8), 3);
        assert_eq!(tree_height(9), 4);
    }
}
