//! Root computation with an `O(log n)` frontier.
//!
//! A participant that only needs to *commit* (Step 1 of the CBS scheme)
//! never has to hold the whole tree: it can stream results through this
//! builder, keeping one pending node per level. Combined with the
//! partial-storage tree of Section 3.3 this is what makes tasks with
//! `|D| ≫ 2^30` feasible.

use crate::parallel::subtree_chunks;
use crate::{padded_leaf_count, MerkleError, Parallelism};
use ugc_hash::{HashFunction, Sha256};

/// Incremental Merkle-root builder with logarithmic memory.
///
/// Feed leaves in index order with [`push`](Self::push), then call
/// [`finalize`](Self::finalize). The resulting root is identical to
/// [`MerkleTree::build`](crate::MerkleTree::build) over the same leaves.
///
/// # Examples
///
/// ```
/// use ugc_merkle::{MerkleTree, StreamingBuilder};
/// use ugc_hash::Sha256;
///
/// let leaves: Vec<[u8; 8]> = (0u64..5).map(|x| x.to_le_bytes()).collect();
/// let mut builder: StreamingBuilder<Sha256> = StreamingBuilder::new();
/// for leaf in &leaves {
///     builder.push(leaf)?;
/// }
/// let root = builder.finalize()?;
/// let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves)?;
/// assert_eq!(root, tree.root());
/// # Ok::<(), ugc_merkle::MerkleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingBuilder<H: HashFunction = Sha256> {
    /// Completed subtree digests: `(height, digest)`, heights strictly
    /// decreasing from the bottom of the vec to the top.
    frontier: Vec<(u32, H::Digest)>,
    /// A leaf waiting for its right-hand neighbour.
    pending_leaf: Option<Vec<u8>>,
    leaf_width: Option<usize>,
    count: u64,
    hash_ops: u64,
}

impl<H: HashFunction> Default for StreamingBuilder<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: HashFunction> StreamingBuilder<H> {
    /// Creates an empty builder. The first pushed leaf fixes the leaf width.
    #[must_use]
    pub fn new() -> Self {
        StreamingBuilder {
            frontier: Vec::new(),
            pending_leaf: None,
            leaf_width: None,
            count: 0,
            hash_ops: 0,
        }
    }

    /// Number of leaves pushed so far.
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        self.count
    }

    /// Hash invocations performed so far.
    #[must_use]
    pub fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    /// Appends the next leaf (`f(x_i)` for the next `i`).
    ///
    /// # Errors
    ///
    /// * [`MerkleError::ZeroLeafWidth`] on an empty leaf.
    /// * [`MerkleError::MixedLeafWidth`] if the width differs from the
    ///   first leaf's.
    pub fn push(&mut self, leaf: &[u8]) -> Result<(), MerkleError> {
        if leaf.is_empty() {
            return Err(MerkleError::ZeroLeafWidth);
        }
        match self.leaf_width {
            None => self.leaf_width = Some(leaf.len()),
            Some(w) if w != leaf.len() => {
                return Err(MerkleError::MixedLeafWidth {
                    expected: w,
                    found: leaf.len(),
                    index: self.count,
                });
            }
            Some(_) => {}
        }
        self.count += 1;
        match self.pending_leaf.take() {
            None => {
                self.pending_leaf = Some(leaf.to_vec());
            }
            Some(left) => {
                let digest = H::digest_pair(&left, leaf);
                self.hash_ops += 1;
                self.merge_up(1, digest);
            }
        }
        Ok(())
    }

    /// Inserts a completed subtree digest, merging equal heights upward.
    fn merge_up(&mut self, mut height: u32, mut digest: H::Digest) {
        while let Some(&(top_height, top_digest)) = self.frontier.last() {
            if top_height != height {
                break;
            }
            self.frontier.pop();
            digest = H::digest_pair(top_digest.as_ref(), digest.as_ref());
            self.hash_ops += 1;
            height += 1;
        }
        self.frontier.push((height, digest));
    }

    /// Pads to the power-of-two shape and returns the root `Φ(R)`.
    ///
    /// # Errors
    ///
    /// [`MerkleError::EmptyTree`] if no leaves were pushed.
    pub fn finalize(self) -> Result<H::Digest, MerkleError> {
        self.finalize_counted().map(|(root, _)| root)
    }

    /// Like [`finalize`](Self::finalize), additionally reporting the total
    /// number of hash invocations spent building the tree — the
    /// participant's commitment cost.
    ///
    /// # Errors
    ///
    /// [`MerkleError::EmptyTree`] if no leaves were pushed.
    pub fn finalize_counted(mut self) -> Result<(H::Digest, u64), MerkleError> {
        if self.count == 0 {
            return Err(MerkleError::EmptyTree);
        }
        let width = self.leaf_width.expect("width fixed by first push");
        let target = padded_leaf_count(self.count);
        let zeros = vec![0u8; width];
        for _ in self.count..target {
            // Push is infallible here: width matches and count only grows.
            self.push(&zeros).expect("padding leaf has the fixed width");
        }
        debug_assert!(self.pending_leaf.is_none());
        debug_assert_eq!(self.frontier.len(), 1);
        let root = self.frontier.pop().expect("exactly one root remains").1;
        Ok((root, self.hash_ops))
    }

    /// The parallel finalize: computes the root `Φ(R)` (and the total hash
    /// count) over a whole leaf slice using up to `parallelism` worker
    /// threads, each streaming one power-of-two subtree of the padded row
    /// through its own `O(log n)` frontier; the per-worker subtree roots
    /// then fold serially.
    ///
    /// Bit-identical to pushing every leaf through one builder and calling
    /// [`finalize_counted`](Self::finalize_counted), at any thread count,
    /// and the reported hash count is exactly the serial count
    /// (`padded − 1`).
    ///
    /// # Errors
    ///
    /// * [`MerkleError::EmptyTree`] if `leaves` is empty.
    /// * [`MerkleError::ZeroLeafWidth`] if leaves are zero-length.
    /// * [`MerkleError::MixedLeafWidth`] if leaves differ in width.
    ///
    /// # Examples
    ///
    /// ```
    /// use ugc_merkle::{Parallelism, StreamingBuilder};
    /// use ugc_hash::Sha256;
    ///
    /// let leaves: Vec<[u8; 8]> = (0u64..37).map(|x| x.to_le_bytes()).collect();
    /// let mut serial: StreamingBuilder<Sha256> = StreamingBuilder::new();
    /// for leaf in &leaves {
    ///     serial.push(leaf)?;
    /// }
    /// let (root, ops) =
    ///     StreamingBuilder::<Sha256>::parallel_root(&leaves, Parallelism::threads(4))?;
    /// assert_eq!(root, serial.finalize()?);
    /// assert_eq!(ops, 63); // padded(37) − 1
    /// # Ok::<(), ugc_merkle::MerkleError>(())
    /// ```
    pub fn parallel_root<L: AsRef<[u8]> + Sync>(
        leaves: &[L],
        parallelism: Parallelism,
    ) -> Result<(H::Digest, u64), MerkleError> {
        let first = leaves.first().ok_or(MerkleError::EmptyTree)?;
        let width = first.as_ref().len();
        if width == 0 {
            return Err(MerkleError::ZeroLeafWidth);
        }
        for (i, leaf) in leaves.iter().enumerate() {
            if leaf.as_ref().len() != width {
                return Err(MerkleError::MixedLeafWidth {
                    expected: width,
                    found: leaf.as_ref().len(),
                    index: i as u64,
                });
            }
        }
        let n = leaves.len();
        let padded = padded_leaf_count(n as u64);
        let chunks = subtree_chunks(parallelism.get(), padded) as usize;
        if chunks <= 1 {
            let mut builder = Self::new();
            for leaf in leaves {
                builder.push(leaf.as_ref())?;
            }
            return builder.finalize_counted();
        }
        let chunk = (padded as usize) / chunks;
        let zeros = vec![0u8; width];
        let zeros = zeros.as_slice();
        let mut subtree_roots: Vec<(H::Digest, u64)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunks)
                .map(|t| {
                    scope.spawn(move |_| {
                        let mut builder: StreamingBuilder<H> = StreamingBuilder::new();
                        let lo = t * chunk;
                        for i in lo..lo + chunk {
                            // Widths were validated above and the chunk is
                            // a power of two, so pushes cannot fail and
                            // the frontier collapses to a single digest.
                            let leaf = leaves.get(i).map_or(zeros, AsRef::as_ref);
                            builder.push(leaf).expect("validated leaf width");
                        }
                        debug_assert!(builder.pending_leaf.is_none());
                        debug_assert_eq!(builder.frontier.len(), 1);
                        let ops = builder.hash_ops;
                        let root = builder.frontier.pop().expect("full subtree").1;
                        (root, ops)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel root worker panicked"))
                .collect()
        })
        .expect("parallel root scope");

        let mut ops: u64 = subtree_roots.iter().map(|(_, o)| o).sum();
        let mut level: Vec<H::Digest> = subtree_roots.drain(..).map(|(d, _)| d).collect();
        while level.len() > 1 {
            level = level
                .chunks_exact(2)
                .map(|pair| {
                    ops += 1;
                    H::digest_pair(pair[0].as_ref(), pair[1].as_ref())
                })
                .collect();
        }
        Ok((level[0], ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MerkleTree;
    use ugc_hash::{Md5, Sha256};

    fn leaves(n: u64) -> Vec<[u8; 8]> {
        (0..n).map(|x| x.wrapping_mul(7).to_le_bytes()).collect()
    }

    #[test]
    fn matches_batch_build_for_many_sizes() {
        for n in [1u64, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100, 255] {
            let ls = leaves(n);
            let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
            for l in &ls {
                b.push(l).unwrap();
            }
            let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
            assert_eq!(b.finalize().unwrap(), tree.root(), "n={n}");
        }
    }

    #[test]
    fn matches_batch_build_md5() {
        let ls = leaves(37);
        let mut b: StreamingBuilder<Md5> = StreamingBuilder::new();
        for l in &ls {
            b.push(l).unwrap();
        }
        let tree: MerkleTree<Md5> = MerkleTree::build(&ls).unwrap();
        assert_eq!(b.finalize().unwrap(), tree.root());
    }

    #[test]
    fn empty_fails() {
        let b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        assert_eq!(b.finalize().unwrap_err(), MerkleError::EmptyTree);
    }

    #[test]
    fn zero_width_leaf_rejected() {
        let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        assert_eq!(b.push(&[]).unwrap_err(), MerkleError::ZeroLeafWidth);
    }

    #[test]
    fn mixed_width_rejected() {
        let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        b.push(&[1, 2, 3]).unwrap();
        assert_eq!(
            b.push(&[1, 2]).unwrap_err(),
            MerkleError::MixedLeafWidth {
                expected: 3,
                found: 2,
                index: 1
            }
        );
    }

    #[test]
    fn frontier_stays_logarithmic() {
        let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        for l in leaves(1000) {
            b.push(&l).unwrap();
            assert!(
                b.frontier.len() <= 11,
                "frontier grew to {}",
                b.frontier.len()
            );
        }
    }

    #[test]
    fn hash_ops_match_batch() {
        let ls = leaves(100);
        let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        for l in &ls {
            b.push(l).unwrap();
        }
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let before_padding = b.hash_ops();
        let (_, total_ops) = b.finalize_counted().unwrap();
        // The batch build hashes padded-1 nodes; streaming performs the
        // same work, some of it during finalize-padding.
        assert!(before_padding <= tree.hash_ops());
        assert_eq!(total_ops, tree.hash_ops());
    }

    #[test]
    fn parallel_root_matches_serial_finalize() {
        for n in [1u64, 2, 3, 5, 8, 17, 64, 100, 257] {
            let ls = leaves(n);
            let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
            for l in &ls {
                b.push(l).unwrap();
            }
            let (serial_root, serial_ops) = b.finalize_counted().unwrap();
            for threads in 1..=8usize {
                let (root, ops) =
                    StreamingBuilder::<Sha256>::parallel_root(&ls, Parallelism::threads(threads))
                        .unwrap();
                assert_eq!(root, serial_root, "n={n} threads={threads}");
                assert_eq!(ops, serial_ops, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_root_validates_like_push() {
        let par = Parallelism::threads(4);
        let empty: Vec<[u8; 8]> = Vec::new();
        assert_eq!(
            StreamingBuilder::<Sha256>::parallel_root(&empty, par).unwrap_err(),
            MerkleError::EmptyTree
        );
        let mixed: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![1]];
        assert_eq!(
            StreamingBuilder::<Sha256>::parallel_root(&mixed, par).unwrap_err(),
            MerkleError::MixedLeafWidth {
                expected: 3,
                found: 1,
                index: 1
            }
        );
    }

    #[test]
    fn leaf_count_tracks_pushes() {
        let mut b: StreamingBuilder<Sha256> = StreamingBuilder::new();
        for (i, l) in leaves(10).iter().enumerate() {
            assert_eq!(b.leaf_count(), i as u64);
            b.push(l).unwrap();
        }
        assert_eq!(b.leaf_count(), 10);
    }
}
