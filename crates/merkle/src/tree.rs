//! The full Merkle tree of Section 3.1 of the paper.

use crate::parallel::subtree_chunks;
use crate::{padded_leaf_count, MerkleError, MerkleProof, Parallelism};
use ugc_hash::{HashFunction, LaneWidth, Sha256};

/// Hashes `out.len()` two-segment pairs produced by `pair(j)` into
/// `out[j]`: full groups of 8 (then 4) go through the transposed
/// message-parallel lane kernels, the ragged tail through the scalar
/// `digest_pair` fast path. Bit-identical to per-pair hashing at any
/// width — the nodes of one tree level never depend on each other.
fn hash_pairs_level<'a, H: HashFunction>(
    out: &mut [H::Digest],
    pair: impl Fn(usize) -> (&'a [u8], &'a [u8]),
    lanes: LaneWidth,
) {
    let n = out.len();
    let mut j = 0;
    if lanes.lanes() >= 8 {
        while j + 8 <= n {
            let msgs: [(&[u8], &[u8]); 8] = core::array::from_fn(|l| pair(j + l));
            out[j..j + 8].copy_from_slice(&H::digest_lanes_8(&msgs));
            j += 8;
        }
    }
    if lanes.lanes() >= 4 {
        while j + 4 <= n {
            let msgs: [(&[u8], &[u8]); 4] = core::array::from_fn(|l| pair(j + l));
            out[j..j + 4].copy_from_slice(&H::digest_lanes_4(&msgs));
            j += 4;
        }
    }
    while j < n {
        let (a, b) = pair(j);
        out[j] = H::digest_pair(a, b);
        j += 1;
    }
}

/// A complete binary Merkle tree whose leaves are raw computation results.
///
/// Following Eq. (1) of the paper:
///
/// ```text
/// Φ(L_i) = f(x_i)                                  (leaves: raw results)
/// Φ(V)   = hash(Φ(V_left) || Φ(V_right))           (internal nodes)
/// ```
///
/// The leaf count is padded to a power of two (≥ 2) with all-zero leaves;
/// see the crate docs for why this is sound. All leaves must have the same
/// width, as `f` maps into a fixed-size result type.
///
/// The tree stores the padded leaf data plus one digest per internal node,
/// i.e. `O(|D|)` space — the cost Section 3.3 of the paper then optimises
/// with [`PartialMerkleTree`](crate::PartialMerkleTree).
///
/// # Examples
///
/// ```
/// use ugc_merkle::MerkleTree;
/// use ugc_hash::Md5;
///
/// let leaves: Vec<[u8; 4]> = (0u32..6).map(|x| x.to_be_bytes()).collect();
/// let tree: MerkleTree<Md5> = MerkleTree::build(&leaves)?;
/// assert_eq!(tree.leaf_count(), 6);
/// assert_eq!(tree.padded_leaf_count(), 8);
/// assert_eq!(tree.height(), 3);
/// let proof = tree.prove(5)?;
/// assert!(proof.verify(&tree.root(), &leaves[5]));
/// # Ok::<(), ugc_merkle::MerkleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree<H: HashFunction = Sha256> {
    /// Padded leaf data, `padded * leaf_width` bytes, row-major.
    leaves: Vec<u8>,
    /// Internal-node digests in binary-heap order; index 0 unused, root at 1,
    /// node `i` has children `2i` and `2i+1`. Length `padded`.
    nodes: Vec<H::Digest>,
    leaf_count: u64,
    padded: u64,
    leaf_width: usize,
    hash_ops: u64,
    /// Hash invocations on the build's critical path: the longest chain of
    /// sequentially-dependent hashes. Equals `hash_ops` for serial builds.
    hash_ops_wall: u64,
}

impl<H: HashFunction> MerkleTree<H> {
    /// Builds a tree over `leaves`, each leaf being one `f(x_i)` result.
    ///
    /// Leaf bytes are copied straight into the padded row — no per-leaf
    /// allocation on this path.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::EmptyTree`] if `leaves` is empty.
    /// * [`MerkleError::ZeroLeafWidth`] if leaves are zero-length.
    /// * [`MerkleError::MixedLeafWidth`] if leaves differ in width.
    pub fn build<L: AsRef<[u8]>>(leaves: &[L]) -> Result<Self, MerkleError> {
        Self::build_with(leaves, Parallelism::serial(), LaneWidth::default())
    }

    /// Builds the same tree as [`build`](Self::build) using up to
    /// `parallelism` worker threads.
    ///
    /// The padded leaf row splits into one power-of-two subtree per
    /// worker; each worker hashes its subtree independently and the top
    /// `log(workers)` levels fold serially. Every node digest — and
    /// therefore the root, all proofs, and [`hash_ops`](Self::hash_ops) —
    /// is bit-identical to the serial build at any thread count.
    /// [`hash_ops_wall`](Self::hash_ops_wall) reports the critical-path
    /// cost actually paid.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build).
    ///
    /// # Examples
    ///
    /// ```
    /// use ugc_merkle::{MerkleTree, Parallelism};
    /// use ugc_hash::Sha256;
    ///
    /// let leaves: Vec<[u8; 8]> = (0u64..100).map(|x| x.to_le_bytes()).collect();
    /// let serial: MerkleTree<Sha256> = MerkleTree::build(&leaves)?;
    /// let parallel: MerkleTree<Sha256> =
    ///     MerkleTree::build_parallel(&leaves, Parallelism::threads(4))?;
    /// assert_eq!(serial.root(), parallel.root());
    /// # Ok::<(), ugc_merkle::MerkleError>(())
    /// ```
    pub fn build_parallel<L: AsRef<[u8]>>(
        leaves: &[L],
        parallelism: Parallelism,
    ) -> Result<Self, MerkleError> {
        Self::build_with(leaves, parallelism, LaneWidth::default())
    }

    /// Builds the same tree as [`build`](Self::build) with both execution
    /// knobs explicit: up to `parallelism` worker threads *and* the
    /// message-parallel lane width used inside each worker (or the single
    /// thread). Neither knob changes any digest — `hash_ops` and every
    /// node are bit-identical to the serial scalar build.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build).
    ///
    /// # Examples
    ///
    /// ```
    /// use ugc_merkle::{LaneWidth, MerkleTree, Parallelism};
    /// use ugc_hash::Sha256;
    ///
    /// let leaves: Vec<[u8; 8]> = (0u64..100).map(|x| x.to_le_bytes()).collect();
    /// let scalar: MerkleTree<Sha256> =
    ///     MerkleTree::build_with(&leaves, Parallelism::serial(), LaneWidth::Scalar)?;
    /// let laned: MerkleTree<Sha256> =
    ///     MerkleTree::build_with(&leaves, Parallelism::threads(4), LaneWidth::X8)?;
    /// assert_eq!(scalar.root(), laned.root());
    /// # Ok::<(), ugc_merkle::MerkleError>(())
    /// ```
    pub fn build_with<L: AsRef<[u8]>>(
        leaves: &[L],
        parallelism: Parallelism,
        lanes: LaneWidth,
    ) -> Result<Self, MerkleError> {
        let mut tree = Self::copy_leaves(leaves)?;
        if parallelism.get() > 1 {
            tree.hash_all_parallel(parallelism.get(), lanes);
        } else {
            tree.hash_all(lanes);
        }
        Ok(tree)
    }

    /// Validates widths and copies `leaves` into the zero-padded row;
    /// digests are not yet computed.
    fn copy_leaves<L: AsRef<[u8]>>(leaves: &[L]) -> Result<Self, MerkleError> {
        let first = leaves.first().ok_or(MerkleError::EmptyTree)?;
        let width = first.as_ref().len();
        if width == 0 {
            return Err(MerkleError::ZeroLeafWidth);
        }
        let n = leaves.len() as u64;
        let padded = padded_leaf_count(n);
        let mut row = vec![0u8; (padded as usize) * width];
        for (i, (leaf, slot)) in leaves.iter().zip(row.chunks_exact_mut(width)).enumerate() {
            let bytes = leaf.as_ref();
            if bytes.len() != width {
                return Err(MerkleError::MixedLeafWidth {
                    expected: width,
                    found: bytes.len(),
                    index: i as u64,
                });
            }
            slot.copy_from_slice(bytes);
        }
        Ok(MerkleTree {
            leaves: row,
            nodes: Vec::new(),
            leaf_count: n,
            padded,
            leaf_width: width,
            hash_ops: 0,
            hash_ops_wall: 0,
        })
    }

    /// Builds a tree by evaluating `leaf_fn(i)` for `i ∈ [0, n)`.
    ///
    /// `leaf_fn` must return exactly `leaf_width` bytes per call; this is the
    /// participant-side entry point where `leaf_fn` computes (or fakes —
    /// see the cheating behaviours in `ugc-grid`) the result `f(x_i)`.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::EmptyTree`] if `n == 0`.
    /// * [`MerkleError::ZeroLeafWidth`] if `leaf_width == 0`.
    /// * [`MerkleError::MixedLeafWidth`] if `leaf_fn` returns a wrong-width
    ///   result.
    pub fn from_leaf_fn<F>(n: u64, leaf_width: usize, mut leaf_fn: F) -> Result<Self, MerkleError>
    where
        F: FnMut(u64) -> Vec<u8>,
    {
        if n == 0 {
            return Err(MerkleError::EmptyTree);
        }
        if leaf_width == 0 {
            return Err(MerkleError::ZeroLeafWidth);
        }
        let padded = padded_leaf_count(n);
        let mut leaves = vec![0u8; (padded as usize) * leaf_width];
        for i in 0..n {
            let value = leaf_fn(i);
            if value.len() != leaf_width {
                return Err(MerkleError::MixedLeafWidth {
                    expected: leaf_width,
                    found: value.len(),
                    index: i,
                });
            }
            let off = (i as usize) * leaf_width;
            leaves[off..off + leaf_width].copy_from_slice(&value);
        }
        let mut tree = MerkleTree {
            leaves,
            nodes: Vec::new(),
            leaf_count: n,
            padded,
            leaf_width,
            hash_ops: 0,
            hash_ops_wall: 0,
        };
        tree.hash_all(LaneWidth::default());
        Ok(tree)
    }

    /// Recomputes every internal digest from the leaf data, lane-batching
    /// each level (the nodes of a level are mutually independent).
    fn hash_all(&mut self, lanes: LaneWidth) {
        let padded = self.padded as usize;
        // Heap slot 0 is a placeholder; fill with the digest of nothing.
        let mut nodes: Vec<H::Digest> = vec![H::digest(&[]); padded];
        let mut ops = 0u64;
        let width = self.leaf_width;
        let leaves = &self.leaves;
        // Bottom internal level hashes raw leaf pairs.
        {
            let (_, bottom) = nodes.split_at_mut(padded / 2);
            hash_pairs_level::<H>(
                bottom,
                |t| {
                    let off = 2 * t * width;
                    (
                        &leaves[off..off + width],
                        &leaves[off + width..off + 2 * width],
                    )
                },
                lanes,
            );
            ops += self.padded / 2;
        }
        // Upper levels hash digest pairs, one level at a time: the level
        // of `size` nodes at heap [size, 2·size) reads its children from
        // [2·size, 4·size).
        let mut size = padded / 4;
        while size >= 1 {
            let (lo, hi) = nodes.split_at_mut(2 * size);
            let hi = &hi[..];
            let (_, level) = lo.split_at_mut(size);
            hash_pairs_level::<H>(
                level,
                |j| (hi[2 * j].as_ref(), hi[2 * j + 1].as_ref()),
                lanes,
            );
            ops += size as u64;
            size /= 2;
        }
        self.nodes = nodes;
        self.hash_ops = ops;
        self.hash_ops_wall = ops;
    }

    /// [`hash_all`](Self::hash_all) split over `threads` scoped workers:
    /// one power-of-two subtree of the padded leaf row per worker, then a
    /// serial fold of the top `log(workers)` levels. Digests are
    /// bit-identical to the serial pass.
    fn hash_all_parallel(&mut self, threads: usize, lanes: LaneWidth) {
        let padded = self.padded as usize;
        let chunks = subtree_chunks(threads, self.padded) as usize;
        if chunks <= 1 {
            self.hash_all(lanes);
            return;
        }
        let chunk = padded / chunks; // leaves per subtree; power of two ≥ 2
        let width = self.leaf_width;
        let leaves = &self.leaves;
        let locals: Vec<(Vec<H::Digest>, u64)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunks)
                .map(|t| {
                    scope.spawn(move |_| {
                        // Local binary heap over this worker's subtree:
                        // index 0 unused, subtree root at 1. Each level is
                        // lane-batched exactly like the serial pass.
                        let mut local: Vec<H::Digest> = vec![H::digest(&[]); chunk];
                        let base = t * chunk;
                        {
                            let (_, bottom) = local.split_at_mut(chunk / 2);
                            hash_pairs_level::<H>(
                                bottom,
                                |s| {
                                    let off = (base + 2 * s) * width;
                                    (
                                        &leaves[off..off + width],
                                        &leaves[off + width..off + 2 * width],
                                    )
                                },
                                lanes,
                            );
                        }
                        let mut size = chunk / 4;
                        while size >= 1 {
                            let (lo, hi) = local.split_at_mut(2 * size);
                            let hi = &hi[..];
                            let (_, level) = lo.split_at_mut(size);
                            hash_pairs_level::<H>(
                                level,
                                |j| (hi[2 * j].as_ref(), hi[2 * j + 1].as_ref()),
                                lanes,
                            );
                            size /= 2;
                        }
                        // One hash per internal node of the subtree.
                        (local, (chunk - 1) as u64)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merkle build worker panicked"))
                .collect()
        })
        .expect("merkle build scope");

        let mut nodes: Vec<H::Digest> = vec![H::digest(&[]); padded];
        let mut total = 0u64;
        let mut wall = 0u64;
        for (t, (local, ops)) in locals.iter().enumerate() {
            total += ops;
            wall = wall.max(*ops);
            // Scatter: local heap level [2^d, 2^{d+1}) lands at the global
            // contiguous range starting at (chunks + t) · 2^d.
            let mut level = 1usize;
            while level < chunk {
                let dst = (chunks + t) * level;
                nodes[dst..dst + level].copy_from_slice(&local[level..2 * level]);
                level *= 2;
            }
        }
        // Fold the top log2(chunks) levels serially.
        let mut top_ops = 0u64;
        for i in (1..chunks).rev() {
            nodes[i] = H::digest_pair(nodes[2 * i].as_ref(), nodes[2 * i + 1].as_ref());
            top_ops += 1;
        }
        self.nodes = nodes;
        self.hash_ops = total + top_ops;
        self.hash_ops_wall = wall + top_ops;
    }

    fn leaf_slice(&self, padded_index: usize) -> &[u8] {
        let off = padded_index * self.leaf_width;
        &self.leaves[off..off + self.leaf_width]
    }

    /// Leaf bytes by padded index (padding leaves included); used by the
    /// persistence layer.
    pub(crate) fn padded_leaf_slice(&self, padded_index: u64) -> &[u8] {
        self.leaf_slice(padded_index as usize)
    }

    /// Reassembles a tree from persisted raw storage. The caller (the
    /// persistence layer) guarantees geometric consistency.
    pub(crate) fn from_raw_parts(
        leaves: Vec<u8>,
        nodes: Vec<H::Digest>,
        leaf_count: u64,
        leaf_width: usize,
    ) -> Self {
        let padded = crate::padded_leaf_count(leaf_count);
        debug_assert_eq!(leaves.len() as u64, padded * leaf_width as u64);
        debug_assert_eq!(nodes.len() as u64, padded);
        MerkleTree {
            leaves,
            nodes,
            leaf_count,
            padded,
            leaf_width,
            hash_ops: 0,
            hash_ops_wall: 0,
        }
    }

    /// The committed root `Φ(R)`.
    ///
    /// For the degenerate two-leaf tree the root is the single internal
    /// node; in general it is heap node 1.
    #[must_use]
    pub fn root(&self) -> H::Digest {
        self.nodes[1]
    }

    /// Number of real (unpadded) leaves, `n = |D|`.
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Leaf count after power-of-two padding.
    #[must_use]
    pub fn padded_leaf_count(&self) -> u64 {
        self.padded
    }

    /// Tree height `H`; every proof carries `H` sibling values.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.padded.trailing_zeros()
    }

    /// Width of each leaf in bytes.
    #[must_use]
    pub fn leaf_width(&self) -> usize {
        self.leaf_width
    }

    /// Number of hash invocations performed to build the tree
    /// (`padded − 1`), identical for serial and parallel builds.
    #[must_use]
    pub fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    /// Hash invocations on the build's critical path: the longest chain
    /// of hashes any single thread computed. Equals
    /// [`hash_ops`](Self::hash_ops) after a serial build; after
    /// [`build_parallel`](Self::build_parallel) with `w` workers it is
    /// roughly `hash_ops / w` plus the `w − 1` serial fold hashes — the
    /// wall-clock hash cost the parallel build actually paid.
    #[must_use]
    pub fn hash_ops_wall(&self) -> u64 {
        self.hash_ops_wall
    }

    /// The raw result bytes stored in leaf `index`.
    ///
    /// # Errors
    ///
    /// [`MerkleError::IndexOutOfRange`] if `index ≥ leaf_count`.
    pub fn leaf(&self, index: u64) -> Result<&[u8], MerkleError> {
        if index >= self.leaf_count {
            return Err(MerkleError::IndexOutOfRange {
                index,
                leaf_count: self.leaf_count,
            });
        }
        Ok(self.leaf_slice(index as usize))
    }

    /// Internal digest at heap position `heap_index` (root = 1).
    ///
    /// Exposed for the partial-tree equivalence tests; not part of the
    /// protocol surface.
    #[doc(hidden)]
    #[must_use]
    pub fn node_digest(&self, heap_index: u64) -> H::Digest {
        self.nodes[heap_index as usize]
    }

    /// Replaces the value of leaf `index` and recomputes the digests along
    /// its path to the root, returning the number of hash invocations
    /// spent (`H`, the tree height).
    ///
    /// This is the primitive behind the Section 4.2 *retry attack*: a
    /// cheater re-rolls one uncommitted leaf and pays only `O(log n)`
    /// hashes per attempt to refresh its commitment.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::IndexOutOfRange`] if `index ≥ leaf_count`.
    /// * [`MerkleError::MixedLeafWidth`] if `value` has the wrong width.
    pub fn update_leaf(&mut self, index: u64, value: &[u8]) -> Result<u64, MerkleError> {
        if index >= self.leaf_count {
            return Err(MerkleError::IndexOutOfRange {
                index,
                leaf_count: self.leaf_count,
            });
        }
        if value.len() != self.leaf_width {
            return Err(MerkleError::MixedLeafWidth {
                expected: self.leaf_width,
                found: value.len(),
                index,
            });
        }
        let off = (index as usize) * self.leaf_width;
        self.leaves[off..off + self.leaf_width].copy_from_slice(value);
        // Re-hash the leaf pair, then the digest path up to the root.
        let mut ops = 0u64;
        let pair = index & !1;
        let mut node = (self.padded + index) >> 1;
        self.nodes[node as usize] = H::digest_pair(
            self.leaf_slice(pair as usize),
            self.leaf_slice((pair + 1) as usize),
        );
        ops += 1;
        while node > 1 {
            node >>= 1;
            self.nodes[node as usize] = H::digest_pair(
                self.nodes[(2 * node) as usize].as_ref(),
                self.nodes[(2 * node + 1) as usize].as_ref(),
            );
            ops += 1;
        }
        self.hash_ops += ops;
        self.hash_ops_wall += ops;
        Ok(ops)
    }

    /// Generates the proof of honesty for leaf `index` (Step 3 of the CBS
    /// scheme): the sibling leaf value plus the digest siblings along the
    /// path to the root.
    ///
    /// # Errors
    ///
    /// [`MerkleError::IndexOutOfRange`] if `index ≥ leaf_count`.
    pub fn prove(&self, index: u64) -> Result<MerkleProof<H>, MerkleError> {
        if index >= self.leaf_count {
            return Err(MerkleError::IndexOutOfRange {
                index,
                leaf_count: self.leaf_count,
            });
        }
        let leaf_sibling = self.leaf_slice((index ^ 1) as usize).to_vec();
        let mut digest_siblings = Vec::with_capacity(self.height() as usize - 1);
        // Heap position of the leaf's parent.
        let mut node = (self.padded + index) >> 1;
        while node > 1 {
            digest_siblings.push(self.nodes[(node ^ 1) as usize]);
            node >>= 1;
        }
        Ok(MerkleProof::from_parts(
            index,
            leaf_sibling,
            digest_siblings,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_hash::{Md5, Sha256};

    fn leaves(n: u64) -> Vec<[u8; 8]> {
        (0..n)
            .map(|x| (x.wrapping_mul(0x9e37_79b9)).to_le_bytes())
            .collect()
    }

    #[test]
    fn build_rejects_empty() {
        let empty: Vec<[u8; 8]> = Vec::new();
        assert_eq!(
            MerkleTree::<Sha256>::build(&empty).unwrap_err(),
            MerkleError::EmptyTree
        );
    }

    #[test]
    fn build_rejects_zero_width() {
        let zero: Vec<Vec<u8>> = vec![vec![], vec![]];
        assert_eq!(
            MerkleTree::<Sha256>::build(&zero).unwrap_err(),
            MerkleError::ZeroLeafWidth
        );
    }

    #[test]
    fn build_rejects_mixed_width() {
        let mixed: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        assert_eq!(
            MerkleTree::<Sha256>::build(&mixed).unwrap_err(),
            MerkleError::MixedLeafWidth {
                expected: 2,
                found: 1,
                index: 1
            }
        );
    }

    #[test]
    fn single_leaf_tree() {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves(1)).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.padded_leaf_count(), 2);
        assert_eq!(tree.height(), 1);
        // Root = H(leaf0 || zero-pad).
        let expected = Sha256::digest_pair(&0u64.to_le_bytes(), &[0u8; 8]);
        assert_eq!(tree.root(), expected);
    }

    #[test]
    fn two_leaf_root_matches_manual_eq1() {
        let ls = leaves(2);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        assert_eq!(tree.root(), Sha256::digest_pair(&ls[0], &ls[1]));
    }

    #[test]
    fn four_leaf_root_matches_manual_eq1() {
        let ls = leaves(4);
        let tree: MerkleTree<Md5> = MerkleTree::build(&ls).unwrap();
        let b = Md5::digest_pair(&ls[0], &ls[1]);
        let c = Md5::digest_pair(&ls[2], &ls[3]);
        assert_eq!(tree.root(), Md5::digest_pair(b.as_ref(), c.as_ref()));
    }

    #[test]
    fn padding_is_zero_leaves() {
        // 3 real leaves pad to 4 with one zero leaf.
        let ls = leaves(3);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let mut padded = ls.iter().map(|l| l.to_vec()).collect::<Vec<_>>();
        padded.push(vec![0u8; 8]);
        let manual: MerkleTree<Sha256> = MerkleTree::build(&padded).unwrap();
        assert_eq!(tree.root(), manual.root());
    }

    #[test]
    fn from_leaf_fn_matches_build() {
        let ls = leaves(10);
        let a: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let b: MerkleTree<Sha256> =
            MerkleTree::from_leaf_fn(10, 8, |i| ls[i as usize].to_vec()).unwrap();
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn from_leaf_fn_rejects_wrong_width() {
        let err = MerkleTree::<Sha256>::from_leaf_fn(4, 8, |i| {
            if i == 2 {
                vec![0u8; 7]
            } else {
                vec![0u8; 8]
            }
        })
        .unwrap_err();
        assert_eq!(
            err,
            MerkleError::MixedLeafWidth {
                expected: 8,
                found: 7,
                index: 2
            }
        );
    }

    #[test]
    fn hash_ops_is_padded_minus_one() {
        for n in [1u64, 2, 3, 8, 9, 100] {
            let tree: MerkleTree<Sha256> =
                MerkleTree::from_leaf_fn(n, 8, |i| i.to_le_bytes().to_vec()).unwrap();
            assert_eq!(tree.hash_ops(), tree.padded_leaf_count() - 1, "n={n}");
            assert_eq!(tree.hash_ops_wall(), tree.hash_ops(), "n={n}");
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        for n in [1u64, 2, 3, 5, 16, 33, 100, 257] {
            let ls = leaves(n);
            let serial: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
            for threads in 1..=8usize {
                let parallel: MerkleTree<Sha256> =
                    MerkleTree::build_parallel(&ls, crate::Parallelism::threads(threads)).unwrap();
                // Every internal node, not just the root.
                for i in 1..serial.padded_leaf_count() {
                    assert_eq!(
                        serial.node_digest(i),
                        parallel.node_digest(i),
                        "n={n} threads={threads} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_width_is_bit_identical_at_any_setting() {
        // LaneWidth is an execution knob: every node digest and both op
        // counters must match the scalar serial build at any combination
        // of lane width and thread count.
        for n in [1u64, 2, 3, 5, 16, 33, 100, 257] {
            let ls = leaves(n);
            let reference: MerkleTree<Sha256> =
                MerkleTree::build_with(&ls, crate::Parallelism::serial(), LaneWidth::Scalar)
                    .unwrap();
            for lanes in LaneWidth::ALL {
                for threads in [1usize, 3, 4] {
                    let tree: MerkleTree<Sha256> =
                        MerkleTree::build_with(&ls, crate::Parallelism::threads(threads), lanes)
                            .unwrap();
                    for i in 1..reference.padded_leaf_count() {
                        assert_eq!(
                            reference.node_digest(i),
                            tree.node_digest(i),
                            "n={n} lanes={lanes} threads={threads} node={i}"
                        );
                    }
                    assert_eq!(reference.hash_ops(), tree.hash_ops(), "n={n} lanes={lanes}");
                }
            }
        }
    }

    #[test]
    fn lane_width_is_bit_identical_for_md5() {
        let ls = leaves(100);
        let scalar: MerkleTree<Md5> =
            MerkleTree::build_with(&ls, crate::Parallelism::serial(), LaneWidth::Scalar).unwrap();
        for lanes in [LaneWidth::X4, LaneWidth::X8] {
            let laned: MerkleTree<Md5> =
                MerkleTree::build_with(&ls, crate::Parallelism::serial(), lanes).unwrap();
            assert_eq!(scalar.root(), laned.root(), "lanes={lanes}");
        }
    }

    #[test]
    fn parallel_build_reports_exact_section3_op_count() {
        // Section 3: building over n leaves costs the 2n − 1 tree nodes
        // minus the n leaves themselves — padded − 1 hash invocations —
        // and the per-thread tallies merged at join must reproduce it
        // exactly.
        for n in [2u64, 7, 64, 100, 257] {
            let ls = leaves(n);
            for threads in [2usize, 3, 8] {
                let tree: MerkleTree<Sha256> =
                    MerkleTree::build_parallel(&ls, crate::Parallelism::threads(threads)).unwrap();
                assert_eq!(
                    tree.hash_ops(),
                    tree.padded_leaf_count() - 1,
                    "n={n} threads={threads}"
                );
                assert!(tree.hash_ops_wall() <= tree.hash_ops());
            }
        }
    }

    #[test]
    fn parallel_build_wall_ops_reflect_the_split() {
        // 256 padded leaves over 4 workers: each worker hashes 63 nodes,
        // the fold hashes 3 more → wall = 66 while total = 255.
        let ls = leaves(256);
        let tree: MerkleTree<Sha256> =
            MerkleTree::build_parallel(&ls, crate::Parallelism::threads(4)).unwrap();
        assert_eq!(tree.hash_ops(), 255);
        assert_eq!(tree.hash_ops_wall(), 66);
    }

    #[test]
    fn parallel_build_validates_like_serial() {
        let par = crate::Parallelism::threads(4);
        let empty: Vec<[u8; 8]> = Vec::new();
        assert_eq!(
            MerkleTree::<Sha256>::build_parallel(&empty, par).unwrap_err(),
            MerkleError::EmptyTree
        );
        let mixed: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        assert_eq!(
            MerkleTree::<Sha256>::build_parallel(&mixed, par).unwrap_err(),
            MerkleError::MixedLeafWidth {
                expected: 2,
                found: 1,
                index: 1
            }
        );
    }

    #[test]
    fn parallel_build_update_leaf_still_works() {
        let mut ls = leaves(64);
        let mut tree: MerkleTree<Sha256> =
            MerkleTree::build_parallel(&ls, crate::Parallelism::threads(8)).unwrap();
        tree.update_leaf(17, &[5u8; 8]).unwrap();
        ls[17] = [5u8; 8];
        let rebuilt: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        assert_eq!(tree.root(), rebuilt.root());
    }

    #[test]
    fn leaf_accessor_roundtrip() {
        let ls = leaves(7);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        for (i, l) in ls.iter().enumerate() {
            assert_eq!(tree.leaf(i as u64).unwrap(), l.as_slice());
        }
        assert!(tree.leaf(7).is_err());
    }

    #[test]
    fn all_proofs_verify() {
        for n in [1u64, 2, 3, 5, 8, 16, 33] {
            let ls = leaves(n);
            let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
            let root = tree.root();
            for i in 0..n {
                let proof = tree.prove(i).unwrap();
                assert!(
                    proof.verify(&root, &ls[i as usize]),
                    "n={n} leaf={i} proof failed"
                );
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_value() {
        let ls = leaves(8);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), &[0xFFu8; 8]));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let ls = leaves(8);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let other: MerkleTree<Sha256> = MerkleTree::build(&leaves(9)[1..]).unwrap();
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&other.root(), &ls[3]));
    }

    #[test]
    fn prove_out_of_range() {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves(4)).unwrap();
        assert_eq!(
            tree.prove(4).unwrap_err(),
            MerkleError::IndexOutOfRange {
                index: 4,
                leaf_count: 4
            }
        );
    }

    #[test]
    fn changing_any_leaf_changes_root() {
        let base = leaves(16);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&base).unwrap();
        for i in 0..16usize {
            let mut mutated = base.clone();
            mutated[i][0] ^= 1;
            let other: MerkleTree<Sha256> = MerkleTree::build(&mutated).unwrap();
            assert_ne!(tree.root(), other.root(), "leaf {i} mutation not detected");
        }
    }

    #[test]
    fn update_leaf_matches_rebuild() {
        let mut ls = leaves(16);
        let mut tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        for i in [0u64, 3, 7, 15] {
            let new_value = (i + 1000).to_le_bytes();
            let ops = tree.update_leaf(i, &new_value).unwrap();
            assert_eq!(ops, u64::from(tree.height()));
            ls[i as usize] = new_value;
            let rebuilt: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
            assert_eq!(tree.root(), rebuilt.root(), "after updating leaf {i}");
        }
    }

    #[test]
    fn update_leaf_then_prove() {
        let ls = leaves(8);
        let mut tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        tree.update_leaf(5, &[9u8; 8]).unwrap();
        let proof = tree.prove(5).unwrap();
        assert!(proof.verify(&tree.root(), &[9u8; 8]));
        let proof0 = tree.prove(0).unwrap();
        assert!(proof0.verify(&tree.root(), &ls[0]));
    }

    #[test]
    fn update_leaf_validates_arguments() {
        let mut tree: MerkleTree<Sha256> = MerkleTree::build(&leaves(4)).unwrap();
        assert!(matches!(
            tree.update_leaf(4, &[0u8; 8]),
            Err(MerkleError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            tree.update_leaf(0, &[0u8; 7]),
            Err(MerkleError::MixedLeafWidth { .. })
        ));
    }

    #[test]
    fn update_leaf_restores_original_root() {
        let ls = leaves(8);
        let mut tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let original = tree.root();
        tree.update_leaf(2, &[1u8; 8]).unwrap();
        assert_ne!(tree.root(), original);
        tree.update_leaf(2, &ls[2]).unwrap();
        assert_eq!(tree.root(), original);
    }

    #[test]
    fn fig1_walkthrough() {
        // Fig. 1 of the paper: 8 leaves, sample x_3 (leaf index 2 when
        // 0-indexed). The proof must contain Φ(L4) (the leaf sibling) and
        // the digests Φ(A), Φ(D)... — here we verify the reconstruction
        // footnote: Φ(B) = hash(f(x3)||Φ(L4)), Φ(C) = hash(Φ(A)||Φ(B)),
        // Φ(E) = hash(Φ(C)||Φ(D)), Φ(R) = hash(Φ(E)||Φ(F)).
        let ls = leaves(8);
        let tree: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        let proof = tree.prove(2).unwrap();
        assert_eq!(proof.leaf_sibling(), &ls[3]); // Φ(L4)
        let phi_a = Sha256::digest_pair(&ls[0], &ls[1]);
        let phi_b = Sha256::digest_pair(&ls[2], &ls[3]);
        let phi_c = Sha256::digest_pair(phi_a.as_ref(), phi_b.as_ref());
        let phi_d = Sha256::digest_pair(&ls[4], &ls[5]);
        let phi_e = Sha256::digest_pair(&ls[6], &ls[7]);
        let phi_f = Sha256::digest_pair(phi_d.as_ref(), phi_e.as_ref());
        assert_eq!(proof.digest_siblings(), &[phi_a, phi_f]);
        let root = Sha256::digest_pair(phi_c.as_ref(), phi_f.as_ref());
        assert_eq!(tree.root(), root);
        assert!(proof.verify(&root, &ls[2]));
    }
}
