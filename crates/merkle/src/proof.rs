//! Authentication paths: the participant's per-sample proof of honesty.

use ugc_hash::{HashFunction, Sha256};

/// A Merkle authentication path for one sampled leaf.
///
/// This is the data the participant sends in Step 3 of the CBS scheme for a
/// sample `x`: the `Φ` values of the siblings along the path from `x`'s leaf
/// to the root (`λ_1, …, λ_H` in the paper). The sampled result `f(x)`
/// itself travels alongside the proof, not inside it — the supervisor first
/// checks `f(x)` for correctness and only then reconstructs the root.
///
/// The first sibling (`λ_1`) is a raw leaf value (the neighbouring
/// `f(x_{i±1})`); all higher siblings are digests.
///
/// # Examples
///
/// ```
/// use ugc_merkle::MerkleTree;
/// use ugc_hash::Sha256;
///
/// let leaves: Vec<[u8; 2]> = (0u16..4).map(|x| x.to_be_bytes()).collect();
/// let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves)?;
/// let proof = tree.prove(1)?;
/// assert_eq!(proof.leaf_index(), 1);
/// assert_eq!(proof.path_len(), tree.height());
/// assert!(proof.verify(&tree.root(), &leaves[1]));
/// # Ok::<(), ugc_merkle::MerkleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof<H: HashFunction = Sha256> {
    leaf_index: u64,
    leaf_sibling: Vec<u8>,
    digest_siblings: Vec<H::Digest>,
}

impl<H: HashFunction> MerkleProof<H> {
    /// Assembles a proof from its wire components.
    ///
    /// `digest_siblings` are ordered bottom-up (level just above the leaves
    /// first). Used by the tree's prover and by the wire codec's decoder.
    #[must_use]
    pub fn from_parts(
        leaf_index: u64,
        leaf_sibling: Vec<u8>,
        digest_siblings: Vec<H::Digest>,
    ) -> Self {
        MerkleProof {
            leaf_index,
            leaf_sibling,
            digest_siblings,
        }
    }

    /// Index of the proven leaf within the domain.
    #[must_use]
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// The raw sibling leaf value `λ_1` (the neighbour's `f` result).
    #[must_use]
    pub fn leaf_sibling(&self) -> &[u8] {
        &self.leaf_sibling
    }

    /// The digest siblings `λ_2 … λ_H`, bottom-up.
    #[must_use]
    pub fn digest_siblings(&self) -> &[H::Digest] {
        &self.digest_siblings
    }

    /// Total path length `H` (number of λ values).
    #[must_use]
    pub fn path_len(&self) -> u32 {
        self.digest_siblings.len() as u32 + 1
    }

    /// Reconstructs the root `Φ(R′) = Λ(leaf_value, λ_1, …, λ_H)`.
    ///
    /// This is the supervisor-side recursion of Eq. (1): combine the claimed
    /// `f(x)` with each sibling in turn, ordering each concatenation by the
    /// path position encoded in [`leaf_index`](Self::leaf_index).
    #[must_use]
    pub fn reconstruct_root(&self, leaf_value: &[u8]) -> H::Digest {
        let mut idx = self.leaf_index;
        let mut acc = if idx & 1 == 0 {
            H::digest_pair(leaf_value, &self.leaf_sibling)
        } else {
            H::digest_pair(&self.leaf_sibling, leaf_value)
        };
        idx >>= 1;
        for sibling in &self.digest_siblings {
            acc = if idx & 1 == 0 {
                H::digest_pair(acc.as_ref(), sibling.as_ref())
            } else {
                H::digest_pair(sibling.as_ref(), acc.as_ref())
            };
            idx >>= 1;
        }
        acc
    }

    /// Step 4.2 of the CBS scheme: reconstruct the root from the (already
    /// correctness-checked) `leaf_value` and compare with the commitment
    /// `Φ(R)`. Returns `true` iff `Φ(R′) = Φ(R)`.
    #[must_use]
    pub fn verify(&self, committed_root: &H::Digest, leaf_value: &[u8]) -> bool {
        self.reconstruct_root(leaf_value) == *committed_root
    }

    /// Number of hash invocations [`verify`](Self::verify) performs
    /// (`H`, the tree height).
    #[must_use]
    pub fn verification_hash_ops(&self) -> u64 {
        u64::from(self.path_len())
    }

    /// Size of the proof's payload in bytes as it travels on the wire:
    /// the sibling leaf plus `H − 1` digests. (The leaf index adds a fixed
    /// 8 bytes of framing, accounted by the codec.)
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.leaf_sibling.len() as u64 + (self.digest_siblings.len() * H::DIGEST_LEN) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MerkleTree;
    use ugc_hash::{Md5, Sha256};

    fn tree(n: u64) -> (Vec<[u8; 8]>, MerkleTree<Sha256>) {
        let leaves: Vec<[u8; 8]> = (0..n).map(|x| x.to_le_bytes()).collect();
        let tree = MerkleTree::build(&leaves).unwrap();
        (leaves, tree)
    }

    #[test]
    fn reconstruct_matches_root_for_honest_leaf() {
        let (leaves, t) = tree(16);
        for i in 0..16u64 {
            let proof = t.prove(i).unwrap();
            assert_eq!(proof.reconstruct_root(&leaves[i as usize]), t.root());
        }
    }

    #[test]
    fn path_len_is_tree_height() {
        for n in [1u64, 2, 5, 8, 64, 100] {
            let (_, t) = tree(n);
            let proof = t.prove(0).unwrap();
            assert_eq!(proof.path_len(), t.height(), "n={n}");
        }
    }

    #[test]
    fn tampered_leaf_sibling_fails() {
        let (leaves, t) = tree(8);
        let proof = t.prove(4).unwrap();
        let mut sib = proof.leaf_sibling().to_vec();
        sib[0] ^= 0x80;
        let forged: MerkleProof<Sha256> =
            MerkleProof::from_parts(4, sib, proof.digest_siblings().to_vec());
        assert!(!forged.verify(&t.root(), &leaves[4]));
    }

    #[test]
    fn tampered_digest_sibling_fails() {
        let (leaves, t) = tree(8);
        let proof = t.prove(4).unwrap();
        for level in 0..proof.digest_siblings().len() {
            let mut sibs = proof.digest_siblings().to_vec();
            sibs[level][0] ^= 1;
            let forged: MerkleProof<Sha256> =
                MerkleProof::from_parts(4, proof.leaf_sibling().to_vec(), sibs);
            assert!(
                !forged.verify(&t.root(), &leaves[4]),
                "tamper at level {level} undetected"
            );
        }
    }

    #[test]
    fn wrong_index_fails() {
        // A valid proof presented under a different index flips the
        // concatenation order somewhere along the path.
        let (leaves, t) = tree(8);
        let proof = t.prove(5).unwrap();
        let forged: MerkleProof<Sha256> = MerkleProof::from_parts(
            4,
            proof.leaf_sibling().to_vec(),
            proof.digest_siblings().to_vec(),
        );
        assert!(!forged.verify(&t.root(), &leaves[5]));
    }

    #[test]
    fn proof_for_one_tree_fails_on_another() {
        let (leaves_a, a) = tree(8);
        let other: Vec<[u8; 8]> = (100..108u64).map(|x| x.to_le_bytes()).collect();
        let b: MerkleTree<Sha256> = MerkleTree::build(&other).unwrap();
        let proof = a.prove(2).unwrap();
        assert!(proof.verify(&a.root(), &leaves_a[2]));
        assert!(!proof.verify(&b.root(), &leaves_a[2]));
    }

    #[test]
    fn verification_cost_is_height() {
        let (_, t) = tree(64);
        let proof = t.prove(10).unwrap();
        assert_eq!(proof.verification_hash_ops(), u64::from(t.height()));
    }

    #[test]
    fn payload_bytes_accounts_leaf_and_digests() {
        let (_, t) = tree(64); // height 6: 1 leaf sibling + 5 digests
        let proof = t.prove(0).unwrap();
        assert_eq!(proof.payload_bytes(), 8 + 5 * 32);
        let leaves: Vec<[u8; 8]> = (0..64u64).map(|x| x.to_le_bytes()).collect();
        let md5_tree: MerkleTree<Md5> = MerkleTree::build(&leaves).unwrap();
        let md5_proof = md5_tree.prove(0).unwrap();
        assert_eq!(md5_proof.payload_bytes(), 8 + 5 * 16);
    }

    #[test]
    fn accessors_roundtrip_from_parts() {
        let (_, t) = tree(16);
        let proof = t.prove(9).unwrap();
        let rebuilt: MerkleProof<Sha256> = MerkleProof::from_parts(
            proof.leaf_index(),
            proof.leaf_sibling().to_vec(),
            proof.digest_siblings().to_vec(),
        );
        assert_eq!(rebuilt, proof);
    }
}
