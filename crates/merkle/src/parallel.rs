//! Thread-count configuration for the parallel build paths.
//!
//! Commitment construction is the participant's dominant cost (Section 3.1
//! of the paper builds `Φ(R)` over all `n` results), and it parallelises
//! almost perfectly: the padded leaf row splits into per-thread subtrees
//! hashed independently, with only the top `log(threads)` levels folded
//! serially. [`Parallelism`] is the knob every parallel entry point in
//! this workspace takes — [`MerkleTree::build_parallel`](crate::MerkleTree::build_parallel),
//! [`StreamingBuilder::parallel_root`](crate::StreamingBuilder::parallel_root),
//! and (re-exported through `ugc-core`) the scheme layer and the
//! Monte-Carlo harness.

/// How many worker threads a parallel operation may use.
///
/// The default is one thread per available hardware core. All parallel
/// code paths in this workspace are *deterministic regardless of the
/// thread count*: results are bit-identical to the serial path, so this
/// knob trades wall-clock time only.
///
/// # Examples
///
/// ```
/// use ugc_merkle::Parallelism;
///
/// assert!(Parallelism::default().get() >= 1);
/// assert_eq!(Parallelism::serial().get(), 1);
/// assert_eq!(Parallelism::threads(4).get(), 4);
/// assert_eq!(Parallelism::threads(0).get(), 1); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Worker count, always ≥ 1.
    threads: usize,
}

impl Parallelism {
    /// Exactly `n` worker threads (clamped to at least 1).
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Parallelism { threads: n.max(1) }
    }

    /// Single-threaded execution.
    #[must_use]
    pub fn serial() -> Self {
        Self::threads(1)
    }

    /// One worker per available hardware core (the default).
    #[must_use]
    pub fn available() -> Self {
        Self::threads(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The configured worker count (≥ 1).
    #[must_use]
    pub fn get(self) -> usize {
        self.threads
    }

    /// Whether this configuration runs on the calling thread only.
    #[must_use]
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::available()
    }
}

/// Number of independent leaf-row subtrees a parallel build splits into:
/// the largest power of two ≤ `threads`, capped so every subtree keeps at
/// least two leaves.
pub(crate) fn subtree_chunks(threads: usize, padded: u64) -> u64 {
    let t = threads.max(1) as u64;
    let floor_pow2 = 1u64 << (63 - t.leading_zeros());
    floor_pow2.min(padded / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_at_least_one() {
        assert!(Parallelism::default().get() >= 1);
        assert!(!Parallelism::threads(2).is_serial());
        assert!(Parallelism::serial().is_serial());
    }

    #[test]
    fn chunks_round_down_to_powers_of_two() {
        assert_eq!(subtree_chunks(1, 1 << 20), 1);
        assert_eq!(subtree_chunks(2, 1 << 20), 2);
        assert_eq!(subtree_chunks(3, 1 << 20), 2);
        assert_eq!(subtree_chunks(4, 1 << 20), 4);
        assert_eq!(subtree_chunks(7, 1 << 20), 4);
        assert_eq!(subtree_chunks(8, 1 << 20), 8);
    }

    #[test]
    fn chunks_capped_by_tree_size() {
        // Every subtree must keep ≥ 2 leaves.
        assert_eq!(subtree_chunks(8, 2), 1);
        assert_eq!(subtree_chunks(8, 4), 2);
        assert_eq!(subtree_chunks(8, 8), 4);
        assert_eq!(subtree_chunks(64, 16), 8);
    }
}
