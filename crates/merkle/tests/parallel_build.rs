//! Exhaustive serial/parallel equivalence: for every leaf count 1..=257
//! and every thread count 1..=8, the parallel builders must be
//! bit-identical to the serial ones — roots, proofs and hash-op counts.

use ugc_hash::{Md5, Sha256};
use ugc_merkle::{MerkleTree, Parallelism, StreamingBuilder};

fn leaves(n: u64) -> Vec<[u8; 12]> {
    (0..n)
        .map(|x| {
            let mut leaf = [0u8; 12];
            leaf[..8].copy_from_slice(&x.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            leaf
        })
        .collect()
}

#[test]
fn build_parallel_root_identical_for_all_sizes_and_thread_counts() {
    for n in 1..=257u64 {
        let ls = leaves(n);
        let serial: MerkleTree<Sha256> = MerkleTree::build(&ls).unwrap();
        for threads in 1..=8usize {
            let parallel: MerkleTree<Sha256> =
                MerkleTree::build_parallel(&ls, Parallelism::threads(threads)).unwrap();
            assert_eq!(
                serial.root(),
                parallel.root(),
                "root diverged at n={n} threads={threads}"
            );
            assert_eq!(
                parallel.hash_ops(),
                parallel.padded_leaf_count() - 1,
                "op count diverged at n={n} threads={threads}"
            );
        }
    }
}

#[test]
fn build_parallel_proofs_identical() {
    // Proofs read every internal node level, so equality here pins the
    // whole node array, not just the root. Sampled sizes keep the suite
    // fast; the root check above is exhaustive.
    for n in [1u64, 2, 3, 31, 64, 100, 255, 256, 257] {
        let ls = leaves(n);
        let serial: MerkleTree<Md5> = MerkleTree::build(&ls).unwrap();
        for threads in 1..=8usize {
            let parallel: MerkleTree<Md5> =
                MerkleTree::build_parallel(&ls, Parallelism::threads(threads)).unwrap();
            for i in 0..n {
                assert_eq!(
                    serial.prove(i).unwrap(),
                    parallel.prove(i).unwrap(),
                    "proof diverged at n={n} threads={threads} leaf={i}"
                );
            }
        }
    }
}

#[test]
fn streaming_parallel_root_identical_for_all_sizes_and_thread_counts() {
    for n in 1..=257u64 {
        let ls = leaves(n);
        let mut builder: StreamingBuilder<Sha256> = StreamingBuilder::new();
        for leaf in &ls {
            builder.push(leaf).unwrap();
        }
        let (serial_root, serial_ops) = builder.finalize_counted().unwrap();
        for threads in 1..=8usize {
            let (root, ops) =
                StreamingBuilder::<Sha256>::parallel_root(&ls, Parallelism::threads(threads))
                    .unwrap();
            assert_eq!(root, serial_root, "n={n} threads={threads}");
            assert_eq!(ops, serial_ops, "n={n} threads={threads}");
        }
    }
}
