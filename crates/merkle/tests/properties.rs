//! Property-based tests for the Merkle-tree invariants in DESIGN.md §5.

use proptest::prelude::*;
use ugc_hash::{Md5, Sha256};
use ugc_merkle::{MerkleProof, MerkleTree, Parallelism, PartialMerkleTree, StreamingBuilder};

fn arb_leaves() -> impl Strategy<Value = Vec<Vec<u8>>> {
    (1usize..64, 1usize..24).prop_flat_map(|(n, width)| {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), width..=width), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_leaf_proof_verifies(leaves in arb_leaves()) {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i as u64).unwrap();
            prop_assert!(proof.verify(&root, leaf));
        }
    }

    #[test]
    fn bit_flip_in_leaf_value_fails(leaves in arb_leaves(),
                                    which in any::<proptest::sample::Index>(),
                                    byte in any::<proptest::sample::Index>(),
                                    bit in 0u8..8) {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let i = which.index(leaves.len());
        let proof = tree.prove(i as u64).unwrap();
        let mut forged = leaves[i].clone();
        let b = byte.index(forged.len());
        forged[b] ^= 1 << bit;
        prop_assert!(!proof.verify(&tree.root(), &forged));
    }

    #[test]
    fn bit_flip_in_root_fails(leaves in arb_leaves(),
                              which in any::<proptest::sample::Index>(),
                              byte in 0usize..32, bit in 0u8..8) {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let i = which.index(leaves.len());
        let proof = tree.prove(i as u64).unwrap();
        let mut root = tree.root();
        root[byte] ^= 1 << bit;
        prop_assert!(!proof.verify(&root, &leaves[i]));
    }

    #[test]
    fn parallel_build_equals_serial_build(leaves in arb_leaves(), threads in 1usize..=8) {
        let serial: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let parallel: MerkleTree<Sha256> =
            MerkleTree::build_parallel(&leaves, Parallelism::threads(threads)).unwrap();
        prop_assert_eq!(serial.root(), parallel.root());
        prop_assert_eq!(serial.hash_ops(), parallel.hash_ops());
        for i in 0..leaves.len() as u64 {
            prop_assert_eq!(serial.prove(i).unwrap(), parallel.prove(i).unwrap());
        }
    }

    #[test]
    fn streaming_parallel_root_equals_batch_root(leaves in arb_leaves(), threads in 1usize..=8) {
        let tree: MerkleTree<Md5> = MerkleTree::build(&leaves).unwrap();
        let (root, ops) =
            StreamingBuilder::<Md5>::parallel_root(&leaves, Parallelism::threads(threads))
                .unwrap();
        prop_assert_eq!(root, tree.root());
        prop_assert_eq!(ops, tree.hash_ops());
    }

    #[test]
    fn streaming_root_equals_batch_root(leaves in arb_leaves()) {
        let tree: MerkleTree<Md5> = MerkleTree::build(&leaves).unwrap();
        let mut builder: StreamingBuilder<Md5> = StreamingBuilder::new();
        for leaf in &leaves {
            builder.push(leaf).unwrap();
        }
        prop_assert_eq!(builder.finalize().unwrap(), tree.root());
    }

    #[test]
    fn partial_tree_equivalent_for_any_level(leaves in arb_leaves(), ell_seed in any::<u32>()) {
        let n = leaves.len() as u64;
        let width = leaves[0].len();
        let provider = |i: u64| leaves[i as usize].clone();
        let full: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let height = full.height();
        let ell = 1 + ell_seed % height;
        let partial: PartialMerkleTree<Sha256> =
            PartialMerkleTree::build(n, width, ell, provider).unwrap();
        prop_assert_eq!(partial.root(), full.root());
        for i in 0..n {
            let (p_proof, _) = partial.prove_with(i, provider).unwrap();
            prop_assert_eq!(p_proof, full.prove(i).unwrap());
        }
    }

    #[test]
    fn proof_roundtrips_through_parts(leaves in arb_leaves(),
                                      which in any::<proptest::sample::Index>()) {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let i = which.index(leaves.len());
        let proof = tree.prove(i as u64).unwrap();
        let rebuilt: MerkleProof<Sha256> = MerkleProof::from_parts(
            proof.leaf_index(),
            proof.leaf_sibling().to_vec(),
            proof.digest_siblings().to_vec(),
        );
        prop_assert!(rebuilt.verify(&tree.root(), &leaves[i]));
    }

    #[test]
    fn proof_size_is_logarithmic(leaves in arb_leaves()) {
        let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let proof = tree.prove(0).unwrap();
        let width = leaves[0].len() as u64;
        let h = u64::from(tree.height());
        prop_assert_eq!(proof.payload_bytes(), width + (h - 1) * 32);
    }
}
