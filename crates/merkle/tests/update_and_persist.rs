//! Property-based tests for incremental updates and persistence: any
//! sequence of leaf updates must leave the tree indistinguishable from a
//! batch rebuild, and any tree must survive a serialise/load cycle.

use proptest::prelude::*;
use ugc_hash::{Md5, Sha256};
use ugc_merkle::MerkleTree;

type Leaf = [u8; 8];

fn arb_tree_and_updates() -> impl Strategy<Value = (Vec<Leaf>, Vec<(usize, Leaf)>)> {
    (1usize..48).prop_flat_map(|n| {
        let leaves = proptest::collection::vec(any::<[u8; 8]>(), n..=n);
        let updates = proptest::collection::vec((0..n, any::<[u8; 8]>()), 0..12);
        (leaves, updates)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn update_sequence_equals_batch_rebuild((leaves, updates) in arb_tree_and_updates()) {
        let mut incremental: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
        let mut current = leaves.clone();
        for (index, value) in updates {
            incremental.update_leaf(index as u64, &value).unwrap();
            current[index] = value;
        }
        let batch: MerkleTree<Sha256> = MerkleTree::build(&current).unwrap();
        prop_assert_eq!(incremental.root(), batch.root());
        // Proofs from the incrementally-updated tree must also match.
        for i in 0..current.len() as u64 {
            prop_assert_eq!(incremental.prove(i).unwrap(), batch.prove(i).unwrap());
        }
    }

    #[test]
    fn persist_roundtrip_any_tree(leaves in (1usize..40, 4usize..12).prop_flat_map(|(n, w)| {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), w..=w), n..=n)
    })) {
        let tree: MerkleTree<Md5> = MerkleTree::build(&leaves).unwrap();
        let blob = tree.to_bytes();
        let loaded: MerkleTree<Md5> = MerkleTree::from_bytes(&blob).unwrap();
        prop_assert_eq!(loaded.root(), tree.root());
        loaded.verify_integrity().unwrap();
        for (i, leaf) in leaves.iter().enumerate() {
            prop_assert!(loaded.prove(i as u64).unwrap().verify(&tree.root(), leaf));
        }
    }

    #[test]
    fn persist_blob_bitflip_never_yields_silently_wrong_tree(
        leaf_seed in any::<u64>(),
        flip_byte in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let tree: MerkleTree<Sha256> =
            MerkleTree::from_leaf_fn(16, 8, |x| (x ^ leaf_seed).to_le_bytes().to_vec()).unwrap();
        let mut blob = tree.to_bytes();
        let pos = flip_byte.index(blob.len());
        blob[pos] ^= 1 << flip_bit;
        // Either loading fails structurally, or the integrity check
        // catches the corruption, or (header-only cosmetic bits) the tree
        // still matches the original root. Nothing may pass integrity
        // with a different root.
        if let Ok(loaded) = MerkleTree::<Sha256>::from_bytes(&blob) {
            if loaded.verify_integrity().is_ok() {
                prop_assert_eq!(loaded.root(), tree.root());
            }
        }
    }
}
