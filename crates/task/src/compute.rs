//! Task handles and evaluation counting.

use crate::ComputeTask;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared handle to a compute task, as passed between grid actors.
pub type TaskRef = Arc<dyn ComputeTask>;

/// A thread-safe evaluation counter shared between a [`CountingTask`] and
/// whoever audits it.
///
/// # Examples
///
/// ```
/// use ugc_task::SharedCounter;
///
/// let c = SharedCounter::new();
/// c.add(3);
/// assert_eq!(c.get(), 3);
/// c.reset();
/// assert_eq!(c.get(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedCounter {
    count: Arc<AtomicU64>,
}

impl SharedCounter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Wraps a task and counts every `f` evaluation through it.
///
/// The experiment harness wraps each participant's task in one of these so
/// measured costs (e.g. the `2^ℓ` subtree-rebuild evaluations of Section
/// 3.3, or a retry attacker's total work) come from actual call counts, not
/// from formulas.
///
/// # Examples
///
/// ```
/// use ugc_task::{ComputeTask, CountingTask};
/// use ugc_task::workloads::PasswordSearch;
///
/// let counted = CountingTask::new(PasswordSearch::with_hidden_password(1, 5));
/// let _ = counted.compute(0);
/// let _ = counted.compute(1);
/// assert_eq!(counted.evaluations(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingTask<T> {
    inner: T,
    counter: SharedCounter,
}

impl<T: ComputeTask> CountingTask<T> {
    /// Wraps `inner` with a fresh counter.
    #[must_use]
    pub fn new(inner: T) -> Self {
        CountingTask {
            inner,
            counter: SharedCounter::new(),
        }
    }

    /// Wraps `inner`, recording evaluations into an existing counter.
    #[must_use]
    pub fn with_counter(inner: T, counter: SharedCounter) -> Self {
        CountingTask { inner, counter }
    }

    /// Number of `compute` calls so far.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.counter.get()
    }

    /// Handle to the underlying counter.
    #[must_use]
    pub fn counter(&self) -> SharedCounter {
        self.counter.clone()
    }

    /// The wrapped task.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: ComputeTask> ComputeTask for CountingTask<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn output_width(&self) -> usize {
        self.inner.output_width()
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        self.counter.add(1);
        self.inner.compute(x)
    }

    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        // One tick per input, exactly as the scalar path counts, so
        // batched and unbatched runs report identical evaluation totals.
        self.counter.add(xs.len() as u64);
        self.inner.compute_batch(xs)
    }

    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        // Verification cost is tracked by the caller's ledger, not the
        // evaluation counter: cheap verifiers do not evaluate f.
        self.inner.verify(x, claimed)
    }

    fn cheap_verification(&self) -> bool {
        self.inner.cheap_verification()
    }

    fn unit_cost(&self) -> u64 {
        self.inner.unit_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ComputeTask for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn output_width(&self) -> usize {
            8
        }
        fn compute(&self, x: u64) -> Vec<u8> {
            x.to_le_bytes().to_vec()
        }
    }

    #[test]
    fn counts_compute_calls() {
        let t = CountingTask::new(Echo);
        for x in 0..10 {
            let _ = t.compute(x);
        }
        assert_eq!(t.evaluations(), 10);
    }

    #[test]
    fn shared_counter_is_shared() {
        let counter = SharedCounter::new();
        let a = CountingTask::with_counter(Echo, counter.clone());
        let b = CountingTask::with_counter(Echo, counter.clone());
        let _ = a.compute(1);
        let _ = b.compute(2);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn counter_threads() {
        let counter = SharedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
    }

    #[test]
    fn batch_counts_one_tick_per_input() {
        let t = CountingTask::new(Echo);
        let xs: Vec<u64> = (0..13).collect();
        let batched = t.compute_batch(&xs);
        assert_eq!(t.evaluations(), 13);
        let scalar: Vec<Vec<u8>> = xs.iter().map(|&x| t.compute(x)).collect();
        assert_eq!(batched, scalar);
        assert_eq!(t.evaluations(), 26);
    }

    #[test]
    fn default_verify_not_counted() {
        let t = CountingTask::new(Echo);
        assert!(t.verify(3, &3u64.to_le_bytes()));
        assert_eq!(t.evaluations(), 0, "verify must not tick the f counter");
    }

    #[test]
    fn delegates_metadata() {
        let t = CountingTask::new(Echo);
        assert_eq!(t.name(), "echo");
        assert_eq!(t.output_width(), 8);
        assert_eq!(t.unit_cost(), 1);
        assert!(!t.cheap_verification());
    }
}
