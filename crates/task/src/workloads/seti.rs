//! SETI-style narrowband signal search (the paper's SETI@home example).
//!
//! Real SETI@home distributes recorded radio chunks; participants compute
//! power spectra hunting for narrowband peaks. We cannot ship telescope
//! tapes, so each input deterministically synthesises its own chunk —
//! Gaussian noise, with a sinusoidal carrier planted in a seed-chosen
//! fraction of chunks — and `f` computes a small discrete Fourier power
//! spectrum and reports the peak-to-mean power ratio (SNR). The code path
//! matches the real thing where it matters for the paper: `f` is
//! arithmetic-heavy, the screener is a cheap threshold, and interesting
//! results are rare.

use crate::{ComputeTask, SplitMix64, ThresholdScreener};

/// Synthetic radio-chunk analysis task.
///
/// Output layout (16 bytes): peak-to-mean power ratio as `f64` (the SNR the
/// screener thresholds) followed by the peak bin index as `u64`.
///
/// # Examples
///
/// ```
/// use ugc_task::{ComputeTask, Screener};
/// use ugc_task::workloads::SetiSignal;
///
/// let task = SetiSignal::new(42);
/// let out = task.compute(7);
/// assert_eq!(out.len(), 16);
/// let screener = task.screener();
/// // Most chunks are pure noise and screen out.
/// let hits = (0..100u64)
///     .filter(|&x| screener.screen(x, &task.compute(x)).is_some())
///     .count();
/// assert!(hits < 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetiSignal {
    seed: u64,
    samples: usize,
    bins: usize,
    plant_rate: f64,
    amplitude: f64,
    snr_threshold: f64,
}

impl SetiSignal {
    /// Creates the task with the default chunk shape: 128 samples,
    /// 16 spectral bins, a carrier planted in 2% of chunks at amplitude
    /// 1.5, screener threshold at SNR 8.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SetiSignal {
            seed,
            samples: 128,
            bins: 16,
            plant_rate: 0.02,
            amplitude: 1.5,
            snr_threshold: 8.0,
        }
    }

    /// Overrides the chunk shape.
    ///
    /// # Panics
    ///
    /// Panics unless `samples ≥ 2`, `bins ≥ 2` and
    /// `0 ≤ plant_rate ≤ 1`.
    #[must_use]
    pub fn with_shape(seed: u64, samples: usize, bins: usize, plant_rate: f64) -> Self {
        assert!(samples >= 2, "need at least two samples");
        assert!(bins >= 2, "need at least two bins");
        assert!(
            (0.0..=1.0).contains(&plant_rate),
            "plant rate must be a probability"
        );
        SetiSignal {
            seed,
            samples,
            bins,
            plant_rate,
            amplitude: 1.5,
            snr_threshold: 8.0,
        }
    }

    /// Whether chunk `x` carries a planted carrier (ground truth for
    /// tests and detection-rate studies).
    #[must_use]
    pub fn has_planted_signal(&self, x: u64) -> bool {
        let mut rng = SplitMix64::for_stream(self.seed ^ 0x7365_7469, x);
        rng.next_f64() < self.plant_rate
    }

    /// The SNR threshold screener for this task.
    #[must_use]
    pub fn screener(&self) -> ThresholdScreener {
        ThresholdScreener::above(self.snr_threshold)
    }

    /// Synthesises the chunk for input `x`.
    fn synthesize(&self, x: u64) -> Vec<f64> {
        let mut noise_rng = SplitMix64::for_stream(self.seed, x);
        let mut chunk: Vec<f64> = (0..self.samples)
            .map(|_| noise_rng.next_gaussian())
            .collect();
        if self.has_planted_signal(x) {
            let mut carrier_rng = SplitMix64::for_stream(self.seed ^ 0x6361_7272, x);
            // Plant on an exact analysis bin so the DFT concentrates it.
            let bin = 1 + carrier_rng.next_below(self.bins as u64 - 1) as usize;
            let phase = carrier_rng.next_f64() * core::f64::consts::TAU;
            let omega = core::f64::consts::TAU * bin as f64 / self.samples as f64;
            for (t, s) in chunk.iter_mut().enumerate() {
                *s += self.amplitude * (omega * t as f64 + phase).cos();
            }
        }
        chunk
    }

    /// Naive DFT power at each analysed bin.
    fn power_spectrum(&self, chunk: &[f64]) -> Vec<f64> {
        let n = chunk.len() as f64;
        (0..self.bins)
            .map(|k| {
                let omega = core::f64::consts::TAU * k as f64 / n;
                let (mut re, mut im) = (0.0f64, 0.0f64);
                for (t, &s) in chunk.iter().enumerate() {
                    let angle = omega * t as f64;
                    re += s * angle.cos();
                    im -= s * angle.sin();
                }
                (re * re + im * im) / n
            })
            .collect()
    }
}

impl ComputeTask for SetiSignal {
    fn name(&self) -> &str {
        "seti-signal"
    }

    fn output_width(&self) -> usize {
        16
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        let chunk = self.synthesize(x);
        let spectrum = self.power_spectrum(&chunk);
        // Ignore the DC bin when hunting carriers.
        let (peak_bin, peak_power) = spectrum
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least two bins");
        let mean: f64 = spectrum.iter().skip(1).sum::<f64>() / (self.bins - 1) as f64;
        let snr = if mean > 0.0 { peak_power / mean } else { 0.0 };
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&snr.to_le_bytes());
        out.extend_from_slice(&(peak_bin as u64).to_le_bytes());
        out
    }

    /// ~`samples × bins` fused multiply-adds; an order of magnitude more
    /// work than one password hash.
    fn unit_cost(&self) -> u64 {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Screener;

    fn snr_of(out: &[u8]) -> f64 {
        f64::from_le_bytes(out[..8].try_into().unwrap())
    }

    #[test]
    fn deterministic() {
        let a = SetiSignal::new(11);
        let b = SetiSignal::new(11);
        for x in 0..10 {
            assert_eq!(a.compute(x), b.compute(x));
        }
    }

    #[test]
    fn output_width_respected() {
        let task = SetiSignal::new(1);
        assert_eq!(task.compute(0).len(), task.output_width());
    }

    #[test]
    fn planted_chunks_have_higher_snr() {
        let task = SetiSignal::new(2024);
        let (mut planted, mut noise) = (Vec::new(), Vec::new());
        for x in 0..400u64 {
            let snr = snr_of(&task.compute(x));
            if task.has_planted_signal(x) {
                planted.push(snr);
            } else {
                noise.push(snr);
            }
        }
        assert!(
            !planted.is_empty(),
            "seed should plant some signals in 400 chunks"
        );
        let mean_planted = planted.iter().sum::<f64>() / planted.len() as f64;
        let mean_noise = noise.iter().sum::<f64>() / noise.len() as f64;
        assert!(
            mean_planted > 2.0 * mean_noise,
            "planted SNR {mean_planted:.2} not well above noise {mean_noise:.2}"
        );
    }

    #[test]
    fn screener_finds_mostly_planted_chunks() {
        let task = SetiSignal::new(7);
        let screener = task.screener();
        let mut hits = 0usize;
        let mut true_hits = 0usize;
        for x in 0..1000u64 {
            if screener.screen(x, &task.compute(x)).is_some() {
                hits += 1;
                if task.has_planted_signal(x) {
                    true_hits += 1;
                }
            }
        }
        assert!(hits > 0, "threshold should fire on some chunks");
        assert!(
            true_hits * 2 >= hits,
            "detections should be dominated by planted signals ({true_hits}/{hits})"
        );
    }

    #[test]
    fn plant_rate_statistics() {
        let task = SetiSignal::with_shape(5, 64, 8, 0.1);
        let planted = (0..5000u64).filter(|&x| task.has_planted_signal(x)).count();
        let rate = planted as f64 / 5000.0;
        assert!((rate - 0.1).abs() < 0.02, "plant rate {rate}");
    }

    #[test]
    fn pure_tone_concentrates_in_bin() {
        // With plant_rate = 1 every chunk carries a tone; its peak bin must
        // be the planted one, recovered from the output's second field.
        let task = SetiSignal::with_shape(3, 128, 16, 1.0);
        for x in 0..20u64 {
            let out = task.compute(x);
            let snr = snr_of(&out);
            assert!(snr > 3.0, "chunk {x} tone not detected (snr {snr:.2})");
        }
    }

    #[test]
    #[should_panic(expected = "plant rate must be a probability")]
    fn invalid_plant_rate_rejected() {
        let _ = SetiSignal::with_shape(0, 64, 8, 1.5);
    }
}
