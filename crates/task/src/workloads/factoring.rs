//! Integer factoring: the paper's example of *asymmetric verification*.
//!
//! "To verify whether f(xi) is correct does not necessarily mean that the
//! supervisor has to re-compute f(xi). … factoring large numbers is an
//! expensive computation, but verifying the factoring results is trivial."
//! (Section 3.1.)
//!
//! `f(x)` factors the candidate `N(x)` — Pollard–Brent rho plus
//! deterministic Miller–Rabin, both from scratch — and returns
//! `(p, N/p)` with `p` the smallest prime factor (`(N, 1)` when `N` is
//! prime). [`ComputeTask::verify`] checks a claimed result with one
//! multiplication and one primality test, so
//! [`cheap_verification`](ComputeTask::cheap_verification) is `true` and
//! the supervisor's CBS cost drops from `m·C_f` to `m` cheap checks.

use super::primality::is_prime_u64;
use crate::ComputeTask;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Pollard–Brent rho with polynomial `x² + c`; returns a nontrivial factor
/// of composite `n`, or `None` if this `c` cycles without one.
fn pollard_brent(n: u64, c: u64) -> Option<u64> {
    if n % 2 == 0 {
        return Some(2);
    }
    let f = |x: u64| (mulmod(x, x, n) + c) % n;
    let (mut x, mut ys) = (2u64, 2u64);
    let (mut y, mut d) = (2u64, 1u64);
    let mut r = 1u64;
    let mut q = 1u64;
    const BATCH: u64 = 128;
    while d == 1 {
        x = y;
        for _ in 0..r {
            y = f(y);
        }
        let mut k = 0;
        while k < r && d == 1 {
            ys = y;
            let limit = BATCH.min(r - k);
            for _ in 0..limit {
                y = f(y);
                q = mulmod(q, x.abs_diff(y).max(1), n);
            }
            d = gcd(q, n);
            k += limit;
        }
        r *= 2;
        if r > 1 << 22 {
            return None; // give up on this c
        }
    }
    if d == n {
        // Backtrack one by one.
        loop {
            ys = f(ys);
            d = gcd(x.abs_diff(ys).max(1), n);
            if d > 1 {
                break;
            }
        }
    }
    (d != n).then_some(d)
}

/// Any nontrivial factor of composite `n` (deterministic: increasing `c`).
fn split(n: u64) -> u64 {
    for small in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
        if n % small == 0 {
            return small;
        }
    }
    for c in 1..64 {
        if let Some(d) = pollard_brent(n, c) {
            return d;
        }
    }
    unreachable!("Pollard–Brent exhausted 64 polynomials on a u64 composite")
}

/// Smallest prime factor of `n ≥ 2` (returns `n` itself when prime).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use ugc_task::workloads::smallest_prime_factor;
///
/// assert_eq!(smallest_prime_factor(2), 2);
/// assert_eq!(smallest_prime_factor(97), 97);
/// assert_eq!(smallest_prime_factor(91), 7); // 7 × 13
/// assert_eq!(smallest_prime_factor(4_294_967_291 * 3), 3);
/// ```
#[must_use]
pub fn smallest_prime_factor(n: u64) -> u64 {
    assert!(n >= 2, "no prime factors below 2");
    if n % 2 == 0 {
        return 2;
    }
    if is_prime_u64(n) {
        return n;
    }
    let d = split(n);
    let other = n / d;
    let left = if is_prime_u64(d) {
        d
    } else {
        smallest_prime_factor(d)
    };
    let right = if is_prime_u64(other) {
        other
    } else {
        smallest_prime_factor(other)
    };
    left.min(right)
}

/// Factoring search over candidates `N(x) = base + stride·x`.
///
/// Output layout (16 bytes): smallest prime factor `p` then cofactor
/// `N/p`, both `u64` little-endian (`(N, 1)` for prime `N`).
///
/// # Examples
///
/// ```
/// use ugc_task::ComputeTask;
/// use ugc_task::workloads::FactoringSearch;
///
/// let task = FactoringSearch::new(1_000_000_007, 2); // odd candidates
/// let out = task.compute(0); // 1000000007 is prime
/// assert_eq!(&out[..8], &1_000_000_007u64.to_le_bytes());
/// assert!(task.cheap_verification());
/// assert!(task.verify(0, &out));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactoringSearch {
    base: u64,
    stride: u64,
}

impl FactoringSearch {
    /// Searches candidates `base + stride·x`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `base < 2` (candidates must stay ≥ 2).
    #[must_use]
    pub fn new(base: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(base >= 2, "candidates must be at least 2");
        FactoringSearch { base, stride }
    }

    /// The candidate `N(x)`.
    #[must_use]
    pub fn candidate(&self, x: u64) -> u64 {
        self.base.saturating_add(self.stride.saturating_mul(x))
    }
}

impl ComputeTask for FactoringSearch {
    fn name(&self) -> &str {
        "factoring-search"
    }

    fn output_width(&self) -> usize {
        16
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        let n = self.candidate(x);
        let p = smallest_prime_factor(n);
        let cofactor = n / p;
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&cofactor.to_le_bytes());
        out
    }

    /// Accepts any claimed `(p, m)` with `p` prime and `p·m = N(x)` —
    /// one multiplication plus one Miller–Rabin round instead of a full
    /// factorisation. (Minimality of `p` is *not* checked; forging a
    /// different valid factorisation still requires factoring `N`.)
    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        if claimed.len() != 16 {
            return false;
        }
        let p = u64::from_le_bytes(claimed[..8].try_into().expect("checked length"));
        let m = u64::from_le_bytes(claimed[8..].try_into().expect("checked length"));
        if p < 2 {
            return false;
        }
        let n = self.candidate(x);
        p.checked_mul(m) == Some(n) && is_prime_u64(p)
    }

    fn cheap_verification(&self) -> bool {
        true
    }

    /// Factoring dominates everything else in this suite.
    fn unit_cost(&self) -> u64 {
        200
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spf_small_numbers() {
        let expected = [
            (2u64, 2u64),
            (3, 3),
            (4, 2),
            (9, 3),
            (15, 3),
            (49, 7),
            (97, 97),
            (91, 7),
            (1001, 7),
        ];
        for (n, spf) in expected {
            assert_eq!(smallest_prime_factor(n), spf, "n={n}");
        }
    }

    #[test]
    fn spf_agrees_with_trial_division() {
        let naive = |n: u64| (2..=n).find(|d| n % d == 0).unwrap();
        for n in 2..2000u64 {
            assert_eq!(smallest_prime_factor(n), naive(n), "n={n}");
        }
    }

    #[test]
    fn spf_large_semiprime() {
        let p = 1_000_003u64;
        let q = 1_000_033u64;
        assert_eq!(smallest_prime_factor(p * q), p);
    }

    #[test]
    fn spf_large_prime() {
        let p = (1u64 << 61) - 1;
        assert_eq!(smallest_prime_factor(p), p);
    }

    #[test]
    fn spf_prime_power() {
        assert_eq!(smallest_prime_factor(3u64.pow(20)), 3);
        let p = 65_537u64;
        assert_eq!(smallest_prime_factor(p * p), p);
    }

    #[test]
    fn compute_emits_spf_and_cofactor() {
        let task = FactoringSearch::new(91, 1);
        let out = task.compute(0);
        assert_eq!(&out[..8], &7u64.to_le_bytes());
        assert_eq!(&out[8..], &13u64.to_le_bytes());
    }

    #[test]
    fn verify_accepts_honest_results() {
        let task = FactoringSearch::new(1_000_001, 2);
        for x in 0..50 {
            let out = task.compute(x);
            assert!(task.verify(x, &out), "x={x}");
        }
    }

    #[test]
    fn verify_accepts_any_valid_prime_split() {
        // 1001 = 7 × 11 × 13; (11, 91) is valid even though spf is 7.
        let task = FactoringSearch::new(1001, 1);
        let mut alt = Vec::new();
        alt.extend_from_slice(&11u64.to_le_bytes());
        alt.extend_from_slice(&91u64.to_le_bytes());
        assert!(task.verify(0, &alt));
    }

    #[test]
    fn verify_rejects_junk() {
        let task = FactoringSearch::new(1001, 1);
        // Wrong product.
        let mut bad = Vec::new();
        bad.extend_from_slice(&7u64.to_le_bytes());
        bad.extend_from_slice(&11u64.to_le_bytes());
        assert!(!task.verify(0, &bad));
        // Composite "prime": 77 × 13 = 1001 but 77 = 7 × 11.
        let mut composite = Vec::new();
        composite.extend_from_slice(&77u64.to_le_bytes());
        composite.extend_from_slice(&13u64.to_le_bytes());
        assert!(!task.verify(0, &composite));
        // p = 1 is not allowed even with m = N.
        let mut unit = Vec::new();
        unit.extend_from_slice(&1u64.to_le_bytes());
        unit.extend_from_slice(&1001u64.to_le_bytes());
        assert!(!task.verify(0, &unit));
        // Wrong width.
        assert!(!task.verify(0, &[0u8; 15]));
    }

    #[test]
    fn prime_candidates_encode_n_comma_one() {
        let task = FactoringSearch::new(97, 1);
        let out = task.compute(0);
        assert_eq!(&out[..8], &97u64.to_le_bytes());
        assert_eq!(&out[8..], &1u64.to_le_bytes());
        assert!(task.verify(0, &out));
    }

    #[test]
    fn flags() {
        let task = FactoringSearch::new(2, 1);
        assert!(task.cheap_verification());
        assert!(task.unit_cost() > 100);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_base_rejected() {
        let _ = FactoringSearch::new(1, 1);
    }

    #[test]
    fn deterministic() {
        let a = FactoringSearch::new(999_999_937, 2);
        for x in 0..20 {
            assert_eq!(a.compute(x), a.compute(x));
        }
    }
}
