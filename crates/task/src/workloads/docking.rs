//! Synthetic drug-candidate docking (the paper's IBM smallpox example).
//!
//! The smallpox grid screened "hundreds of millions of molecules" with an
//! expensive per-molecule scoring function. Here each input deterministically
//! synthesises a molecule descriptor and `f` runs a fixed-step gradient
//! descent on a quadratic-plus-coupling energy landscape, reporting the
//! final binding energy. Only elementary IEEE arithmetic is used
//! (no transcendental functions), so results are bit-identical across
//! platforms — a requirement for verifiable commitments.

use crate::{ComputeTask, SplitMix64, ThresholdScreener};

/// Synthetic molecule-docking score minimisation.
///
/// Output layout (16 bytes): final binding energy as `f64` (screened
/// low-is-interesting) followed by the iteration count actually run as
/// `u64` (constant here, but kept in the result so the output space is not
/// trivially guessable from the energy alone).
///
/// # Examples
///
/// ```
/// use ugc_task::{ComputeTask, Screener};
/// use ugc_task::workloads::DrugScreening;
///
/// let task = DrugScreening::new(1);
/// let out = task.compute(3);
/// let energy = f64::from_le_bytes(out[..8].try_into().unwrap());
/// assert!(energy.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrugScreening {
    seed: u64,
    descriptor_len: usize,
    iterations: u32,
    learning_rate: f64,
    energy_threshold: f64,
}

impl DrugScreening {
    /// Default shape: 16-dimensional descriptors, 64 descent steps,
    /// screener threshold at energy 0.05.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DrugScreening {
            seed,
            descriptor_len: 16,
            iterations: 64,
            learning_rate: 0.05,
            energy_threshold: 0.05,
        }
    }

    /// Overrides descriptor dimension and optimisation length.
    ///
    /// # Panics
    ///
    /// Panics unless `descriptor_len ≥ 2` and `iterations ≥ 1`.
    #[must_use]
    pub fn with_shape(seed: u64, descriptor_len: usize, iterations: u32) -> Self {
        assert!(descriptor_len >= 2, "need at least two dimensions");
        assert!(iterations >= 1, "need at least one iteration");
        DrugScreening {
            seed,
            descriptor_len,
            iterations,
            learning_rate: 0.05,
            energy_threshold: 0.05,
        }
    }

    /// Screener reporting molecules whose final energy is below threshold.
    #[must_use]
    pub fn screener(&self) -> ThresholdScreener {
        ThresholdScreener::below(self.energy_threshold)
    }

    /// Molecule parameters `(stiffness a_i, optimum b_i)` and the starting
    /// conformation for input `x`.
    fn molecule(&self, x: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::for_stream(self.seed, x);
        let k = self.descriptor_len;
        let stiffness: Vec<f64> = (0..k).map(|_| 0.5 + rng.next_f64()).collect();
        let optimum: Vec<f64> = (0..k).map(|_| 2.0 * rng.next_f64() - 1.0).collect();
        let start: Vec<f64> = (0..k).map(|_| 2.0 * rng.next_f64() - 1.0).collect();
        (stiffness, optimum, start)
    }

    /// Binding energy: a quadratic well per dimension plus a quartic
    /// neighbour coupling. Strictly non-negative with minimum near the
    /// optimum conformation.
    fn energy(stiffness: &[f64], optimum: &[f64], theta: &[f64]) -> f64 {
        let k = theta.len();
        let mut e = 0.0;
        for i in 0..k {
            let d = theta[i] - optimum[i];
            e += stiffness[i] * d * d;
        }
        for i in 0..k - 1 {
            let c = theta[i] * theta[i + 1];
            e += 0.1 * c * c;
        }
        e
    }

    /// Analytic gradient of [`energy`](Self::energy).
    fn gradient(stiffness: &[f64], optimum: &[f64], theta: &[f64], grad: &mut [f64]) {
        let k = theta.len();
        for i in 0..k {
            grad[i] = 2.0 * stiffness[i] * (theta[i] - optimum[i]);
        }
        for i in 0..k - 1 {
            let c = theta[i] * theta[i + 1];
            grad[i] += 0.2 * c * theta[i + 1];
            grad[i + 1] += 0.2 * c * theta[i];
        }
    }

    /// Runs the descent and returns `(initial_energy, final_energy)`.
    fn dock(&self, x: u64) -> (f64, f64) {
        let (stiffness, optimum, mut theta) = self.molecule(x);
        let initial = Self::energy(&stiffness, &optimum, &theta);
        let mut grad = vec![0.0f64; theta.len()];
        for _ in 0..self.iterations {
            Self::gradient(&stiffness, &optimum, &theta, &mut grad);
            for (t, g) in theta.iter_mut().zip(&grad) {
                *t -= self.learning_rate * g;
            }
        }
        (initial, Self::energy(&stiffness, &optimum, &theta))
    }
}

impl ComputeTask for DrugScreening {
    fn name(&self) -> &str {
        "drug-screening"
    }

    fn output_width(&self) -> usize {
        16
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        let (_, final_energy) = self.dock(x);
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&final_energy.to_le_bytes());
        out.extend_from_slice(&u64::from(self.iterations).to_le_bytes());
        out
    }

    /// `iterations × descriptor_len` gradient terms; the heaviest of the
    /// four workloads.
    fn unit_cost(&self) -> u64 {
        u64::from(self.iterations) * self.descriptor_len as u64 / 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Screener;

    #[test]
    fn deterministic() {
        let a = DrugScreening::new(5);
        let b = DrugScreening::new(5);
        for x in 0..10 {
            assert_eq!(a.compute(x), b.compute(x));
        }
    }

    #[test]
    fn output_width_respected() {
        let task = DrugScreening::new(5);
        assert_eq!(task.compute(0).len(), task.output_width());
    }

    #[test]
    fn descent_reduces_energy() {
        let task = DrugScreening::new(8);
        for x in 0..50u64 {
            let (initial, final_e) = task.dock(x);
            assert!(
                final_e <= initial + 1e-9,
                "molecule {x}: energy rose from {initial} to {final_e}"
            );
            assert!(final_e >= 0.0, "energy must stay non-negative");
        }
    }

    #[test]
    fn longer_optimisation_docks_deeper() {
        let short = DrugScreening::with_shape(3, 16, 4);
        let long = DrugScreening::with_shape(3, 16, 256);
        let mut short_total = 0.0;
        let mut long_total = 0.0;
        for x in 0..50u64 {
            short_total += short.dock(x).1;
            long_total += long.dock(x).1;
        }
        assert!(long_total < short_total);
    }

    #[test]
    fn screener_reports_low_energy_molecules() {
        let task = DrugScreening::new(77);
        let screener = task.screener();
        let hits = (0..500u64)
            .filter(|&x| screener.screen(x, &task.compute(x)).is_some())
            .count();
        // Interesting results must be rare but present.
        assert!(hits > 0, "no hits at all");
        assert!(hits < 250, "threshold admits too much: {hits}");
    }

    #[test]
    fn molecules_differ_across_inputs() {
        let task = DrugScreening::new(1);
        assert_ne!(task.compute(0), task.compute(1));
    }

    #[test]
    fn unit_cost_scales_with_iterations() {
        assert!(
            DrugScreening::with_shape(0, 16, 256).unit_cost()
                > DrugScreening::with_shape(0, 16, 16).unit_cost()
        );
    }

    #[test]
    #[should_panic(expected = "at least two dimensions")]
    fn tiny_descriptor_rejected() {
        let _ = DrugScreening::with_shape(0, 1, 10);
    }
}
