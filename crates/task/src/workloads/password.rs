//! Brute-force password search: the paper's Section 3 running example.
//!
//! The supervisor knows a password digest and farms the key space out to
//! participants; `f(x) = MD5^w(salt ‖ x)` and the screener reports any `x`
//! whose digest matches the target. Because `f` is one-way this workload is
//! also compatible with the Golle–Mironov ringer scheme, making it the
//! baseline-comparison workload.

use crate::{ComputeTask, MatchScreener};
use ugc_hash::{digest_iterated_batch, HashFunction, LaneWidth, Md5};

/// Keyed password-hash search over a `u64` key space.
///
/// The `work_factor` iterates MD5 to scale the per-evaluation cost `C_f` —
/// the knob the Eq. (5) economics experiments sweep.
///
/// # Examples
///
/// ```
/// use ugc_task::ComputeTask;
/// use ugc_task::workloads::PasswordSearch;
///
/// let task = PasswordSearch::with_hidden_password(7, 1234);
/// assert_eq!(task.output_width(), 16);
/// // Only the hidden password hashes to the target:
/// assert_eq!(task.compute(1234), task.target().to_vec());
/// assert_ne!(task.compute(1233), task.target().to_vec());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordSearch {
    salt: u64,
    target: [u8; 16],
    work_factor: u32,
}

impl PasswordSearch {
    /// Creates a search whose hidden password is the input `password`.
    ///
    /// The salt is derived from `seed`; `work_factor` defaults to 1.
    #[must_use]
    pub fn with_hidden_password(seed: u64, password: u64) -> Self {
        Self::with_work_factor(seed, password, 1)
    }

    /// Like [`with_hidden_password`](Self::with_hidden_password) with an
    /// explicit MD5 iteration count (`C_f` scale).
    ///
    /// # Panics
    ///
    /// Panics if `work_factor == 0`.
    #[must_use]
    pub fn with_work_factor(seed: u64, password: u64, work_factor: u32) -> Self {
        assert!(work_factor > 0, "work factor must be positive");
        let mut task = PasswordSearch {
            salt: seed,
            target: [0u8; 16],
            work_factor,
        };
        task.target = Self::digest(task.salt, password, work_factor);
        task
    }

    fn digest(salt: u64, x: u64, work_factor: u32) -> [u8; 16] {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&salt.to_le_bytes());
        material[8..].copy_from_slice(&x.to_le_bytes());
        let mut digest = Md5::digest(&material);
        for _ in 1..work_factor {
            digest = Md5::digest(&digest);
        }
        digest
    }

    /// The digest being searched for.
    #[must_use]
    pub fn target(&self) -> &[u8; 16] {
        &self.target
    }

    /// Screener that reports inputs hashing to the target.
    #[must_use]
    pub fn match_screener(&self) -> MatchScreener {
        MatchScreener::new(self.target.to_vec())
    }
}

impl ComputeTask for PasswordSearch {
    fn name(&self) -> &str {
        "password-search"
    }

    fn output_width(&self) -> usize {
        16
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        Self::digest(self.salt, x, self.work_factor).to_vec()
    }

    /// Batch evaluation through the MD5 message-parallel lane kernels:
    /// each candidate's `salt ‖ x` material hashes in a lane of the
    /// transposed compression state, and the `MD5^w` re-hash chain steps
    /// all lanes together. Byte-identical to per-input [`compute`]
    /// (`f(x) = H^w(salt ‖ x)` either way).
    ///
    /// [`compute`]: Self::compute
    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        let materials: Vec<[u8; 16]> = xs
            .iter()
            .map(|&x| {
                let mut material = [0u8; 16];
                material[..8].copy_from_slice(&self.salt.to_le_bytes());
                material[8..].copy_from_slice(&x.to_le_bytes());
                material
            })
            .collect();
        let seeds: Vec<&[u8]> = materials.iter().map(|m| m.as_slice()).collect();
        digest_iterated_batch::<Md5>(&seeds, u64::from(self.work_factor), LaneWidth::default())
            .into_iter()
            .map(|d| d.to_vec())
            .collect()
    }

    fn unit_cost(&self) -> u64 {
        u64::from(self.work_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Screener;

    #[test]
    fn hidden_password_is_found_by_screener() {
        let task = PasswordSearch::with_hidden_password(99, 500);
        let screener = task.match_screener();
        let hits: Vec<u64> = (0..1000u64)
            .filter(|&x| screener.screen(x, &task.compute(x)).is_some())
            .collect();
        assert_eq!(hits, vec![500]);
    }

    #[test]
    fn deterministic() {
        let a = PasswordSearch::with_hidden_password(1, 2);
        let b = PasswordSearch::with_hidden_password(1, 2);
        assert_eq!(a.compute(77), b.compute(77));
        assert_eq!(a.target(), b.target());
    }

    #[test]
    fn different_salts_differ() {
        let a = PasswordSearch::with_hidden_password(1, 2);
        let b = PasswordSearch::with_hidden_password(3, 2);
        assert_ne!(a.compute(77), b.compute(77));
    }

    #[test]
    fn work_factor_changes_digest_and_cost() {
        let w1 = PasswordSearch::with_work_factor(5, 0, 1);
        let w3 = PasswordSearch::with_work_factor(5, 0, 3);
        assert_ne!(w1.compute(9), w3.compute(9));
        assert_eq!(w1.unit_cost(), 1);
        assert_eq!(w3.unit_cost(), 3);
    }

    #[test]
    fn work_factor_iterates_md5() {
        let w2 = PasswordSearch::with_work_factor(5, 0, 2);
        let once = PasswordSearch::with_work_factor(5, 0, 1).compute(9);
        assert_eq!(w2.compute(9), Md5::digest(&once).to_vec());
    }

    #[test]
    #[should_panic(expected = "work factor must be positive")]
    fn zero_work_factor_rejected() {
        let _ = PasswordSearch::with_work_factor(1, 1, 0);
    }

    #[test]
    fn output_width_matches_md5() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        assert_eq!(task.compute(0).len(), task.output_width());
    }

    #[test]
    fn compute_batch_matches_compute() {
        for work_factor in [1u32, 2, 5] {
            let task = PasswordSearch::with_work_factor(11, 3, work_factor);
            for n in [0usize, 1, 3, 4, 7, 8, 9, 17] {
                let xs: Vec<u64> = (0..n as u64).map(|x| x.wrapping_mul(0x1234_5677)).collect();
                let batched = task.compute_batch(&xs);
                let scalar: Vec<Vec<u8>> = xs.iter().map(|&x| task.compute(x)).collect();
                assert_eq!(batched, scalar, "w={work_factor} n={n}");
            }
        }
    }

    #[test]
    fn compute_batch_override_survives_indirection() {
        // The blanket impls must forward compute_batch, or a trait object
        // silently falls back to the scalar default.
        let task = PasswordSearch::with_hidden_password(4, 9);
        let xs: Vec<u64> = (0..9).collect();
        let expected = task.compute_batch(&xs);
        let by_ref: &dyn ComputeTask = &task;
        assert_eq!(by_ref.compute_batch(&xs), expected);
        let boxed: Box<dyn ComputeTask> = Box::new(task.clone());
        assert_eq!(boxed.compute_batch(&xs), expected);
        let arc: std::sync::Arc<dyn ComputeTask> = std::sync::Arc::new(task);
        assert_eq!(arc.compute_batch(&xs), expected);
    }

    #[test]
    fn default_verify_works() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let fx = task.compute(10);
        assert!(task.verify(10, &fx));
        assert!(!task.verify(11, &fx));
    }
}
