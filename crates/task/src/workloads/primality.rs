//! Prime search in the spirit of GIMPS (the paper's reference [4]).
//!
//! Each input indexes a candidate number; `f` runs a deterministic
//! Miller–Rabin test. The output packs the verdict *and* the witness base
//! that proved compositeness: with only the one-bit verdict, a cheater
//! could guess `f(x)` correctly with probability around one half — exactly
//! the high-`q` regime of Theorem 3 and the `q = 0.5` curve of Fig. 2.
//! Including the witness drives `q` back toward zero.

use crate::ComputeTask;

/// Deterministic Miller–Rabin bases: sufficient for all `u64` inputs
/// (Sorenson & Webster 2015; valid below 3.3 × 10²⁴).
const MR_BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic primality test for `u64`, with the witness that proved
/// compositeness (if any).
///
/// Returns `(is_prime, witness)`: `witness` is the Miller–Rabin base that
/// exposed a composite, 0 when the number is prime or trivially composite.
fn miller_rabin(n: u64) -> (bool, u64) {
    if n < 2 {
        return (false, 0);
    }
    for &p in &MR_BASES {
        if n == p {
            return (true, 0);
        }
        if n % p == 0 {
            return (false, p);
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d % 2 == 0 {
        d /= 2;
        s += 1;
    }
    'bases: for &a in &MR_BASES {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'bases;
            }
        }
        return (false, a);
    }
    (true, 0)
}

/// Deterministic primality test for any `u64`.
///
/// # Examples
///
/// ```
/// use ugc_task::workloads::is_prime_u64;
///
/// assert!(is_prime_u64(2));
/// assert!(is_prime_u64((1 << 61) - 1)); // Mersenne prime M61
/// assert!(!is_prime_u64(561)); // Carmichael number
/// ```
#[must_use]
pub fn is_prime_u64(n: u64) -> bool {
    miller_rabin(n).0
}

/// Prime search over candidates `N(x) = base + stride·x`.
///
/// Output layout (16 bytes): verdict `u64` (1 = prime) followed by the
/// Miller–Rabin witness `u64`.
///
/// # Examples
///
/// ```
/// use ugc_task::ComputeTask;
/// use ugc_task::workloads::PrimalitySearch;
///
/// // Search odd numbers from 1001 upward.
/// let task = PrimalitySearch::new(1001, 2);
/// let verdict = task.compute(4); // N = 1009, prime
/// assert_eq!(&verdict[..8], &1u64.to_le_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimalitySearch {
    base: u64,
    stride: u64,
}

impl PrimalitySearch {
    /// Searches candidates `base + stride·x` (wrapping on overflow, which
    /// is fine for synthetic sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` (every candidate would be identical).
    #[must_use]
    pub fn new(base: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        PrimalitySearch { base, stride }
    }

    /// The candidate number tested for input `x`.
    #[must_use]
    pub fn candidate(&self, x: u64) -> u64 {
        self.base.wrapping_add(self.stride.wrapping_mul(x))
    }
}

impl ComputeTask for PrimalitySearch {
    fn name(&self) -> &str {
        "primality-search"
    }

    fn output_width(&self) -> usize {
        16
    }

    fn compute(&self, x: u64) -> Vec<u8> {
        let (prime, witness) = miller_rabin(self.candidate(x));
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&u64::from(prime).to_le_bytes());
        out.extend_from_slice(&witness.to_le_bytes());
        out
    }

    /// Twelve Miller–Rabin rounds at ~64-bit modular arithmetic.
    fn unit_cost(&self) -> u64 {
        12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_is_prime(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n % d == 0 {
                return false;
            }
            d += 1;
        }
        true
    }

    #[test]
    fn agrees_with_trial_division_below_10000() {
        for n in 0..10_000u64 {
            assert_eq!(is_prime_u64(n), naive_is_prime(n), "disagree at {n}");
        }
    }

    #[test]
    fn known_mersenne_primes() {
        for p in [2u32, 3, 5, 7, 13, 17, 19, 31, 61] {
            let m = (1u64 << p) - 1;
            assert!(is_prime_u64(m), "M{p} = {m} should be prime");
        }
    }

    #[test]
    fn known_mersenne_composites() {
        for p in [11u32, 23, 29, 37, 41] {
            let m = (1u64 << p) - 1;
            assert!(!is_prime_u64(m), "M{p} = {m} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for n in [561u64, 1105, 1729, 2465, 6601, 8911, 41041, 825_265] {
            assert!(!is_prime_u64(n), "{n} is a Carmichael number");
        }
    }

    #[test]
    fn large_semiprime_rejected() {
        // 2^61 - 1 is prime; its square cannot be represented, so use the
        // product of two large primes that fits u64.
        let p = 4_294_967_291u64; // largest prime below 2^32
        let q = 4_294_967_279u64;
        assert!(!is_prime_u64(p.wrapping_mul(q)));
        assert!(is_prime_u64(p));
        assert!(is_prime_u64(q));
    }

    #[test]
    fn witness_is_zero_for_primes_nonzero_for_mr_composites() {
        let task = PrimalitySearch::new(1_000_003, 1); // 1000003 is prime
        let out = task.compute(0);
        assert_eq!(&out[..8], &1u64.to_le_bytes());
        assert_eq!(&out[8..], &0u64.to_le_bytes());
        // 1000001 = 101 × 9901.
        let task = PrimalitySearch::new(1_000_001, 1);
        let out = task.compute(0);
        assert_eq!(&out[..8], &0u64.to_le_bytes());
        let witness = u64::from_le_bytes(out[8..].try_into().unwrap());
        assert_ne!(witness, 0);
    }

    #[test]
    fn candidate_arithmetic() {
        let task = PrimalitySearch::new(100, 3);
        assert_eq!(task.candidate(0), 100);
        assert_eq!(task.candidate(5), 115);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = PrimalitySearch::new(1, 0);
    }

    #[test]
    fn output_width_respected() {
        let task = PrimalitySearch::new(0, 1);
        for x in 0..20 {
            assert_eq!(task.compute(x).len(), task.output_width());
        }
    }

    #[test]
    fn prime_density_plausible() {
        // Around n = 10^6 the prime density is ~1/ln(10^6) ≈ 7.2%.
        let task = PrimalitySearch::new(1_000_001, 2); // odd candidates
        let primes = (0..2000u64).filter(|&x| task.compute(x)[0] == 1).count();
        // Odd-only doubles the density to ~14.5%.
        assert!((200..=380).contains(&primes), "found {primes} primes");
    }
}
