//! Laptop-scale stand-ins for the grid applications the paper motivates.
//!
//! | Workload | Paper motivation | Shape |
//! |----------|-----------------|-------|
//! | [`PasswordSearch`] | §3's "break a 64-bit password" example | one-way `f`, match screener, ringer-compatible |
//! | [`PrimalitySearch`] | GIMPS (Mersenne prime search) | CPU-heavy `f`, tiny output space (naturally high guess probability `q`) |
//! | [`SetiSignal`] | SETI@home | synthetic radio chunks, DFT power spectrum, SNR threshold screener |
//! | [`DrugScreening`] | IBM smallpox research grid | synthetic molecule docking, energy-minimisation `f`, low-energy screener |
//! | [`FactoringSearch`] | §3.1's asymmetric-verification example | expensive Pollard-rho `f`, **cheap `verify`** (one multiply + one primality test) |
//!
//! All four are deterministic in `(seed, x)`: the "telescope data" and
//! "molecule library" are generated from the seed, substituting for the
//! proprietary data of the real projects while exercising the same code
//! paths (expensive `f`, negligible screener, rare interesting results).

mod docking;
mod factoring;
mod password;
mod primality;
mod seti;

pub use docking::DrugScreening;
pub use factoring::{smallest_prime_factor, FactoringSearch};
pub use password::PasswordSearch;
pub use primality::{is_prime_u64, PrimalitySearch};
pub use seti::SetiSignal;
