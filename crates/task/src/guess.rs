//! The cheap substitute function `f̌` of the semi-honest cheating model.
//!
//! Section 2.2 of the paper: a semi-honest cheater computes `f` honestly on
//! `D′ ⊂ D` and uses a much cheaper `f̌` — "for instance, a random guess" —
//! elsewhere. Theorem 3 parameterises the analysis by
//! `q = Pr[guess equals f(x)]`; these guessers realise a chosen `q` exactly
//! so the Monte-Carlo experiments can sweep it.

use crate::{ComputeTask, SplitMix64};

/// A cheap guess generator `f̌(x)` for uncomputed inputs.
///
/// Implementations are deterministic in `(x, salt)` (per seed) so a
/// cheater's Merkle tree is well-defined. The `salt` lets the NI-CBS
/// *retry attacker* (Section 4.2) re-roll its guesses between attempts:
/// salt 0 is the first attempt, each retry bumps it.
pub trait Guesser: Send + Sync {
    /// Produces the guessed result bytes for input `x` under `salt`.
    ///
    /// `width` is the task's output width; the returned vector must have
    /// exactly that length.
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8>;

    /// First-attempt guess (salt 0).
    fn guess(&self, x: u64, width: usize) -> Vec<u8> {
        self.guess_salted(x, width, 0)
    }
}

impl<G: Guesser + ?Sized> Guesser for &G {
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8> {
        (**self).guess_salted(x, width, salt)
    }
}

impl<G: Guesser + ?Sized> Guesser for Box<G> {
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8> {
        (**self).guess_salted(x, width, salt)
    }
}

impl<G: Guesser + ?Sized> Guesser for std::sync::Arc<G> {
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8> {
        (**self).guess_salted(x, width, salt)
    }
}

/// Guesses uniformly random bytes; `q ≈ 0` for any non-trivial task.
///
/// This is the paper's default assumption ("the probability that the
/// participant can guess the correct computation results … is negligible").
///
/// # Examples
///
/// ```
/// use ugc_task::{Guesser, ZeroGuesser};
///
/// let g = ZeroGuesser::new(1);
/// assert_eq!(g.guess(7, 8).len(), 8);
/// // Deterministic per (seed, x):
/// assert_eq!(g.guess(7, 8), ZeroGuesser::new(1).guess(7, 8));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZeroGuesser {
    seed: u64,
}

impl ZeroGuesser {
    /// Creates a random-bytes guesser with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ZeroGuesser { seed }
    }
}

impl Guesser for ZeroGuesser {
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8> {
        let mut rng =
            SplitMix64::for_stream(self.seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f), x);
        let mut out = vec![0u8; width];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// A guesser that is correct with exactly probability `q` (per input).
///
/// This is a *simulation oracle*: to decide whether a guess is lucky it
/// consults the true `f(x)` internally. The consultation is **not** charged
/// to the cheater's cost ledger — it models luck, not work. With
/// probability `q` it returns the true result; otherwise it returns a value
/// guaranteed to differ (the true result with one byte perturbed, matching
/// Theorem 3's event structure exactly).
///
/// # Examples
///
/// ```
/// use ugc_task::{ComputeTask, Guesser, LuckyGuesser};
/// use ugc_task::workloads::PasswordSearch;
///
/// let task = PasswordSearch::with_hidden_password(3, 4);
/// let always = LuckyGuesser::new(&task, 1.0, 99);
/// assert_eq!(always.guess(5, 16), task.compute(5)); // q = 1: always right
/// let never = LuckyGuesser::new(&task, 0.0, 99);
/// assert_ne!(never.guess(5, 16), task.compute(5)); // q = 0: always wrong
/// ```
pub struct LuckyGuesser<T> {
    task: T,
    q: f64,
    seed: u64,
}

impl<T: ComputeTask> LuckyGuesser<T> {
    /// Creates a guesser with success probability `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a probability.
    #[must_use]
    pub fn new(task: T, q: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&q) && q.is_finite(),
            "q must be in [0,1]"
        );
        LuckyGuesser { task, q, seed }
    }

    /// The configured success probability `q`.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl<T: ComputeTask> Guesser for LuckyGuesser<T> {
    fn guess_salted(&self, x: u64, width: usize, salt: u64) -> Vec<u8> {
        let stream = self.seed ^ 0x6c75_636b ^ salt.wrapping_mul(0xa076_1d64_78bd_642f);
        let mut rng = SplitMix64::for_stream(stream, x);
        let truth = self.task.compute(x);
        debug_assert_eq!(truth.len(), width);
        if rng.next_f64() < self.q {
            truth
        } else {
            // Guaranteed-wrong value: flip one byte by a nonzero delta.
            let mut wrong = truth;
            let pos = (rng.next_below(width as u64)) as usize;
            let delta = 1 + (rng.next_below(255)) as u8;
            wrong[pos] = wrong[pos].wrapping_add(delta);
            wrong
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl ComputeTask for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn output_width(&self) -> usize {
            8
        }
        fn compute(&self, x: u64) -> Vec<u8> {
            x.to_le_bytes().to_vec()
        }
    }

    #[test]
    fn zero_guesser_is_deterministic() {
        let g = ZeroGuesser::new(5);
        assert_eq!(g.guess(10, 16), g.guess(10, 16));
        assert_ne!(g.guess(10, 16), g.guess(11, 16));
    }

    #[test]
    fn zero_guesser_respects_width() {
        let g = ZeroGuesser::new(5);
        for width in [1usize, 7, 8, 9, 32] {
            assert_eq!(g.guess(3, width).len(), width);
        }
    }

    #[test]
    fn zero_guesser_virtually_never_correct() {
        let g = ZeroGuesser::new(5);
        let hits = (0..1000u64)
            .filter(|&x| g.guess(x, 8) == Echo.compute(x))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn lucky_guesser_extremes() {
        let always = LuckyGuesser::new(Echo, 1.0, 42);
        let never = LuckyGuesser::new(Echo, 0.0, 42);
        for x in 0..100u64 {
            assert_eq!(always.guess(x, 8), Echo.compute(x));
            assert_ne!(never.guess(x, 8), Echo.compute(x));
        }
    }

    #[test]
    fn lucky_guesser_hits_q_statistically() {
        let q = 0.5;
        let g = LuckyGuesser::new(Echo, q, 7);
        let n = 20_000u64;
        let hits = (0..n).filter(|&x| g.guess(x, 8) == Echo.compute(x)).count() as f64;
        let rate = hits / n as f64;
        // 3-sigma band for a binomial with p = 0.5, n = 20000 is ±0.0106.
        assert!((rate - q).abs() < 0.015, "rate {rate} too far from q={q}");
    }

    #[test]
    fn lucky_guesser_is_deterministic() {
        let a = LuckyGuesser::new(Echo, 0.3, 9);
        let b = LuckyGuesser::new(Echo, 0.3, 9);
        for x in 0..50u64 {
            assert_eq!(a.guess(x, 8), b.guess(x, 8));
        }
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn invalid_q_rejected() {
        let _ = LuckyGuesser::new(Echo, 1.5, 0);
    }

    #[test]
    fn salt_rerolls_zero_guesses() {
        let g = ZeroGuesser::new(3);
        assert_ne!(g.guess_salted(5, 8, 0), g.guess_salted(5, 8, 1));
        assert_eq!(g.guess_salted(5, 8, 2), g.guess_salted(5, 8, 2));
        assert_eq!(g.guess(5, 8), g.guess_salted(5, 8, 0));
    }

    #[test]
    fn salt_rerolls_luck_but_not_truth() {
        // With q = 0.5 the same input must flip between lucky and unlucky
        // across salts, and a lucky guess is always the truth.
        let g = LuckyGuesser::new(Echo, 0.5, 11);
        let truth = Echo.compute(9);
        let outcomes: Vec<bool> = (0..64u64)
            .map(|salt| g.guess_salted(9, 8, salt) == truth)
            .collect();
        assert!(outcomes.iter().any(|&b| b), "never lucky across 64 salts");
        assert!(outcomes.iter().any(|&b| !b), "always lucky across 64 salts");
    }

    #[test]
    fn boxed_guesser_delegates() {
        let boxed: Box<dyn Guesser> = Box::new(ZeroGuesser::new(4));
        assert_eq!(boxed.guess(1, 8), ZeroGuesser::new(4).guess(1, 8));
    }
}
