//! The computation model of uncheatable grid computing.
//!
//! Section 2.1 of Du et al. (ICDCS 2004) defines a grid computation by a
//! function `f : X → T` over a finite domain, a *screener* `S` that filters
//! the outputs worth reporting, and a partition of `X` into per-participant
//! sub-domains. This crate provides those pieces:
//!
//! * [`ComputeTask`] — the function `f`, producing fixed-width encoded
//!   results that become Merkle leaves (`Φ(L_i) = f(x_i)`).
//! * [`Screener`] — the screener `S(x, f(x))`, whose run-time is assumed
//!   negligible next to `f`.
//! * [`Domain`] — a contiguous index range `D = {x_1 … x_n}` with
//!   partitioning for task distribution.
//! * [`Guesser`] — the cheap substitute function `f̌` of the semi-honest
//!   cheating model, with a tunable probability `q` of guessing the correct
//!   result (the `q` of Theorem 3).
//! * [`workloads`] — four laptop-scale stand-ins for the applications the
//!   paper motivates: password search (§3's brute-force example), prime
//!   search (GIMPS), SETI-style chirp detection (SETI@home) and synthetic
//!   drug-docking (IBM smallpox grid). Each is deterministic in
//!   `(seed, x)` so commitments are reproducible.
//!
//! # Examples
//!
//! ```
//! use ugc_task::{ComputeTask, Domain, Screener};
//! use ugc_task::workloads::PasswordSearch;
//!
//! let domain = Domain::new(0, 1 << 10);
//! let task = PasswordSearch::with_hidden_password(42, 777); // password is input 777
//! let screener = task.match_screener();
//! let hits: Vec<u64> = domain
//!     .inputs()
//!     .filter(|&x| screener.screen(x, &task.compute(x)).is_some())
//!     .collect();
//! assert_eq!(hits, vec![777]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compute;
mod domain;
mod guess;
mod rng;
mod screener;
pub mod workloads;

pub use compute::{CountingTask, SharedCounter, TaskRef};
pub use domain::{Domain, DomainError, Partition};
pub use guess::{Guesser, LuckyGuesser, ZeroGuesser};
pub use rng::SplitMix64;
pub use screener::{AcceptAllScreener, MatchScreener, ScreenReport, Screener, ThresholdScreener};

/// The function `f : X → T` evaluated by participants.
///
/// Outputs are encoded to a fixed width so they can serve directly as
/// Merkle-tree leaves (the paper's `Φ(L_i) = f(x_i)`). Implementations must
/// be deterministic: the same `x` always yields the same bytes, otherwise
/// commitments would be unverifiable.
///
/// The supervisor may be able to check a claimed result *cheaper* than
/// recomputing (the paper's factoring example); such tasks override
/// [`verify`](Self::verify) and advertise it via
/// [`cheap_verification`](Self::cheap_verification).
pub trait ComputeTask: Send + Sync {
    /// Short human-readable task name for reports.
    fn name(&self) -> &str;

    /// Width in bytes of every encoded output (the Merkle leaf width).
    fn output_width(&self) -> usize;

    /// Evaluates `f(x)` and encodes it to exactly
    /// [`output_width`](Self::output_width) bytes.
    fn compute(&self, x: u64) -> Vec<u8>;

    /// Evaluates `f` on a batch of independent inputs, returning one
    /// encoded output per input, in order.
    ///
    /// The default loops over [`compute`](Self::compute); hash-bound tasks
    /// override it to run several inputs through a message-parallel digest
    /// kernel (e.g. [`workloads::PasswordSearch`] over MD5 lanes). The
    /// outputs must be byte-identical to per-input `compute` calls —
    /// batching is an execution detail, never a semantic one.
    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        xs.iter().map(|&x| self.compute(x)).collect()
    }

    /// Checks whether `claimed` equals `f(x)`.
    ///
    /// The default recomputes `f`; tasks with asymmetric verification
    /// override this.
    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        claimed == self.compute(x).as_slice()
    }

    /// Whether [`verify`](Self::verify) is substantially cheaper than
    /// [`compute`](Self::compute).
    fn cheap_verification(&self) -> bool {
        false
    }

    /// Abstract cost `C_f` of one evaluation, in arbitrary work units.
    ///
    /// Used by the Eq. (5) economics of the hardened NI-CBS scheme, where
    /// the attack cost `(1/r^m)·m·C_g` is compared against `n·C_f`.
    fn unit_cost(&self) -> u64 {
        1
    }
}

impl<T: ComputeTask + ?Sized> ComputeTask for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn output_width(&self) -> usize {
        (**self).output_width()
    }
    fn compute(&self, x: u64) -> Vec<u8> {
        (**self).compute(x)
    }
    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        (**self).compute_batch(xs)
    }
    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        (**self).verify(x, claimed)
    }
    fn cheap_verification(&self) -> bool {
        (**self).cheap_verification()
    }
    fn unit_cost(&self) -> u64 {
        (**self).unit_cost()
    }
}

impl<T: ComputeTask + ?Sized> ComputeTask for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn output_width(&self) -> usize {
        (**self).output_width()
    }
    fn compute(&self, x: u64) -> Vec<u8> {
        (**self).compute(x)
    }
    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        (**self).compute_batch(xs)
    }
    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        (**self).verify(x, claimed)
    }
    fn cheap_verification(&self) -> bool {
        (**self).cheap_verification()
    }
    fn unit_cost(&self) -> u64 {
        (**self).unit_cost()
    }
}

impl<T: ComputeTask + ?Sized> ComputeTask for std::sync::Arc<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn output_width(&self) -> usize {
        (**self).output_width()
    }
    fn compute(&self, x: u64) -> Vec<u8> {
        (**self).compute(x)
    }
    fn compute_batch(&self, xs: &[u64]) -> Vec<Vec<u8>> {
        (**self).compute_batch(xs)
    }
    fn verify(&self, x: u64, claimed: &[u8]) -> bool {
        (**self).verify(x, claimed)
    }
    fn cheap_verification(&self) -> bool {
        (**self).cheap_verification()
    }
    fn unit_cost(&self) -> u64 {
        (**self).unit_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl ComputeTask for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn output_width(&self) -> usize {
            8
        }
        fn compute(&self, x: u64) -> Vec<u8> {
            (x * 2).to_le_bytes().to_vec()
        }
    }

    #[test]
    fn default_verify_recomputes() {
        let t = Doubler;
        assert!(t.verify(21, &42u64.to_le_bytes()));
        assert!(!t.verify(21, &43u64.to_le_bytes()));
    }

    #[test]
    fn default_cost_and_verification_flags() {
        let t = Doubler;
        assert_eq!(t.unit_cost(), 1);
        assert!(!t.cheap_verification());
    }

    #[test]
    fn blanket_impls_delegate() {
        let t = Doubler;
        let by_ref: &dyn ComputeTask = &t;
        assert_eq!(by_ref.name(), "doubler");
        let arc: std::sync::Arc<dyn ComputeTask> = std::sync::Arc::new(Doubler);
        assert_eq!(arc.compute(5), 10u64.to_le_bytes().to_vec());
        assert_eq!(arc.output_width(), 8);
    }
}
