//! Input domains `D = {x_1, …, x_n}` and their partitioning.

use core::fmt;

/// Error type for domain construction and partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainError {
    /// Domains must contain at least one input.
    Empty,
    /// `start + len` overflowed the `u64` input space.
    Overflow {
        /// Requested start of the range.
        start: u64,
        /// Requested length of the range.
        len: u64,
    },
    /// A partition into zero parts was requested.
    ZeroParts,
    /// An index was outside the domain.
    IndexOutOfRange {
        /// The requested index.
        index: u64,
        /// The domain size.
        len: u64,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DomainError::Empty => write!(f, "domain must contain at least one input"),
            DomainError::Overflow { start, len } => {
                write!(f, "domain [{start}, {start}+{len}) overflows u64")
            }
            DomainError::ZeroParts => write!(f, "cannot partition into zero parts"),
            DomainError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for domain of size {len}")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// A contiguous domain of inputs `[start, start + len)`.
///
/// The CBS protocol addresses inputs by *index* `i ∈ [0, n)`; the domain
/// maps indices to actual input values. Contiguity matches how real grid
/// projects (SETI work units, key-search ranges) carve up their spaces, and
/// keeps assignment messages `O(1)` in size.
///
/// # Examples
///
/// ```
/// use ugc_task::Domain;
///
/// let d = Domain::new(1000, 10);
/// assert_eq!(d.len(), 10);
/// assert_eq!(d.input(3)?, 1003);
/// let parts = d.split(3)?;
/// assert_eq!(parts.len(), 3);
/// assert_eq!(parts.iter().map(|p| p.len()).sum::<u64>(), 10);
/// # Ok::<(), ugc_task::DomainError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Domain {
    start: u64,
    len: u64,
}

impl Domain {
    /// Creates the domain `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or if the range overflows; use
    /// [`try_new`](Self::try_new) for fallible construction.
    #[must_use]
    pub fn new(start: u64, len: u64) -> Self {
        Self::try_new(start, len).expect("invalid domain")
    }

    /// Fallible constructor for the domain `[start, start + len)`.
    ///
    /// # Errors
    ///
    /// * [`DomainError::Empty`] if `len == 0`.
    /// * [`DomainError::Overflow`] if `start + len > u64::MAX`.
    pub fn try_new(start: u64, len: u64) -> Result<Self, DomainError> {
        if len == 0 {
            return Err(DomainError::Empty);
        }
        if start.checked_add(len).is_none() {
            return Err(DomainError::Overflow { start, len });
        }
        Ok(Domain { start, len })
    }

    /// First input value.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of inputs `n = |D|`.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Domains are never empty; this exists for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps index `i` to the input value `x_i`.
    ///
    /// # Errors
    ///
    /// [`DomainError::IndexOutOfRange`] if `index ≥ len`.
    pub fn input(&self, index: u64) -> Result<u64, DomainError> {
        if index >= self.len {
            return Err(DomainError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        Ok(self.start + index)
    }

    /// Whether `value` lies in this domain.
    #[must_use]
    pub fn contains(&self, value: u64) -> bool {
        value >= self.start && value - self.start < self.len
    }

    /// Iterates over the input values.
    pub fn inputs(&self) -> impl Iterator<Item = u64> + '_ {
        self.start..self.start + self.len
    }

    /// Splits into `parts` contiguous sub-domains whose sizes differ by at
    /// most one — the supervisor's task partition of Section 2.1.
    ///
    /// # Errors
    ///
    /// * [`DomainError::ZeroParts`] if `parts == 0`.
    pub fn split(&self, parts: u64) -> Result<Partition, DomainError> {
        if parts == 0 {
            return Err(DomainError::ZeroParts);
        }
        let parts = parts.min(self.len);
        let base = self.len / parts;
        let extra = self.len % parts;
        let mut out = Vec::with_capacity(parts as usize);
        let mut cursor = self.start;
        for i in 0..parts {
            let size = base + u64::from(i < extra);
            out.push(Domain {
                start: cursor,
                len: size,
            });
            cursor += size;
        }
        Ok(Partition { parts: out })
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.start + self.len)
    }
}

/// The result of [`Domain::split`]: disjoint sub-domains covering the whole.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: Vec<Domain>,
}

impl Partition {
    /// Number of sub-domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the partition has no parts (never true for valid splits).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The sub-domains in input order.
    pub fn iter(&self) -> impl Iterator<Item = &Domain> {
        self.parts.iter()
    }

    /// Sub-domain by position.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Domain> {
        self.parts.get(i)
    }
}

impl IntoIterator for Partition {
    type Item = Domain;
    type IntoIter = std::vec::IntoIter<Domain>;

    fn into_iter(self) -> Self::IntoIter {
        self.parts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Domain::try_new(5, 0).unwrap_err(), DomainError::Empty);
    }

    #[test]
    fn rejects_overflow() {
        assert_eq!(
            Domain::try_new(u64::MAX, 2).unwrap_err(),
            DomainError::Overflow {
                start: u64::MAX,
                len: 2
            }
        );
    }

    #[test]
    fn allows_full_tail() {
        let d = Domain::try_new(u64::MAX - 3, 3).unwrap();
        assert_eq!(d.input(2).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn input_mapping() {
        let d = Domain::new(100, 5);
        assert_eq!(d.input(0).unwrap(), 100);
        assert_eq!(d.input(4).unwrap(), 104);
        assert_eq!(
            d.input(5).unwrap_err(),
            DomainError::IndexOutOfRange { index: 5, len: 5 }
        );
    }

    #[test]
    fn contains_bounds() {
        let d = Domain::new(10, 3);
        assert!(!d.contains(9));
        assert!(d.contains(10));
        assert!(d.contains(12));
        assert!(!d.contains(13));
    }

    #[test]
    fn inputs_iterator_matches_len() {
        let d = Domain::new(7, 9);
        let all: Vec<u64> = d.inputs().collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], 7);
        assert_eq!(*all.last().unwrap(), 15);
    }

    #[test]
    fn split_covers_disjointly() {
        let d = Domain::new(0, 10);
        let parts = d.split(3).unwrap();
        let sizes: Vec<u64> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut cursor = 0;
        for p in parts.iter() {
            assert_eq!(p.start(), cursor);
            cursor += p.len();
        }
        assert_eq!(cursor, 10);
    }

    #[test]
    fn split_more_parts_than_inputs_caps() {
        let d = Domain::new(0, 3);
        let parts = d.split(10).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn split_zero_parts_rejected() {
        assert_eq!(
            Domain::new(0, 4).split(0).unwrap_err(),
            DomainError::ZeroParts
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Domain::new(5, 10).to_string(), "[5, 15)");
        assert_eq!(
            DomainError::IndexOutOfRange { index: 3, len: 2 }.to_string(),
            "index 3 out of range for domain of size 2"
        );
    }

    #[test]
    fn partition_into_iter() {
        let d = Domain::new(0, 6);
        let collected: Vec<Domain> = d.split(2).unwrap().into_iter().collect();
        assert_eq!(collected, vec![Domain::new(0, 3), Domain::new(3, 3)]);
    }
}
