//! Screeners: the output filter `S(x, f(x))` of Section 2.1.
//!
//! The screener decides which results are "of interest" and therefore
//! reported to the supervisor — the reason the naive sampling scheme's
//! `O(n)` result upload is so wasteful, and CBS's `O(m log n)` such an
//! improvement. Its run-time is assumed negligible next to `f`.

use core::fmt;

/// A result deemed interesting by a screener: the input and the screener's
/// report string `s = S(x; f(x))`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScreenReport {
    /// The input `x` whose result was interesting.
    pub input: u64,
    /// The report payload (typically the encoded `f(x)` or a summary).
    pub payload: Vec<u8>,
}

impl fmt::Display for ScreenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x={} payload={}",
            self.input,
            ugc_hash::hex::encode(&self.payload)
        )
    }
}

/// The screener program `S`.
pub trait Screener: Send + Sync {
    /// Returns the report for `(x, f(x))` if the result is interesting,
    /// `None` otherwise.
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport>;
}

impl<S: Screener + ?Sized> Screener for &S {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        (**self).screen(x, fx)
    }
}

impl<S: Screener + ?Sized> Screener for Box<S> {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        (**self).screen(x, fx)
    }
}

impl<S: Screener + ?Sized> Screener for std::sync::Arc<S> {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        (**self).screen(x, fx)
    }
}

/// Reports a result iff it byte-equals a target value — the screener for
/// search problems (password cracking, ringer detection).
///
/// # Examples
///
/// ```
/// use ugc_task::{MatchScreener, Screener};
///
/// let s = MatchScreener::new(vec![1, 2, 3]);
/// assert!(s.screen(9, &[1, 2, 3]).is_some());
/// assert!(s.screen(9, &[1, 2, 4]).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchScreener {
    target: Vec<u8>,
}

impl MatchScreener {
    /// Screens for results equal to `target`.
    #[must_use]
    pub fn new(target: Vec<u8>) -> Self {
        MatchScreener { target }
    }

    /// The target value being searched for.
    #[must_use]
    pub fn target(&self) -> &[u8] {
        &self.target
    }
}

impl Screener for MatchScreener {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        (fx == self.target.as_slice()).then(|| ScreenReport {
            input: x,
            payload: fx.to_vec(),
        })
    }
}

/// Reports results whose leading 8 bytes, read little-endian as `f64`,
/// exceed (or fall below) a threshold — the screener shape for signal
/// SNR peaks and docking energies.
///
/// # Examples
///
/// ```
/// use ugc_task::{Screener, ThresholdScreener};
///
/// let s = ThresholdScreener::above(5.0);
/// assert!(s.screen(0, &7.5f64.to_le_bytes()).is_some());
/// assert!(s.screen(0, &3.0f64.to_le_bytes()).is_none());
/// let s = ThresholdScreener::below(-10.0);
/// assert!(s.screen(0, &(-12.0f64).to_le_bytes()).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdScreener {
    threshold: f64,
    above: bool,
}

impl ThresholdScreener {
    /// Reports values strictly greater than `threshold`.
    #[must_use]
    pub fn above(threshold: f64) -> Self {
        ThresholdScreener {
            threshold,
            above: true,
        }
    }

    /// Reports values strictly less than `threshold`.
    #[must_use]
    pub fn below(threshold: f64) -> Self {
        ThresholdScreener {
            threshold,
            above: false,
        }
    }

    /// Decodes the screened scalar from a result prefix.
    fn value_of(fx: &[u8]) -> Option<f64> {
        if fx.len() < 8 {
            return None;
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&fx[..8]);
        Some(f64::from_le_bytes(buf))
    }
}

impl Screener for ThresholdScreener {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        let value = Self::value_of(fx)?;
        let interesting = if self.above {
            value > self.threshold
        } else {
            value < self.threshold
        };
        interesting.then(|| ScreenReport {
            input: x,
            payload: fx.to_vec(),
        })
    }
}

/// Reports every result — degenerates CBS into naive sampling's upload
/// behaviour; useful as a baseline in communication experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcceptAllScreener;

impl Screener for AcceptAllScreener {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
        Some(ScreenReport {
            input: x,
            payload: fx.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_screener_exact_only() {
        let s = MatchScreener::new(vec![0xAA, 0xBB]);
        assert!(s.screen(1, &[0xAA, 0xBB]).is_some());
        assert!(s.screen(1, &[0xAA, 0xBB, 0x00]).is_none());
        assert!(s.screen(1, &[0xAA]).is_none());
        assert_eq!(s.target(), &[0xAA, 0xBB]);
    }

    #[test]
    fn threshold_above_and_below() {
        let above = ThresholdScreener::above(1.0);
        assert!(above.screen(0, &2.0f64.to_le_bytes()).is_some());
        assert!(above.screen(0, &1.0f64.to_le_bytes()).is_none());
        let below = ThresholdScreener::below(1.0);
        assert!(below.screen(0, &0.5f64.to_le_bytes()).is_some());
        assert!(below.screen(0, &1.0f64.to_le_bytes()).is_none());
    }

    #[test]
    fn threshold_ignores_short_results() {
        let s = ThresholdScreener::above(0.0);
        assert!(s.screen(0, &[1, 2, 3]).is_none());
    }

    #[test]
    fn threshold_reads_prefix_of_wider_results() {
        let s = ThresholdScreener::above(0.0);
        let mut fx = 3.5f64.to_le_bytes().to_vec();
        fx.extend_from_slice(&[9, 9, 9, 9]);
        let report = s.screen(4, &fx).unwrap();
        assert_eq!(report.input, 4);
        assert_eq!(report.payload, fx);
    }

    #[test]
    fn accept_all_reports_everything() {
        let s = AcceptAllScreener;
        for x in 0..10 {
            assert!(s.screen(x, &[x as u8]).is_some());
        }
    }

    #[test]
    fn report_display() {
        let r = ScreenReport {
            input: 3,
            payload: vec![0xde, 0xad],
        };
        assert_eq!(r.to_string(), "x=3 payload=dead");
    }
}
